//! Offline stand-in for the `criterion` crate.
//!
//! Every bench target in this workspace sets `harness = false` and uses
//! the carpool-obs span machinery for timing, so nothing links against
//! criterion at all — this placeholder only exists so `cargo` can
//! resolve the `[dev-dependencies]` entry without network access.
