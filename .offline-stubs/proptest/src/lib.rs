//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API that the Carpool
//! workspace uses: the [`Strategy`] trait with `prop_map`, `any::<T>()`,
//! range strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, tuple strategies, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the assertion message
//!   and the case number; reproduce it by re-running the test (seeds are
//!   derived from the test name, so runs are fully deterministic).
//! - **No persistence files, no environment configuration.**

/// Deterministic 64-bit generator used to drive all strategies
/// (SplitMix64 — plenty for test-case generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Creates the generator for a named test: the seed is the FNV-1a
    /// hash of the name, so every test has its own reproducible stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of test values. The stub has no shrinking, so a strategy
/// is simply a function from an RNG to a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (mirrors `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bounded magnitudes: full-range bit-pattern floats (NaN, inf)
        // are almost never what a simulation property wants.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl<T: ArbitraryValue, const N: usize> ArbitraryValue for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (self.end() - self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Runner configuration (mirrors `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Error type carried by `prop_assume!` rejections (test-case filtered
/// out without counting against `cases`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected;

/// Strategy modules mirroring the `proptest::prop` namespace.
pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{Strategy, TestRng};

    /// Anything usable as the size parameter of [`vec`].
    pub trait SizeRange {
        /// Draws one length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty vec size range");
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

pub mod option {
    //! Option strategies (`prop::option`).

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some with probability 3/4, matching the real crate's
            // default weighting towards interesting values.
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len())].clone()
        }
    }

    /// `prop::sample::select(values)` — uniform choice from `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select: no values");
        Select { values }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ArbitraryValue, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Boolean property assertion; supports an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Discards the current case (does not count towards `cases`) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::Rejected);
        }
    };
}

/// The property-test harness macro. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that draws `cases` inputs from the strategies and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (@funcs $cfg:expr; $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let outcome: ::core::result::Result<(), $crate::Rejected> = (|| {
                        $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::Rejected) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "prop_assume! rejected too many cases ({rejected})"
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let xs = prop::collection::vec(0u8..=3, 2..6).generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x <= 3));
        }
    }

    #[test]
    fn select_and_option_cover_choices() {
        let mut rng = crate::TestRng::for_test("select");
        let s = prop::sample::select(vec![1, 2, 3]);
        let mut seen = [false; 3];
        let mut nones = 0;
        for _ in 0..200 {
            seen[s.generate(&mut rng) - 1] = true;
            if prop::option::of(0.0f64..1.0).generate(&mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert!(nones > 10 && nones < 120, "nones {nones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_draws_and_filters(x in 0u32..100, flag in any::<bool>()) {
            prop_assume!(x != 7);
            prop_assert!(x < 100);
            prop_assert_eq!(flag as u32 <= 1, true);
        }
    }

    proptest! {
        #[test]
        fn default_config_variant_compiles(v in prop::collection::vec(any::<u8>(), 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }
}
