//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access and no
//! registry cache, so the real `rand` cannot be fetched. This crate
//! reimplements the *deterministic* subset of the rand 0.8 API that the
//! Carpool workspace actually uses — `rngs::StdRng`, `SeedableRng`
//! (`seed_from_u64` only) and the `Rng` extension methods `gen`,
//! `gen_range` and `gen_bool` — on top of xoshiro256** seeded through
//! SplitMix64.
//!
//! There is deliberately no `thread_rng`, `from_entropy` or OS
//! randomness: every generator in the workspace is seeded explicitly,
//! which is what keeps the simulators trace-reproducible.

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the
    /// `Standard` distribution of the real crate).
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        out
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
        impl UniformRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                let unit: $t = Random::random(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl UniformRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                let unit: $t = Random::random(rng);
                self.start() + (self.end() - self.start()) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// The random-value extension trait (the used subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit generator underneath every derived method.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of type `T` (see [`Random`]).
    #[inline]
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform value drawn from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, U: UniformRange<T>>(&mut self, range: U) -> T {
        range.sample_uniform(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding trait (the used subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds yield equal
    /// streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** seeded via
    /// SplitMix64), standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the recommended seeding procedure
            // for the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((ratio - 0.25).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn byte_arrays_fill_every_position() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 6];
        for _ in 0..200 {
            let a: [u8; 6] = rng.gen();
            for (k, &b) in a.iter().enumerate() {
                seen[k] |= b != 0;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
