#!/bin/sh
# Offline lint gate: formatting and clippy across the whole workspace.
# Run from anywhere; everything resolves relative to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "ok"
