#!/bin/sh
# Offline lint gate: formatting, clippy, and the project linter across
# the whole workspace. Run from anywhere; everything resolves relative
# to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== carpool-lint (line + call-graph analysis) =="
# Fails on any new L001-L010 violation or a stale baseline entry (exit
# 1), or on an internal analyzer error (exit 2). The analyzer budget is
# non-fatal: going over 5 s prints a warning in the report but does not
# fail the gate. The JSON trend report (per-rule counts and timings,
# hot-path stats) lands next to the bench baselines for tracking.
cargo run --offline -q -p carpool-lint -- --budget-ms 5000
cargo run --offline -q -p carpool-lint -- --json --budget-ms 5000 > crates/bench/BENCH_lint.json

echo "== perf snapshot (phy_micro throughput) =="
# Times the parallel PHY Monte-Carlo driver plus the SNR-sweep workload
# (TX-waveform cache on, bit-identity to the uncached run asserted),
# checks 1-thread vs pool determinism, and prints per-kernel and
# end-to-end deltas against the committed
# crates/bench/BENCH_perf_baseline.json. Regressions beyond 15% are
# flagged on stdout (non-fatal: wall-clock noise must not fail the
# gate).
cargo bench --offline -q -p carpool-bench --bench phy_micro | grep -A 60 "obs overhead gate:"

echo "== obs overhead gate (flight recorder) =="
# The phy_micro run above wrote crates/bench/BENCH_obs.json. The
# tracing-*disabled* decode path must stay within 1% of the plain decode
# (the hooks are a single predicted branch each) — blowing that budget
# fails the gate. The *enabled*-tracing budget is advisory: exceeding it
# prints a warning but opting into tracing is allowed to cost something.
if grep -q '"disabled_regressed":true' crates/bench/BENCH_obs.json; then
    echo "FATAL: tracing-disabled RX path regressed beyond its 1% budget" \
         "(see crates/bench/BENCH_obs.json)"
    exit 1
fi
if grep -q '"tracing_within_budget":false' crates/bench/BENCH_obs.json; then
    echo "warning: enabled flight-recorder tracing exceeds its documented" \
         "budget (non-fatal; see crates/bench/BENCH_obs.json)"
fi
echo "obs overhead ok: disabled path within 1% of the plain decode"

echo "ok"
