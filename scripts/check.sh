#!/bin/sh
# Offline lint gate: formatting, clippy, and the project linter across
# the whole workspace. Run from anywhere; everything resolves relative
# to the repo root. Each stage reports its wall time so gate slowdowns
# are visible in CI logs, and the analyzer budget is enforced: if the
# project linter blows its --budget-ms the gate FAILS instead of only
# warning.
set -eu

cd "$(dirname "$0")/.."

LINT_BUDGET_MS=5000

now_ms() {
    date +%s%3N
}

stage_t0=0
stage_begin() {
    echo "== $1 =="
    stage_t0=$(now_ms)
}
stage_end() {
    echo "-- stage wall time: $(( $(now_ms) - stage_t0 )) ms"
}

stage_begin "cargo fmt --check"
cargo fmt --all --check
stage_end

stage_begin "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings
stage_end

stage_begin "carpool-lint (line + flow + call-graph + taint analysis)"
# Fails on any new L001-L015 violation or a stale baseline entry (exit
# 1), or on an internal analyzer error (exit 2). The cold run bypasses
# the incremental cache (--no-cache): the analyzer budget below is a
# promise about a from-scratch scan, and the cache must never be what
# keeps it honest. The JSON trend report (per-rule counts and timings,
# hot-path, flow and taint stats) lands next to the bench baselines for
# tracking; the SARIF log is the CI/editor artifact.
cargo run --offline -q -p carpool-lint -- --no-cache --budget-ms "$LINT_BUDGET_MS"
cargo run --offline -q -p carpool-lint -- --no-cache --json --budget-ms "$LINT_BUDGET_MS" \
    --sarif target/lint.sarif > crates/bench/BENCH_lint.json
echo "SARIF artifact: target/lint.sarif"
# The budget is fatal here: a static analyzer that creeps past its wall
# budget stops being a pre-commit tool, so the gate rejects it.
lint_cold_ms=$(sed -n 's/.*"elapsed_ms": *\([0-9]*\).*/\1/p' crates/bench/BENCH_lint.json | head -n 1)
if [ -z "$lint_cold_ms" ]; then
    echo "FATAL: could not read elapsed_ms from crates/bench/BENCH_lint.json"
    exit 1
fi
if [ "$lint_cold_ms" -gt "$LINT_BUDGET_MS" ]; then
    echo "FATAL: carpool-lint took ${lint_cold_ms} ms, over its ${LINT_BUDGET_MS} ms budget"
    exit 1
fi
# Warm incremental re-run over the cache the cold run just wrote. Its
# wall time rides along in the trend report next to the cold time so
# cache regressions show up in CI history; the warm path is advisory
# here (its byte-identity and <1 s contract are enforced by the lint
# crate's own tests).
warm_json=$(mktemp)
cargo run --offline -q -p carpool-lint -- --json > "$warm_json"
lint_warm_ms=$(sed -n 's/.*"elapsed_ms": *\([0-9]*\).*/\1/p' "$warm_json" | head -n 1)
rm -f "$warm_json"
lint_warm_ms=${lint_warm_ms:-0}
# Append the cold/warm pair to the JSON report (valid JSON: a trailing
# key-value pair spliced in before the closing brace).
sed -i '$ s/^}$/  ,"lint_cold_ms": '"$lint_cold_ms"', "lint_warm_ms": '"$lint_warm_ms"'\n}/' \
    crates/bench/BENCH_lint.json
echo "carpool-lint budget ok: cold ${lint_cold_ms} ms of ${LINT_BUDGET_MS} ms (warm rescan: ${lint_warm_ms} ms)"
stage_end

stage_begin "perf snapshot (phy_micro throughput)"
# Times the parallel PHY Monte-Carlo driver plus the SNR-sweep workload
# (TX-waveform cache on, bit-identity to the uncached run asserted),
# checks 1-thread vs pool determinism, and prints per-kernel and
# end-to-end deltas against the committed
# crates/bench/BENCH_perf_baseline.json. Regressions beyond 15% on the
# RX fast path (rx_1500B_*), the Viterbi kernels (viterbi_*) or the
# sharded MAC event engine (mac_dense_events_per_s) are FATAL — those
# rows anchor this repo's perf work; regressions on the remaining rows
# stay advisory (wall-clock noise must not fail the gate for unanchored
# rows).
cargo bench --offline -q -p carpool-bench --bench phy_micro | grep -A 60 "obs overhead gate:"
if grep -q '"rx_gate_ok":false' crates/bench/BENCH_perf.json; then
    echo "FATAL: an rx_1500B_*/viterbi_*/mac_dense_events_per_s row regressed beyond 15%" \
         "against crates/bench/BENCH_perf_baseline.json (see crates/bench/BENCH_perf.json)"
    exit 1
fi
echo "perf gate ok: no rx_1500B_*/viterbi_*/mac_dense row worse than baseline by >15%"
stage_end

stage_begin "obs overhead gate (flight recorder)"
# The phy_micro run above wrote crates/bench/BENCH_obs.json. The
# tracing-*disabled* decode path must stay within 1% of the plain decode
# (the hooks are a single predicted branch each) — blowing that budget
# fails the gate. The *enabled*-tracing budget is advisory: exceeding it
# prints a warning but opting into tracing is allowed to cost something.
if grep -q '"disabled_regressed":true' crates/bench/BENCH_obs.json; then
    echo "FATAL: tracing-disabled RX path regressed beyond its 1% budget" \
         "(see crates/bench/BENCH_obs.json)"
    exit 1
fi
if grep -q '"tracing_within_budget":false' crates/bench/BENCH_obs.json; then
    echo "warning: enabled flight-recorder tracing exceeds its documented" \
         "budget (non-fatal; see crates/bench/BENCH_obs.json)"
fi
echo "obs overhead ok: disabled path within 1% of the plain decode"
stage_end

echo "ok"
