#!/bin/sh
# Offline lint gate: formatting, clippy, and the project linter across
# the whole workspace. Run from anywhere; everything resolves relative
# to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== carpool-lint =="
# Fails on any new L001-L006 violation or a stale baseline entry; the
# JSON trend report lands next to the bench baselines for tracking.
cargo run --offline -q -p carpool-lint
cargo run --offline -q -p carpool-lint -- --json > crates/bench/BENCH_lint.json

echo "ok"
