#!/bin/sh
# Offline lint gate: formatting, clippy, and the project linter across
# the whole workspace. Run from anywhere; everything resolves relative
# to the repo root. Each stage reports its wall time so gate slowdowns
# are visible in CI logs, and the analyzer budget is enforced: if the
# project linter blows its --budget-ms the gate FAILS instead of only
# warning.
set -eu

cd "$(dirname "$0")/.."

LINT_BUDGET_MS=5000

now_ms() {
    date +%s%3N
}

stage_t0=0
stage_begin() {
    echo "== $1 =="
    stage_t0=$(now_ms)
}
stage_end() {
    echo "-- stage wall time: $(( $(now_ms) - stage_t0 )) ms"
}

stage_begin "cargo fmt --check"
cargo fmt --all --check
stage_end

stage_begin "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings
stage_end

stage_begin "carpool-lint (line + flow + call-graph analysis)"
# Fails on any new L001-L013 violation or a stale baseline entry (exit
# 1), or on an internal analyzer error (exit 2). The JSON trend report
# (per-rule counts and timings, hot-path and flow stats) lands next to
# the bench baselines for tracking.
cargo run --offline -q -p carpool-lint -- --budget-ms "$LINT_BUDGET_MS"
cargo run --offline -q -p carpool-lint -- --json --budget-ms "$LINT_BUDGET_MS" \
    > crates/bench/BENCH_lint.json
# The budget is fatal here: a static analyzer that creeps past its wall
# budget stops being a pre-commit tool, so the gate rejects it.
lint_elapsed=$(sed -n 's/.*"elapsed_ms": *\([0-9]*\).*/\1/p' crates/bench/BENCH_lint.json | head -n 1)
if [ -z "$lint_elapsed" ]; then
    echo "FATAL: could not read elapsed_ms from crates/bench/BENCH_lint.json"
    exit 1
fi
if [ "$lint_elapsed" -gt "$LINT_BUDGET_MS" ]; then
    echo "FATAL: carpool-lint took ${lint_elapsed} ms, over its ${LINT_BUDGET_MS} ms budget"
    exit 1
fi
echo "carpool-lint budget ok: ${lint_elapsed} ms of ${LINT_BUDGET_MS} ms"
stage_end

stage_begin "perf snapshot (phy_micro throughput)"
# Times the parallel PHY Monte-Carlo driver plus the SNR-sweep workload
# (TX-waveform cache on, bit-identity to the uncached run asserted),
# checks 1-thread vs pool determinism, and prints per-kernel and
# end-to-end deltas against the committed
# crates/bench/BENCH_perf_baseline.json. Regressions beyond 15% on the
# RX fast path (rx_1500B_*), the Viterbi kernels (viterbi_*) or the
# sharded MAC event engine (mac_dense_events_per_s) are FATAL — those
# rows anchor this repo's perf work; regressions on the remaining rows
# stay advisory (wall-clock noise must not fail the gate for unanchored
# rows).
cargo bench --offline -q -p carpool-bench --bench phy_micro | grep -A 60 "obs overhead gate:"
if grep -q '"rx_gate_ok":false' crates/bench/BENCH_perf.json; then
    echo "FATAL: an rx_1500B_*/viterbi_*/mac_dense_events_per_s row regressed beyond 15%" \
         "against crates/bench/BENCH_perf_baseline.json (see crates/bench/BENCH_perf.json)"
    exit 1
fi
echo "perf gate ok: no rx_1500B_*/viterbi_*/mac_dense row worse than baseline by >15%"
stage_end

stage_begin "obs overhead gate (flight recorder)"
# The phy_micro run above wrote crates/bench/BENCH_obs.json. The
# tracing-*disabled* decode path must stay within 1% of the plain decode
# (the hooks are a single predicted branch each) — blowing that budget
# fails the gate. The *enabled*-tracing budget is advisory: exceeding it
# prints a warning but opting into tracing is allowed to cost something.
if grep -q '"disabled_regressed":true' crates/bench/BENCH_obs.json; then
    echo "FATAL: tracing-disabled RX path regressed beyond its 1% budget" \
         "(see crates/bench/BENCH_obs.json)"
    exit 1
fi
if grep -q '"tracing_within_budget":false' crates/bench/BENCH_obs.json; then
    echo "warning: enabled flight-recorder tracing exceeds its documented" \
         "budget (non-fatal; see crates/bench/BENCH_obs.json)"
fi
echo "obs overhead ok: disabled path within 1% of the plain decode"
stage_end

echo "ok"
