#!/bin/sh
# Offline lint gate: formatting, clippy, and the project linter across
# the whole workspace. Run from anywhere; everything resolves relative
# to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== carpool-lint =="
# Fails on any new L001-L006 violation or a stale baseline entry; the
# JSON trend report lands next to the bench baselines for tracking.
cargo run --offline -q -p carpool-lint
cargo run --offline -q -p carpool-lint -- --json > crates/bench/BENCH_lint.json

echo "== perf snapshot (phy_micro throughput) =="
# Times the parallel PHY Monte-Carlo driver plus the SNR-sweep workload
# (TX-waveform cache on, bit-identity to the uncached run asserted),
# checks 1-thread vs pool determinism, and prints per-kernel and
# end-to-end deltas against the committed
# crates/bench/BENCH_perf_baseline.json. Regressions beyond 15% are
# flagged on stdout (non-fatal: wall-clock noise must not fail the
# gate).
cargo bench --offline -q -p carpool-bench --bench phy_micro | grep -A 40 "throughput (run_phy)"

echo "ok"
