//! Event sinks: where stamped events go.
//!
//! [`JsonlSink`] streams one JSON object per line to any `Write`;
//! [`RingBufferSink`] keeps the last N events in memory for tests and
//! in-process inspection; [`NoopSink`] drops everything.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Stamped;

/// Destination for structured events.
pub trait EventSink {
    /// Consume one stamped event.
    fn emit(&self, stamped: &Stamped);

    /// Flush any buffered output (default: nothing to flush).
    fn flush(&self) {}

    /// Whether emitted events are retained anywhere. Instrumentation uses
    /// this to skip building events nobody will see.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// Drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn emit(&self, _stamped: &Stamped) {}
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Writes one JSON line per event to an arbitrary writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
}

impl JsonlSink<File> {
    /// Create (truncate) `path` and stream events to it.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink<File>> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Flush and return the underlying writer (consumes the sink).
    pub fn into_inner(self) -> std::io::Result<W> {
        self.writer
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_inner()
            .map_err(|e| e.into_error())
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, stamped: &Stamped) {
        let line = stamped.to_json_line();
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Sink errors must not take down the instrumented pipeline; a
        // truncated trace is the accepted failure mode for a full disk.
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
    }
}

/// Keeps the most recent `capacity` events in memory. Overflow is
/// accounted, not silent: every overwritten event ticks a monotonic
/// dropped counter readable via [`RingBufferSink::dropped`].
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<VecDeque<Stamped>>,
    dropped: AtomicU64,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Total events lost to ring overwrites since construction.
    pub fn dropped(&self) -> u64 {
        // ordering: counter read for reporting; the events themselves
        // are guarded by the mutex, so no extra ordering is needed.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of retained events, oldest first.
    pub fn events(&self) -> Vec<Stamped> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect() // lint:allow(hot-alloc): observer emission, active only when obs is attached
    }

    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingBufferSink {
    fn emit(&self, stamped: &Stamped) {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if events.len() == self.capacity {
            events.pop_front();
            // ordering: monotonic overwrite counter; eventual total
            // only, no synchronization with the event queue.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(stamped.clone()); // lint:allow(hot-alloc): observer emission, active only when obs is attached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, ParsedEvent};

    fn stamped(seq: u64) -> Stamped {
        Stamped {
            t: seq as f64 * 0.5,
            seq,
            event: Event::MacCollision { contenders: 2 },
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        for seq in 0..3 {
            sink.emit(&stamped(seq));
        }
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let parsed = ParsedEvent::from_json_line(line).unwrap();
            assert_eq!(parsed.seq, i as u64);
            assert_eq!(parsed.kind, "mac_collision");
        }
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let sink = RingBufferSink::new(3);
        for seq in 0..10 {
            sink.emit(&stamped(seq));
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn ring_buffer_accounts_overwrites() {
        let sink = RingBufferSink::new(3);
        assert_eq!(sink.dropped(), 0);
        for seq in 0..10 {
            sink.emit(&stamped(seq));
        }
        // 10 emitted, 3 retained: 7 overwrites, monotonically counted.
        assert_eq!(sink.dropped(), 7);
        sink.emit(&stamped(10));
        assert_eq!(sink.dropped(), 8);
    }

    #[test]
    fn ring_buffer_zero_capacity_clamps_to_one() {
        let sink = RingBufferSink::new(0);
        sink.emit(&stamped(1));
        sink.emit(&stamped(2));
        assert_eq!(sink.events().last().unwrap().seq, 2);
        assert_eq!(sink.len(), 1);
    }
}
