//! Metrics registry: counters, gauges, and histograms behind a trait.
//!
//! Instrumented code talks to a [`Recorder`]; production paths install the
//! no-op implementation (every call is a dynamic dispatch to an empty body,
//! no allocation, no locking), while tools install [`MemoryRecorder`] and
//! read the aggregates back out.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::histogram::LogHistogram;

/// Destination for scalar metrics.
///
/// Metric names are `&'static str` by design: instrumentation sites name
/// their metrics statically, which keeps the hot path free of formatting
/// and allocation.
pub trait Recorder {
    /// Add `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64);

    /// Set the named gauge to `value` (last-write-wins).
    fn gauge(&self, name: &'static str, value: f64);

    /// Record `value` into the named histogram.
    fn record(&self, name: &'static str, value: f64);

    /// Whether this recorder keeps anything. Instrumentation may use this
    /// to skip computing expensive values for a no-op recorder.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Folds a [`MetricsSnapshot`] captured elsewhere (e.g. a parallel
    /// worker's shard recorder) into this recorder: counters add, gauges
    /// last-write-win, histograms merge bucket-wise. The default
    /// implementation replays counters and gauges through the scalar
    /// methods but cannot represent whole histograms, so histogram-capable
    /// recorders (like [`MemoryRecorder`]) override it for exact merging.
    fn absorb(&self, snapshot: &MetricsSnapshot) {
        for (name, delta) in &snapshot.counters {
            self.counter(name, *delta);
        }
        for (name, value) in &snapshot.gauges {
            self.gauge(name, *value);
        }
    }
}

/// Discards everything. All methods are empty bodies, so an
/// `Arc<NoopRecorder>` call costs one virtual call and nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: f64) {}
    fn record(&self, _name: &'static str, _value: f64) {}
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Point-in-time view of everything a [`MemoryRecorder`] has collected.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, f64>,
    pub histograms: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }
}

#[derive(Debug, Default)]
struct MemoryState {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

/// Aggregates metrics in memory behind a mutex. Intended for tests, the
/// CLI, and benches — not for per-sample hot loops (batch there first).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    state: Mutex<MemoryState>,
}

impl MemoryRecorder {
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MetricsSnapshot {
            counters: state.counters.clone(), // lint:allow(hot-alloc): observer emission, active only when obs is attached
            gauges: state.gauges.clone(), // lint:allow(hot-alloc): observer emission, active only when obs is attached
            histograms: state.histograms.clone(), // lint:allow(hot-alloc): observer emission, active only when obs is attached
        }
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&self, name: &'static str, delta: u64) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *state.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.gauges.insert(name, value);
    }

    fn record(&self, name: &'static str, value: f64) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.histograms.entry(name).or_default().record(value);
    }

    fn absorb(&self, snapshot: &MetricsSnapshot) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, delta) in &snapshot.counters {
            *state.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &snapshot.gauges {
            state.gauges.insert(name, *value);
        }
        for (name, hist) in &snapshot.histograms {
            state.histograms.entry(name).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_reports_disabled() {
        let r = NoopRecorder;
        r.counter("x", 1);
        r.gauge("y", 2.0);
        r.record("z", 3.0);
        assert!(!r.is_enabled());
    }

    #[test]
    fn absorb_merges_shards_exactly() {
        // Sequential recording vs. two shards merged: identical snapshots.
        let whole = MemoryRecorder::new();
        let shard_a = MemoryRecorder::new();
        let shard_b = MemoryRecorder::new();
        for i in 0..50u64 {
            let target = if i % 2 == 0 { &shard_a } else { &shard_b };
            for r in [&whole, target] {
                r.counter("frames", 1);
                r.record("delay", (i as f64 + 1.0) * 1e-4);
            }
        }
        whole.gauge("depth", 9.0);
        shard_b.gauge("depth", 9.0);

        let merged = MemoryRecorder::new();
        merged.absorb(&shard_a.snapshot());
        merged.absorb(&shard_b.snapshot());
        let (want, got) = (whole.snapshot(), merged.snapshot());
        assert_eq!(want.counters, got.counters);
        assert_eq!(want.gauges, got.gauges);
        let (wh, gh) = (
            want.histogram("delay").unwrap(),
            got.histogram("delay").unwrap(),
        );
        assert_eq!(wh.count(), gh.count());
        assert!((wh.sum() - gh.sum()).abs() < 1e-12);
        assert_eq!(wh.quantile(0.5), gh.quantile(0.5));
        assert_eq!(wh.nonzero_buckets(), gh.nonzero_buckets());
    }

    #[test]
    fn memory_recorder_accumulates() {
        let r = MemoryRecorder::new();
        r.counter("tx", 2);
        r.counter("tx", 3);
        r.gauge("depth", 7.0);
        r.gauge("depth", 4.0);
        r.record("delay", 0.010);
        r.record("delay", 0.030);
        let snap = r.snapshot();
        assert_eq!(snap.counter("tx"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("depth"), Some(4.0));
        let h = snap.histogram("delay").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 0.020).abs() < 1e-12);
    }
}
