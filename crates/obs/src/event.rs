//! Structured events emitted by the PHY/MAC stack.
//!
//! Each event captures one decision or outcome at a layer boundary:
//! per-symbol RTE recalibration, side-channel CRC verdicts, A-HDR Bloom
//! membership checks, MAC deliveries/drops/retransmissions, and profiling
//! span completions. Events serialize to one JSON object per line with a
//! `kind` discriminant and layer tag, so downstream tools can aggregate
//! per layer without a schema registry.

use crate::json::{JsonValue, ObjectWriter};

/// Stack layer an event originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    Phy,
    Frame,
    Mac,
    Traffic,
    App,
}

impl Layer {
    pub fn as_str(&self) -> &'static str {
        match self {
            Layer::Phy => "phy",
            Layer::Frame => "frame",
            Layer::Mac => "mac",
            Layer::Traffic => "traffic",
            Layer::App => "app",
        }
    }

    fn from_str(s: &str) -> Option<Layer> {
        Some(match s {
            "phy" => Layer::Phy,
            "frame" => Layer::Frame,
            "mac" => Layer::Mac,
            "traffic" => Layer::Traffic,
            "app" => Layer::App,
            _ => return None,
        })
    }
}

/// One structured observation. The `t` timestamp lives in [`Stamped`], not
/// here, because different emitters stamp with different clocks (simulation
/// time for the MAC simulator, sample index for PHY decode).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// RTE considered a data-pilot update for one OFDM symbol.
    /// `applied` is false when the innovation gate or side CRC rejected it.
    RteUpdate { symbol: u64, applied: bool },
    /// Side-channel CRC verdict over one symbol group.
    SideCrc { group: u64, ok: bool },
    /// Receiver re-anchored equalizer phase tracking (skip or reset).
    EqualizerReset { symbol: u64 },
    /// A-HDR Bloom membership test for one station. `expected` carries
    /// ground truth when the caller knows it (None otherwise), letting
    /// report tooling compute an exact false-positive rate.
    AhdrCheck {
        station: u64,
        matched: bool,
        expected: Option<bool>,
    },
    /// A matched subframe decoded and passed its frame check.
    SubframeAccept { station: u64, bytes: u64 },
    /// A matched subframe failed its frame check after decode.
    SubframeReject { station: u64 },
    /// MAC delivered a frame to `dest` after `delay` seconds in queue.
    MacDelivery { dest: u64, bytes: u64, delay: f64 },
    /// MAC gave up on a frame (deadline expiry) after `delay` seconds.
    MacDrop { dest: u64, delay: f64 },
    /// MAC scheduled a retransmission for `dest`.
    MacRetransmission { dest: u64 },
    /// A transmission opportunity started: `stas` destinations aboard,
    /// `airtime` seconds of channel occupancy.
    MacTx { stas: u64, airtime: f64 },
    /// Two or more contenders drew the same backoff slot.
    MacCollision { contenders: u64 },
    /// Queue depth sample for one destination.
    QueueDepth { dest: u64, depth: u64 },
    /// Backoff drawn by a contender.
    Backoff { station: u64, slots: u64 },
    /// Traffic model handed the MAC a new arrival.
    TrafficArrival { dest: u64, bytes: u64 },
    /// A profiling span closed; `micros` is wall-clock duration.
    SpanEnd { name: &'static str, micros: u64 },
}

impl Event {
    /// The `kind` discriminant used in serialized form.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RteUpdate { .. } => "rte_update",
            Event::SideCrc { .. } => "side_crc",
            Event::EqualizerReset { .. } => "eq_reset",
            Event::AhdrCheck { .. } => "ahdr_check",
            Event::SubframeAccept { .. } => "subframe_accept",
            Event::SubframeReject { .. } => "subframe_reject",
            Event::MacDelivery { .. } => "mac_delivery",
            Event::MacDrop { .. } => "mac_drop",
            Event::MacRetransmission { .. } => "mac_retx",
            Event::MacTx { .. } => "mac_tx",
            Event::MacCollision { .. } => "mac_collision",
            Event::QueueDepth { .. } => "queue_depth",
            Event::Backoff { .. } => "backoff",
            Event::TrafficArrival { .. } => "traffic_arrival",
            Event::SpanEnd { .. } => "span_end",
        }
    }

    /// Layer this event belongs to.
    pub fn layer(&self) -> Layer {
        match self {
            Event::RteUpdate { .. } | Event::SideCrc { .. } | Event::EqualizerReset { .. } => {
                Layer::Phy
            }
            Event::AhdrCheck { .. }
            | Event::SubframeAccept { .. }
            | Event::SubframeReject { .. } => Layer::Frame,
            Event::MacDelivery { .. }
            | Event::MacDrop { .. }
            | Event::MacRetransmission { .. }
            | Event::MacTx { .. }
            | Event::MacCollision { .. }
            | Event::QueueDepth { .. }
            | Event::Backoff { .. } => Layer::Mac,
            Event::TrafficArrival { .. } => Layer::Traffic,
            Event::SpanEnd { .. } => Layer::App,
        }
    }
}

/// An [`Event`] plus its timestamp and a monotonically increasing sequence
/// number assigned by the emitting [`crate::Obs`] handle.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped {
    /// Emitter-defined clock (simulation seconds for mac-sim, zero where
    /// no meaningful clock exists).
    pub t: f64,
    /// Per-handle sequence number; total order of emission.
    pub seq: u64,
    pub event: Event,
}

impl Stamped {
    /// Serialize to one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.f64("t", self.t)
            .u64("seq", self.seq)
            .str("kind", self.event.kind())
            .str("layer", self.event.layer().as_str());
        match &self.event {
            Event::RteUpdate { symbol, applied } => {
                w.u64("symbol", *symbol).bool("applied", *applied);
            }
            Event::SideCrc { group, ok } => {
                w.u64("group", *group).bool("ok", *ok);
            }
            Event::EqualizerReset { symbol } => {
                w.u64("symbol", *symbol);
            }
            Event::AhdrCheck {
                station,
                matched,
                expected,
            } => {
                w.u64("station", *station)
                    .bool("matched", *matched)
                    .opt_bool("expected", *expected);
            }
            Event::SubframeAccept { station, bytes } => {
                w.u64("station", *station).u64("bytes", *bytes);
            }
            Event::SubframeReject { station } => {
                w.u64("station", *station);
            }
            Event::MacDelivery { dest, bytes, delay } => {
                w.u64("dest", *dest)
                    .u64("bytes", *bytes)
                    .f64("delay", *delay);
            }
            Event::MacDrop { dest, delay } => {
                w.u64("dest", *dest).f64("delay", *delay);
            }
            Event::MacRetransmission { dest } => {
                w.u64("dest", *dest);
            }
            Event::MacTx { stas, airtime } => {
                w.u64("stas", *stas).f64("airtime", *airtime);
            }
            Event::MacCollision { contenders } => {
                w.u64("contenders", *contenders);
            }
            Event::QueueDepth { dest, depth } => {
                w.u64("dest", *dest).u64("depth", *depth);
            }
            Event::Backoff { station, slots } => {
                w.u64("station", *station).u64("slots", *slots);
            }
            Event::TrafficArrival { dest, bytes } => {
                w.u64("dest", *dest).u64("bytes", *bytes);
            }
            Event::SpanEnd { name, micros } => {
                w.str("name", name).u64("micros", *micros);
            }
        }
        w.finish()
    }
}

/// A deserialized event record. Unlike [`Stamped`] this owns its strings,
/// because JSONL read back from disk has no `&'static` names.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    pub t: f64,
    pub seq: u64,
    pub kind: String,
    pub layer: Option<Layer>,
    pub fields: JsonValue,
}

impl ParsedEvent {
    /// Parse one JSONL line produced by [`Stamped::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<ParsedEvent, String> {
        let value = crate::json::parse(line)?;
        let t = value
            .get("t")
            .and_then(|v| v.as_f64())
            .ok_or("missing numeric 't'")?;
        let seq = value
            .get("seq")
            .and_then(|v| v.as_u64())
            .ok_or("missing integer 'seq'")?;
        let kind = value
            .get("kind")
            .and_then(|v| v.as_str())
            .ok_or("missing string 'kind'")?
            .to_string();
        let layer = value
            .get("layer")
            .and_then(|v| v.as_str())
            .and_then(Layer::from_str);
        Ok(ParsedEvent {
            t,
            seq,
            kind,
            layer,
            fields: value,
        })
    }

    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(|v| v.as_u64())
    }

    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(|v| v.as_f64())
    }

    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.fields.get(key).and_then(|v| v.as_bool())
    }

    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(|v| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: Event) -> ParsedEvent {
        let stamped = Stamped {
            t: 1.5,
            seq: 9,
            event,
        };
        let line = stamped.to_json_line();
        ParsedEvent::from_json_line(&line).unwrap()
    }

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            Event::RteUpdate {
                symbol: 3,
                applied: true,
            },
            Event::SideCrc {
                group: 1,
                ok: false,
            },
            Event::EqualizerReset { symbol: 7 },
            Event::AhdrCheck {
                station: 4,
                matched: true,
                expected: Some(false),
            },
            Event::SubframeAccept {
                station: 2,
                bytes: 1460,
            },
            Event::SubframeReject { station: 2 },
            Event::MacDelivery {
                dest: 1,
                bytes: 1500,
                delay: 0.012,
            },
            Event::MacDrop {
                dest: 5,
                delay: 0.1,
            },
            Event::MacRetransmission { dest: 3 },
            Event::MacTx {
                stas: 8,
                airtime: 0.002,
            },
            Event::MacCollision { contenders: 2 },
            Event::QueueDepth { dest: 0, depth: 14 },
            Event::Backoff {
                station: 6,
                slots: 15,
            },
            Event::TrafficArrival {
                dest: 1,
                bytes: 160,
            },
            Event::SpanEnd {
                name: "phy.decode",
                micros: 420,
            },
        ];
        for event in events {
            let kind = event.kind();
            let layer = event.layer();
            let parsed = round_trip(event);
            assert_eq!(parsed.kind, kind);
            assert_eq!(parsed.layer, Some(layer));
            assert_eq!(parsed.t, 1.5);
            assert_eq!(parsed.seq, 9);
        }
    }

    #[test]
    fn field_accessors_read_back_values() {
        let parsed = round_trip(Event::MacDelivery {
            dest: 7,
            bytes: 1500,
            delay: 0.025,
        });
        assert_eq!(parsed.u64_field("dest"), Some(7));
        assert_eq!(parsed.u64_field("bytes"), Some(1500));
        assert_eq!(parsed.f64_field("delay"), Some(0.025));
        assert_eq!(parsed.u64_field("missing"), None);
    }

    #[test]
    fn ahdr_expected_none_round_trips_as_null() {
        let parsed = round_trip(Event::AhdrCheck {
            station: 1,
            matched: true,
            expected: None,
        });
        assert_eq!(parsed.bool_field("expected"), None);
        assert_eq!(parsed.bool_field("matched"), Some(true));
    }
}
