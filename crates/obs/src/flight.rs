//! Frame flight recorder: a fixed-capacity, allocation-free ring of
//! packed binary trace records covering the full life of a frame across
//! layers — MAC enqueue, aggregation decision (A-HDR membership and
//! Bloom probe positions), airtime start/end, per-symbol RTE
//! recalibration and side-channel CRC verdicts, per-STA decode outcome,
//! and ACK/drop — correlated by frame id.
//!
//! Records are stamped in **simulation time** (seconds, or OFDM symbol
//! positions converted to seconds), never wall clock, so a trace is
//! byte-identical at any thread count. Each record is four packed `u64`
//! words (32 bytes, `Copy`, no heap); the ring is preallocated at
//! construction so recording never allocates. When the ring wraps, the
//! oldest record is overwritten and a monotonic dropped counter ticks —
//! overflow is visible, never silent.
//!
//! Two export forms: Chrome `trace_event` JSON (loadable in
//! chrome://tracing or Perfetto, one track per frame id) and a JSONL
//! stream digestible by `carpool report`.

use crate::json::{write_f64, ObjectWriter};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity used by the CLI's `--trace-out` wiring.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// What happened to the frame at this point of its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceKind {
    /// MAC queued the frame for a destination (`a` = dest, `b` = bytes).
    MacEnqueue = 1,
    /// The aggregator put the frame aboard a Carpool PPDU
    /// (`a` = subframe slot, `b` = A-HDR Bloom probe-position mask).
    AggDecision = 2,
    /// The PPDU carrying the frame hit the air (`a` = receivers aboard,
    /// `b` = airtime seconds as `f64` bits).
    AirtimeStart = 3,
    /// The PPDU left the air (`a` = receivers aboard, `b` = airtime bits).
    AirtimeEnd = 4,
    /// RTE considered a data-pilot update for one OFDM symbol
    /// (`a` = symbol index, `b` = 1 if applied, 0 if gated off).
    RteRecal = 5,
    /// Side-channel CRC verdict over one symbol group
    /// (`a` = first symbol of the group, `b` = 1 ok / 0 fail).
    SideCrc = 6,
    /// A station's A-HDR membership verdict (`a` = station id,
    /// `b` = bitmap of matched subframe indices; 0 = early drop).
    AhdrDecision = 7,
    /// Per-STA decode outcome (`a` = station id,
    /// `b` = `bytes << 1 | decoded`; `b` = 0 for a clean early drop).
    StaOutcome = 8,
    /// MAC delivery acknowledged (`a` = dest, `b` = bytes).
    MacAck = 9,
    /// MAC gave up on the frame (`a` = dest, `b` = queue delay as
    /// `f64` bits).
    MacDrop = 10,
    /// MAC scheduled a retransmission (`a` = dest).
    MacRetx = 11,
}

impl TraceKind {
    /// JSONL discriminant. Prefixed `trace_` so flight records never
    /// collide with the live [`crate::Event`] kinds in a mixed report.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::MacEnqueue => "trace_enqueue",
            TraceKind::AggDecision => "trace_agg",
            TraceKind::AirtimeStart => "trace_airtime_start",
            TraceKind::AirtimeEnd => "trace_airtime_end",
            TraceKind::RteRecal => "trace_rte",
            TraceKind::SideCrc => "trace_side_crc",
            TraceKind::AhdrDecision => "trace_ahdr",
            TraceKind::StaOutcome => "trace_outcome",
            TraceKind::MacAck => "trace_ack",
            TraceKind::MacDrop => "trace_drop",
            TraceKind::MacRetx => "trace_retx",
        }
    }

    /// Stack layer the record originates from.
    pub fn layer(self) -> &'static str {
        match self {
            TraceKind::MacEnqueue
            | TraceKind::AggDecision
            | TraceKind::AirtimeStart
            | TraceKind::AirtimeEnd
            | TraceKind::MacAck
            | TraceKind::MacDrop
            | TraceKind::MacRetx => "mac",
            TraceKind::RteRecal | TraceKind::SideCrc => "phy",
            TraceKind::AhdrDecision | TraceKind::StaOutcome => "frame",
        }
    }

    fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            1 => TraceKind::MacEnqueue,
            2 => TraceKind::AggDecision,
            3 => TraceKind::AirtimeStart,
            4 => TraceKind::AirtimeEnd,
            5 => TraceKind::RteRecal,
            6 => TraceKind::SideCrc,
            7 => TraceKind::AhdrDecision,
            8 => TraceKind::StaOutcome,
            9 => TraceKind::MacAck,
            10 => TraceKind::MacDrop,
            11 => TraceKind::MacRetx,
            _ => return None,
        })
    }
}

/// One flight-recorder record: four packed `u64` words, no heap.
///
/// Word 0 carries the kind in its top byte and the frame id in the low
/// 56 bits; word 1 is the sim-time stamp as `f64` bits; words 2 and 3
/// are kind-specific payloads (see [`TraceKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    meta: u64,
    t_bits: u64,
    a: u64,
    b: u64,
}

/// Frame ids occupy the low 56 bits of the meta word.
const FRAME_MASK: u64 = (1 << 56) - 1;

impl TraceRecord {
    /// Packs a record. Frame ids wider than 56 bits are truncated.
    pub fn new(kind: TraceKind, frame: u64, t: f64, a: u64, b: u64) -> TraceRecord {
        TraceRecord {
            meta: ((kind as u64) << 56) | (frame & FRAME_MASK),
            t_bits: t.to_bits(),
            a,
            b,
        }
    }

    /// The record kind (`None` only for corrupt word images).
    pub fn kind(&self) -> Option<TraceKind> {
        TraceKind::from_u8((self.meta >> 56) as u8)
    }

    /// The frame id this record belongs to.
    pub fn frame(&self) -> u64 {
        self.meta & FRAME_MASK
    }

    /// Sim-time stamp in seconds.
    pub fn t(&self) -> f64 {
        f64::from_bits(self.t_bits)
    }

    /// First payload word.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// Second payload word.
    pub fn b(&self) -> u64 {
        self.b
    }

    /// The raw packed representation.
    pub fn words(&self) -> [u64; 4] {
        [self.meta, self.t_bits, self.a, self.b]
    }

    /// Rebuilds a record from its packed words.
    pub fn from_words(words: [u64; 4]) -> TraceRecord {
        TraceRecord {
            meta: words[0],
            t_bits: words[1],
            a: words[2],
            b: words[3],
        }
    }

    /// One JSONL line (no trailing newline). Includes a `seq` field so
    /// the line parses as a [`crate::ParsedEvent`].
    pub fn to_json_line(&self, seq: u64) -> String {
        let kind = self.kind();
        let mut w = ObjectWriter::new();
        w.f64("t", self.t())
            .u64("seq", seq)
            .str("kind", kind.map_or("trace_unknown", TraceKind::as_str))
            .str("layer", kind.map_or("app", TraceKind::layer))
            .u64("frame", self.frame())
            .u64("a", self.a)
            .u64("b", self.b);
        w.finish()
    }
}

struct RingState {
    ring: Vec<TraceRecord>,
    /// Oldest record once the ring is full; next overwrite position.
    head: usize,
}

/// Fixed-capacity flight-recorder ring. Recording after the ring fills
/// overwrites the oldest record and increments a monotonic dropped
/// counter — capacity pressure is observable, never silent.
pub struct FlightRecorder {
    state: Mutex<RingState>,
    dropped: AtomicU64,
    capacity: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// Preallocates a ring of `capacity` records (clamped to at least 1).
    /// No further allocation happens on the record path.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            state: Mutex::new(RingState {
                ring: Vec::with_capacity(capacity),
                head: 0,
            }),
            dropped: AtomicU64::new(0),
            capacity,
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one trace record, overwriting the oldest when full.
    pub fn record(&self, rec: TraceRecord) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if s.ring.len() < self.capacity {
            s.ring.push(rec);
        } else {
            let head = s.head;
            s.ring[head] = rec;
            s.head = (head + 1) % self.capacity;
            // ordering: monotonic overwrite counter; readers only need an
            // eventually-consistent total, not synchronization with the
            // ring contents (those sit behind the mutex).
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records retained, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        let s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::with_capacity(s.ring.len()); // lint:allow(hot-alloc): observer emission, active only when obs is attached
        out.extend_from_slice(&s.ring[s.head..]);
        out.extend_from_slice(&s.ring[..s.head]);
        out
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records lost to ring overwrites since construction.
    pub fn dropped(&self) -> u64 {
        // ordering: counter read for reporting; monotonic, no ordering
        // constraint against other memory.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Folds a worker shard's records into this recorder in order, and
    /// accounts the shard's own overwrites into the dropped counter.
    /// Calling this in a deterministic shard order (e.g. station order)
    /// keeps the merged stream byte-identical at any thread count.
    pub fn absorb(&self, records: &[TraceRecord], shard_dropped: u64) {
        for &rec in records {
            self.record(rec);
        }
        if shard_dropped > 0 {
            // ordering: counter merge; same monotonic-total contract as
            // the overwrite increment above.
            self.dropped.fetch_add(shard_dropped, Ordering::Relaxed);
        }
    }
}

/// Serializes records as JSONL: one record per line plus a trailing
/// `trace_summary` line carrying the record and dropped totals, which
/// `carpool report` surfaces as ring-overflow accounting.
pub fn to_jsonl(records: &[TraceRecord], dropped: u64) -> String {
    let mut out = String::new();
    for (seq, rec) in records.iter().enumerate() {
        out.push_str(&rec.to_json_line(seq as u64));
        out.push('\n'); // lint:allow(hot-alloc): observer emission, active only when obs is attached
    }
    let t_max = records.last().map_or(0.0, TraceRecord::t);
    let mut w = ObjectWriter::new();
    w.f64("t", t_max)
        .u64("seq", records.len() as u64)
        .str("kind", "trace_summary")
        .str("layer", "app")
        .u64("records", records.len() as u64)
        .u64("dropped", dropped);
    out.push_str(&w.finish());
    out.push('\n');
    out
}

/// Layers given their own Chrome "process" row, in pid order 1..=3.
const CHROME_LAYERS: [&str; 3] = ["mac", "frame", "phy"];

fn layer_pid(layer: &str) -> u64 {
    match layer {
        "mac" => 1,
        "frame" => 2,
        _ => 3,
    }
}

/// Serializes records as Chrome `trace_event` JSON, loadable in
/// chrome://tracing and Perfetto. Each layer becomes a process row,
/// each frame id a track (`tid`) within it; airtime start/end pairs
/// become duration (`B`/`E`) events and everything else an instant
/// (`i`) event. Timestamps are sim-time microseconds — the export is a
/// pure function of the records, so it is byte-identical whenever the
/// trace stream is.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&ev);
    };
    for (pid, layer) in CHROME_LAYERS.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            // lint:allow(hot-alloc): observer emission, active only when obs is attached
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{layer}\"}}}}",
                pid + 1
            ),
        );
    }
    for rec in records {
        let Some(kind) = rec.kind() else { continue };
        let pid = layer_pid(kind.layer());
        let ts_us = rec.t() * 1e6;
        let mut ts = String::new();
        write_f64(&mut ts, ts_us);
        let (name, ph) = match kind {
            TraceKind::AirtimeStart => ("airtime", "B"),
            TraceKind::AirtimeEnd => ("airtime", "E"),
            other => (other.as_str(), "i"),
        };
        // lint:allow(hot-alloc): observer emission, active only when obs is attached
        let mut ev = format!(
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\
             \"tid\":{}",
            rec.frame()
        );
        if ph == "i" {
            ev.push_str(",\"s\":\"t\"");
        }
        let _ = write!(ev, ",\"args\":{{\"a\":{},\"b\":{}}}}}", rec.a(), rec.b());
        push(&mut out, &mut first, ev);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParsedEvent;

    fn rec(kind: TraceKind, frame: u64, t: f64) -> TraceRecord {
        TraceRecord::new(kind, frame, t, 7, 9)
    }

    #[test]
    fn record_packs_and_unpacks() {
        let r = TraceRecord::new(TraceKind::RteRecal, 0x00AB_CDEF, 1.25, 42, 43);
        assert_eq!(r.kind(), Some(TraceKind::RteRecal));
        assert_eq!(r.frame(), 0x00AB_CDEF);
        assert_eq!(r.t(), 1.25);
        assert_eq!(r.a(), 42);
        assert_eq!(r.b(), 43);
        assert_eq!(TraceRecord::from_words(r.words()), r);
        assert_eq!(std::mem::size_of::<TraceRecord>(), 32);
    }

    #[test]
    fn frame_id_truncates_to_56_bits() {
        let r = TraceRecord::new(TraceKind::MacAck, u64::MAX, 0.0, 0, 0);
        assert_eq!(r.frame(), FRAME_MASK);
        assert_eq!(r.kind(), Some(TraceKind::MacAck));
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let fr = FlightRecorder::new(4);
        for k in 0..10u64 {
            fr.record(rec(TraceKind::MacEnqueue, k, k as f64));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 6);
        let frames: Vec<u64> = fr.records().iter().map(TraceRecord::frame).collect();
        assert_eq!(frames, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let fr = FlightRecorder::new(0);
        fr.record(rec(TraceKind::MacAck, 1, 0.0));
        fr.record(rec(TraceKind::MacAck, 2, 0.0));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.records()[0].frame(), 2);
        assert_eq!(fr.dropped(), 1);
    }

    #[test]
    fn absorb_preserves_order_and_drop_totals() {
        let main = FlightRecorder::new(16);
        let shard = FlightRecorder::new(2);
        for k in 0..5u64 {
            shard.record(rec(TraceKind::StaOutcome, k, k as f64));
        }
        main.record(rec(TraceKind::MacEnqueue, 100, 0.0));
        main.absorb(&shard.records(), shard.dropped());
        let frames: Vec<u64> = main.records().iter().map(TraceRecord::frame).collect();
        assert_eq!(frames, vec![100, 3, 4]);
        assert_eq!(main.dropped(), 3);
    }

    #[test]
    fn jsonl_lines_parse_as_events_with_summary_trailer() {
        let records = vec![
            rec(TraceKind::MacEnqueue, 1, 0.5),
            rec(TraceKind::AhdrDecision, 1, 0.6),
        ];
        let text = to_jsonl(&records, 3);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = ParsedEvent::from_json_line(lines[0]).unwrap();
        assert_eq!(first.kind, "trace_enqueue");
        assert_eq!(first.u64_field("frame"), Some(1));
        assert_eq!(first.u64_field("a"), Some(7));
        let summary = ParsedEvent::from_json_line(lines[2]).unwrap();
        assert_eq!(summary.kind, "trace_summary");
        assert_eq!(summary.u64_field("dropped"), Some(3));
        assert_eq!(summary.u64_field("records"), Some(2));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_b_e_pairs() {
        let airtime = 0.002f64.to_bits();
        let records = vec![
            rec(TraceKind::MacEnqueue, 4, 0.0),
            TraceRecord::new(TraceKind::AirtimeStart, 4, 0.001, 2, airtime),
            TraceRecord::new(TraceKind::RteRecal, 4, 0.0015, 10, 1),
            TraceRecord::new(TraceKind::AirtimeEnd, 4, 0.003, 2, airtime),
        ];
        let text = to_chrome_trace(&records);
        let value = crate::json::parse(&text).expect("valid JSON");
        let events = match value.get("traceEvents").unwrap() {
            crate::json::JsonValue::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        // 3 metadata rows + 4 records.
        assert_eq!(events.len(), 7);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert!(phases.contains(&"B") && phases.contains(&"E"));
        // Frame id becomes the track id.
        assert_eq!(events[3].get("tid").unwrap().as_u64(), Some(4));
        // Sim-time microseconds.
        assert_eq!(events[4].get("ts").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let records: Vec<TraceRecord> = (0..50)
            .map(|k| TraceRecord::new(TraceKind::SideCrc, k % 3, k as f64 * 1e-4, k, k & 1))
            .collect();
        assert_eq!(to_chrome_trace(&records), to_chrome_trace(&records));
        assert_eq!(to_jsonl(&records, 0), to_jsonl(&records, 0));
    }
}
