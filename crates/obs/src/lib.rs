//! carpool-obs: observability layer for the Carpool PHY/MAC stack.
//!
//! Zero-dependency metrics, structured event tracing, and profiling spans:
//!
//! - [`Recorder`] — counters, gauges, and log-bucketed histograms, with a
//!   free no-op default ([`NoopRecorder`]) and an in-memory aggregator
//!   ([`MemoryRecorder`]).
//! - [`Event`] / [`EventSink`] — structured per-decision events from RTE
//!   recalibration down to MAC drops, streamed as JSON lines
//!   ([`JsonlSink`]) or retained in memory ([`RingBufferSink`]).
//! - [`Obs::span`] — RAII wall-clock spans that report into both the
//!   metrics registry (`span.<name>` histogram, seconds) and the event
//!   stream ([`Event::SpanEnd`], microseconds).
//!
//! The [`Obs`] handle bundles a recorder and a sink behind `Arc`s so it
//! clones cheaply into every layer. `Obs::noop()` is the default
//! everywhere; instrumented code guards non-trivial work with
//! [`Obs::enabled`], which keeps the disabled-path cost to one branch.

mod event;
/// Flight recorder: packed binary trace records of whole frame
/// lifecycles, with Chrome-trace and JSONL exporters.
pub mod flight;
mod histogram;
/// Minimal JSON writer/parser shared by the sinks and bench snapshots.
pub mod json;
/// Canonical metric and span names shared by the instrumented crates.
pub mod names;
mod recorder;
mod sink;
mod span;

pub use event::{Event, Layer, ParsedEvent, Stamped};
pub use flight::{FlightRecorder, TraceKind, TraceRecord, DEFAULT_TRACE_CAPACITY};
pub use histogram::{LogHistogram, Quantiles};
pub use recorder::{MemoryRecorder, MetricsSnapshot, NoopRecorder, Recorder};
pub use sink::{EventSink, JsonlSink, NoopSink, RingBufferSink};
pub use span::{SpanStats, SpanTimer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared observability handle: one recorder, one event sink, an
/// optional flight recorder, and a sequence counter. Clones share all
/// of them; the frame-context and time-base fields are per-clone so a
/// layer can stamp its records for one frame without touching siblings.
#[derive(Clone)]
pub struct Obs {
    recorder: Arc<dyn Recorder + Send + Sync>,
    sink: Arc<dyn EventSink + Send + Sync>,
    flight: Option<Arc<FlightRecorder>>,
    seq: Arc<AtomicU64>,
    enabled: bool,
    /// Frame id stamped on [`Obs::trace`] records from this clone.
    frame_ctx: u64,
    /// Sim-time offset added to [`Obs::trace`] stamps from this clone,
    /// so layers clocked in frame-relative time (e.g. PHY symbol
    /// positions) land on the MAC's absolute timeline.
    t0: f64,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled)
            .field("tracing", &self.flight.is_some())
            // ordering: counter read for debug display only; no
            // synchronization intended.
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::noop()
    }
}

impl Obs {
    /// A handle that observes nothing. [`Obs::enabled`] returns false, so
    /// instrumented hot paths skip event construction entirely.
    pub fn noop() -> Obs {
        Obs {
            recorder: Arc::new(NoopRecorder),
            sink: Arc::new(NoopSink),
            flight: None,
            seq: Arc::new(AtomicU64::new(0)),
            enabled: false,
            frame_ctx: 0,
            t0: 0.0,
        }
    }

    /// Build a handle from explicit recorder and sink implementations.
    pub fn new(
        recorder: Arc<dyn Recorder + Send + Sync>,
        sink: Arc<dyn EventSink + Send + Sync>,
    ) -> Obs {
        let enabled = recorder.is_enabled() || sink.is_enabled();
        Obs {
            recorder,
            sink,
            flight: None,
            seq: Arc::new(AtomicU64::new(0)),
            enabled,
            frame_ctx: 0,
            t0: 0.0,
        }
    }

    /// Metrics-only handle (events are dropped).
    pub fn with_recorder(recorder: Arc<dyn Recorder + Send + Sync>) -> Obs {
        Obs::new(recorder, Arc::new(NoopSink))
    }

    /// Events-only handle (metrics are dropped).
    pub fn with_sink(sink: Arc<dyn EventSink + Send + Sync>) -> Obs {
        Obs::new(Arc::new(NoopRecorder), sink)
    }

    /// Attaches a [`FlightRecorder`] (consuming builder). The handle
    /// becomes enabled so instrumented sites inside `enabled()` guards
    /// also reach their `trace` calls.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Obs {
        self.flight = Some(flight);
        self.enabled = true;
        self
    }

    /// Whether any backend is live. Gate non-trivial instrumentation on
    /// this — when false, every other method is a no-op.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether a flight recorder is attached. The disabled path is this
    /// single branch; [`Obs::trace`] re-checks it internally, so callers
    /// only need this to skip argument computation.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.flight.is_some()
    }

    /// The attached flight recorder, for export and shard merging.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// A clone whose [`Obs::trace`] records are stamped with `frame`.
    /// Cheap (three `Arc` bumps); hand it to layers that cannot thread a
    /// frame id through their own APIs.
    pub fn for_frame(&self, frame: u64) -> Obs {
        let mut clone = self.clone(); // lint:allow(hot-alloc): observer emission, active only when obs is attached
        clone.frame_ctx = frame;
        clone
    }

    /// The frame id stamped on this clone's trace records.
    pub fn frame_ctx(&self) -> u64 {
        self.frame_ctx
    }

    /// A clone whose [`Obs::trace`] stamps are offset by `t0` seconds,
    /// anchoring frame-relative clocks (PHY symbol time) to the
    /// absolute sim timeline.
    pub fn with_time_base(&self, t0: f64) -> Obs {
        let mut clone = self.clone();
        clone.t0 = t0;
        clone
    }

    /// The sim-time offset applied to this clone's trace stamps.
    pub fn time_base(&self) -> f64 {
        self.t0
    }

    /// Records a flight-recorder trace for this clone's frame context at
    /// sim time `t0 + t`. One branch when no recorder is attached.
    #[inline]
    pub fn trace(&self, kind: TraceKind, t: f64, a: u64, b: u64) {
        if let Some(flight) = &self.flight {
            flight.record(TraceRecord::new(kind, self.frame_ctx, self.t0 + t, a, b));
        }
    }

    /// [`Obs::trace`] with an explicit frame id — for emitters like the
    /// MAC simulator that track many frames through one handle.
    #[inline]
    pub fn trace_frame(&self, kind: TraceKind, frame: u64, t: f64, a: u64, b: u64) {
        if let Some(flight) = &self.flight {
            flight.record(TraceRecord::new(kind, frame, self.t0 + t, a, b));
        }
    }

    /// Add `delta` to a monotonic counter.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if self.enabled {
            self.recorder.counter(name, delta);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if self.enabled {
            self.recorder.gauge(name, value);
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn record(&self, name: &'static str, value: f64) {
        if self.enabled {
            self.recorder.record(name, value);
        }
    }

    /// Folds a [`MetricsSnapshot`] captured by another recorder (e.g. a
    /// parallel worker's shard) into this handle's recorder. Counters
    /// add, gauges last-write-win, histograms merge bucket-wise — see
    /// [`Recorder::absorb`].
    pub fn merge_metrics(&self, snapshot: &MetricsSnapshot) {
        if self.enabled {
            self.recorder.absorb(snapshot);
        }
    }

    /// Emit a structured event stamped with clock value `t` and the next
    /// sequence number.
    #[inline]
    pub fn emit(&self, t: f64, event: Event) {
        if !self.enabled {
            return;
        }
        // ordering: sequence counter; only monotonic uniqueness is
        // needed, ordering relative to other memory is irrelevant.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.sink.emit(&Stamped { t, seq, event });
    }

    /// Open a wall-clock profiling span. On drop the guard records the
    /// duration into the `span.<name>` histogram and emits
    /// [`Event::SpanEnd`]. Inert (no clock read) when disabled.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            obs: self,
            timer: if self.enabled {
                Some(SpanTimer::start(name))
            } else {
                None
            },
            name,
        }
    }

    /// Flush the underlying sink (e.g. buffered JSONL output).
    pub fn flush(&self) {
        self.sink.flush();
    }
}

/// RAII guard returned by [`Obs::span`]; reports on drop.
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    timer: Option<SpanTimer>,
    name: &'static str,
}

impl SpanGuard<'_> {
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(timer) = self.timer {
            let secs = timer.elapsed_secs();
            self.obs.recorder.record(span_metric_name(self.name), secs);
            self.obs.emit(
                0.0,
                Event::SpanEnd {
                    name: self.name,
                    micros: (secs * 1e6) as u64,
                },
            );
        }
    }
}

/// Metric name for a span's duration histogram. Span names are a small
/// fixed vocabulary, so the mapping is a static table rather than a
/// runtime `format!` (which would allocate on the hot path).
fn span_metric_name(span: &'static str) -> &'static str {
    match span {
        "phy.encode" => "span.phy.encode",
        "phy.decode" => "span.phy.decode",
        "phy.equalize" => "span.phy.equalize",
        "phy.viterbi" => "span.phy.viterbi",
        "phy.fft" => "span.phy.fft",
        "mac.sim_loop" => "span.mac.sim_loop",
        "mac.txop" => "span.mac.txop",
        "frame.receive" => "span.frame.receive",
        "channel.transmit" => "span.channel.transmit",
        "bloom.fp_measure" => "span.bloom.fp_measure",
        _ => "span.other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_silent() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.counter("c", 1);
        obs.gauge("g", 1.0);
        obs.record("h", 1.0);
        obs.emit(0.0, Event::MacCollision { contenders: 2 });
        {
            let _span = obs.span("phy.decode");
        }
        obs.flush();
    }

    #[test]
    fn emit_assigns_increasing_seq() {
        let sink = Arc::new(RingBufferSink::new(16));
        let obs = Obs::with_sink(sink.clone());
        assert!(obs.enabled());
        for i in 0..5 {
            obs.emit(i as f64, Event::EqualizerReset { symbol: i });
        }
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clones_share_seq_counter() {
        let sink = Arc::new(RingBufferSink::new(16));
        let obs = Obs::with_sink(sink.clone());
        let clone = obs.clone();
        obs.emit(0.0, Event::EqualizerReset { symbol: 0 });
        clone.emit(0.0, Event::EqualizerReset { symbol: 1 });
        obs.emit(0.0, Event::EqualizerReset { symbol: 2 });
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn span_reports_to_recorder_and_sink() {
        let recorder = Arc::new(MemoryRecorder::new());
        let sink = Arc::new(RingBufferSink::new(4));
        let obs = Obs::new(recorder.clone(), sink.clone());
        {
            let _span = obs.span("phy.decode");
            std::hint::black_box(0u64);
        }
        let snap = recorder.snapshot();
        let h = snap.histogram("span.phy.decode").expect("span histogram");
        assert_eq!(h.count(), 1);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].event,
            Event::SpanEnd {
                name: "phy.decode",
                ..
            }
        ));
    }

    #[test]
    fn trace_is_inert_without_flight_recorder() {
        let obs = Obs::noop();
        assert!(!obs.tracing());
        obs.trace(TraceKind::MacEnqueue, 0.0, 1, 2);
        obs.trace_frame(TraceKind::MacAck, 9, 0.0, 1, 2);
        assert!(obs.flight().is_none());
    }

    #[test]
    fn flight_handle_stamps_frame_ctx_and_time_base() {
        let flight = Arc::new(FlightRecorder::new(8));
        let obs = Obs::noop().with_flight(flight.clone());
        assert!(obs.enabled() && obs.tracing());
        let framed = obs.for_frame(42).with_time_base(1.0);
        framed.trace(TraceKind::RteRecal, 0.25, 3, 1);
        framed.trace_frame(TraceKind::MacAck, 77, 0.5, 0, 0);
        let recs = flight.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].frame(), 42);
        assert_eq!(recs[0].t(), 1.25);
        assert_eq!(recs[0].kind(), Some(TraceKind::RteRecal));
        assert_eq!(recs[1].frame(), 77);
        assert_eq!(recs[1].t(), 1.5);
        // The base handle is untouched by the per-clone context.
        assert_eq!(obs.frame_ctx(), 0);
        assert_eq!(obs.time_base(), 0.0);
    }

    #[test]
    fn unknown_span_name_lands_in_other() {
        let recorder = Arc::new(MemoryRecorder::new());
        let obs = Obs::with_recorder(recorder.clone());
        {
            let _span = obs.span("something.custom");
        }
        assert_eq!(
            recorder.snapshot().histogram("span.other").unwrap().count(),
            1
        );
    }
}
