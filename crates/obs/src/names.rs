//! Canonical span and counter names used across the stack.
//!
//! Span names feed [`crate::Obs::span`] and must stay in sync with the
//! static `span.<name>` histogram table in the crate root; counter names
//! are free-form but centralised here so call sites and tests cannot
//! drift apart. Kernel-level spans (`PHY_VITERBI`, `PHY_FFT`) time the
//! individual decode kernels inside the RX chain; the TX-cache counters
//! track waveform memoization across SNR sweep points.

/// Span: one full PHY section decode (`rx::decode_section`).
pub const PHY_DECODE: &str = "phy.decode";
/// Span: the Viterbi FEC kernel inside a section decode.
pub const PHY_VITERBI: &str = "phy.viterbi";
/// Span: an FFT/IFFT kernel invocation.
#[cfg(test)]
const PHY_FFT: &str = "phy.fft";
/// Span: per-symbol channel equalization.
#[cfg(test)]
const PHY_EQUALIZE: &str = "phy.equalize";
/// Span: one channel traversal (fading + CFO + AWGN).
pub const CHANNEL_TRANSMIT: &str = "channel.transmit";

/// Counter: TX waveform served from the process-wide memoization cache.
pub const TX_CACHE_HIT: &str = "phy.txcache.hit";
/// Counter: TX waveform encoded because no cached entry matched.
pub const TX_CACHE_MISS: &str = "phy.txcache.miss";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, Obs};
    use std::sync::Arc;

    #[test]
    fn kernel_spans_have_dedicated_histograms() {
        // Every kernel span must land in its own `span.<name>` histogram,
        // not the `span.other` catch-all, or per-kernel timings collapse.
        for name in [PHY_DECODE, PHY_VITERBI, PHY_FFT, PHY_EQUALIZE] {
            let recorder = Arc::new(MemoryRecorder::new());
            let obs = Obs::with_recorder(recorder.clone());
            {
                let _span = obs.span(name);
            }
            let snap = recorder.snapshot();
            assert!(
                snap.histogram("span.other").is_none(),
                "span {name} fell into span.other"
            );
        }
    }
}
