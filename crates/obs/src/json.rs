//! Hand-rolled JSON support so the crate stays zero-dependency.
//!
//! The writer emits compact single-line objects; the parser accepts any
//! standard JSON value. Both exist to serve the JSONL event stream, not as
//! a general serialization framework.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c), // lint:allow(hot-alloc): observer emission, active only when obs is attached
        }
    }
    out.push('"');
}

/// Append an `f64` in a JSON-legal form (NaN/inf become `null`).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral values free of exponent noise: 3 not 3.0e0.
            let _ = write!(out, "{:.1}", v);
        } else {
            let _ = write!(out, "{}", v);
        }
    } else {
        out.push_str("null");
    }
}

/// Incremental builder for one flat JSON object on a single line.
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    pub fn opt_bool(&mut self, key: &str, value: Option<bool>) -> &mut Self {
        match value {
            Some(v) => self.bool(key, v),
            None => {
                self.key(key);
                self.buf.push_str("null");
                self
            }
        }
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjectWriter {
    fn default() -> Self {
        ObjectWriter::new()
    }
}

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a single JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let Some(c) = s.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid utf-8")?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_formats() {
        let mut w = ObjectWriter::new();
        w.str("kind", "side\"crc\n")
            .u64("symbol", 42)
            .f64("t", 1.25)
            .bool("ok", true)
            .opt_bool("expected", None);
        let line = w.finish();
        assert_eq!(
            line,
            r#"{"kind":"side\"crc\n","symbol":42,"t":1.25,"ok":true,"expected":null}"#
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = ObjectWriter::new();
        w.str("kind", "mac_delivery")
            .u64("bytes", 1500)
            .f64("delay", 0.02);
        let parsed = parse(&w.finish()).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("mac_delivery"));
        assert_eq!(parsed.get("bytes").unwrap().as_u64(), Some(1500));
        assert_eq!(parsed.get("delay").unwrap().as_f64(), Some(0.02));
    }

    #[test]
    fn parse_handles_nesting_and_escapes() {
        let v = parse(r#"{"a": [1, -2.5e1, "xA", null, {"b": false}]}"#).unwrap();
        let arr = match v.get("a").unwrap() {
            JsonValue::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("xA"));
        assert_eq!(arr[3], JsonValue::Null);
        assert_eq!(arr[4].get("b").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = ObjectWriter::new();
        w.f64("x", f64::NAN).f64("y", f64::INFINITY);
        assert_eq!(w.finish(), r#"{"x":null,"y":null}"#);
    }
}
