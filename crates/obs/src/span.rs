//! Lightweight wall-clock profiling spans.
//!
//! A [`SpanTimer`] measures one region; the RAII [`SpanGuard`] returned by
//! [`crate::Obs::span`] reports the duration to the histogram metric
//! `span.<name>` (in seconds) and emits a [`crate::Event::SpanEnd`] event
//! when it drops. When observability is disabled the guard is inert: no
//! clock read, no event.

use std::time::Instant;

/// Manual start/stop timer for when RAII scoping is inconvenient
/// (e.g. timing across loop iterations or collecting raw samples).
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    name: &'static str,
    start: Instant,
}

impl SpanTimer {
    pub fn start(name: &'static str) -> SpanTimer {
        SpanTimer {
            name,
            // lint:allow(det): profiling-only; span durations feed stderr summaries, never figure or trace payloads
            start: Instant::now(),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Seconds elapsed since `start`.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Whole microseconds elapsed since `start`.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// Aggregated wall-clock samples for one named region — used by bench
/// tooling that wants per-region stats without a full recorder.
#[derive(Debug, Clone)]
pub struct SpanStats {
    pub name: &'static str,
    samples: Vec<f64>,
}

impl SpanStats {
    pub fn new(name: &'static str) -> SpanStats {
        SpanStats {
            name,
            samples: Vec::new(),
        }
    }

    pub fn record(&mut self, secs: f64) {
        self.samples.push(secs);
    }

    /// Time one call of `f` and record it; returns `f`'s output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        // lint:allow(det): profiling-only; recorded durations feed stderr summaries, never figure or trace payloads
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed().as_secs_f64());
        out
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn total_secs(&self) -> f64 {
        self.samples.iter().sum()
    }

    pub fn mean_secs(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.total_secs() / self.samples.len() as f64
        }
    }

    pub fn min_secs(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max_secs(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Median of recorded samples (0.0 when empty).
    pub fn median_secs(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[sorted.len() / 2]
    }

    /// Mean after dropping `⌊n·trim⌋` samples from each tail of the
    /// sorted sequence (0.0 when empty) — a scheduler-noise-robust
    /// location estimate for bench rows on shared machines. `trim` is
    /// the per-tail fraction; it is clamped so at least one sample
    /// always survives.
    pub fn trimmed_mean_secs(&self, trim: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let cut =
            ((sorted.len() as f64 * trim.clamp(0.0, 0.5)) as usize).min((sorted.len() - 1) / 2);
        let kept = &sorted[cut..sorted.len() - cut];
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_nonnegative_time() {
        let timer = SpanTimer::start("test");
        assert_eq!(timer.name(), "test");
        assert!(timer.elapsed_secs() >= 0.0);
    }

    #[test]
    fn span_stats_aggregates() {
        let mut stats = SpanStats::new("encode");
        stats.record(0.002);
        stats.record(0.004);
        stats.record(0.003);
        assert_eq!(stats.count(), 3);
        assert!((stats.total_secs() - 0.009).abs() < 1e-12);
        assert!((stats.mean_secs() - 0.003).abs() < 1e-12);
        assert_eq!(stats.min_secs(), 0.002);
        assert_eq!(stats.max_secs(), 0.004);
        assert_eq!(stats.median_secs(), 0.003);
    }

    #[test]
    fn trimmed_mean_discards_tails() {
        let mut stats = SpanStats::new("rx");
        // One wild outlier among nine tight samples: the 10%-per-tail
        // trim drops the min and the max, leaving the tight cluster.
        for s in [3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 0.1, 100.0] {
            stats.record(s);
        }
        assert_eq!(stats.trimmed_mean_secs(0.1), 3.0);
        // Untrimmed degenerates to the plain mean.
        assert!((stats.trimmed_mean_secs(0.0) - stats.mean_secs()).abs() < 1e-12);
        // Extreme trim keeps at least one (central) sample.
        assert_eq!(stats.trimmed_mean_secs(0.5), 3.0);
        assert_eq!(SpanStats::new("empty").trimmed_mean_secs(0.2), 0.0);
    }

    #[test]
    fn time_returns_closure_output() {
        let mut stats = SpanStats::new("x");
        let out = stats.time(|| 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(stats.count(), 1);
    }
}
