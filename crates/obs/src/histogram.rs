//! Log-bucketed histogram for latency-style distributions.
//!
//! Values are assigned to buckets whose upper bounds grow geometrically, so a
//! fixed, small number of buckets covers nine decades (microseconds to
//! kiloseconds) with bounded relative error. Quantiles are answered from the
//! bucket upper bound, which keeps them conservative (never under-reported).

/// Number of buckets per decade. 16 sub-buckets bounds the relative
/// quantile error at roughly `10^(1/16) - 1` ≈ 15%.
const BUCKETS_PER_DECADE: usize = 16;
/// Smallest resolvable value; everything below lands in bucket 0.
const MIN_VALUE: f64 = 1e-6;
/// Total decades covered above `MIN_VALUE`.
const DECADES: usize = 9;
const NUM_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES + 1;

/// A fixed-size log-bucketed histogram over non-negative `f64` samples.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucket
/// counts, so means and extremes are precise even though quantiles are
/// bucket-resolution approximations.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for `value`. Values at or below [`MIN_VALUE`] map to 0;
    /// values beyond the covered range clamp into the last bucket.
    pub fn bucket_index(value: f64) -> usize {
        // NaN also lands here: `<=` is false for NaN, so check it explicitly
        // rather than relying on a negated comparison.
        if value <= MIN_VALUE || value.is_nan() {
            return 0;
        }
        let decades_above = (value / MIN_VALUE).log10();
        let idx = (decades_above * BUCKETS_PER_DECADE as f64).ceil() as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Upper bound of bucket `idx` (the largest value that maps into it).
    pub fn bucket_upper_bound(idx: usize) -> f64 {
        if idx == 0 {
            return MIN_VALUE;
        }
        let idx = idx.min(NUM_BUCKETS - 1);
        MIN_VALUE * 10f64.powf(idx as f64 / BUCKETS_PER_DECADE as f64)
    }

    /// Record one sample. Negative and NaN samples are clamped to zero —
    /// the histogram models non-negative durations.
    pub fn record(&mut self, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum of recorded samples (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact minimum of recorded samples (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Approximate quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing the q-th sample. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 means the first sample.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // The exact max is a tighter bound than the last bucket edge.
                return Self::bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_bound(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0;
        let mut v = 1e-7;
        while v < 1e4 {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= prev, "index decreased at {v}");
            prev = idx;
            v *= 1.07;
        }
    }

    #[test]
    fn value_maps_below_its_bucket_upper_bound() {
        for &v in &[1e-6, 3.3e-5, 0.002, 0.02, 1.0, 17.5, 999.0] {
            let idx = LogHistogram::bucket_index(v);
            assert!(
                v <= LogHistogram::bucket_upper_bound(idx) * (1.0 + 1e-12),
                "{v} exceeds bound of bucket {idx}"
            );
            if idx > 0 {
                assert!(
                    v > LogHistogram::bucket_upper_bound(idx - 1) * (1.0 - 1e-12),
                    "{v} should not fit in bucket {}",
                    idx - 1
                );
            }
        }
    }

    #[test]
    fn quantile_brackets_true_value() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p50 = h.quantile(0.5);
        // Upper-bound reporting: at or above the true median, within one
        // bucket's relative width (~15%).
        assert!((0.5..=0.5 * 1.16).contains(&p50), "p50 = {p50}");
        let p95 = h.quantile(0.95);
        assert!((0.95..=0.95 * 1.16).contains(&p95), "p95 = {p95}");
        assert_eq!(h.quantile(1.0), 1.0);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        let mut h = LogHistogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..100 {
            let v = (i as f64 + 1.0) * 7e-4;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert!((a.sum() - all.sum()).abs() < 1e-9);
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let mut h = LogHistogram::new();
        h.record(1e12);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1e12);
        // Quantile is capped by the exact max.
        let last_bound = LogHistogram::bucket_upper_bound(usize::MAX);
        assert_eq!(h.quantile(0.5), last_bound.min(1e12));
    }
}
