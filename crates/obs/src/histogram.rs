//! Log-bucketed histogram for latency-style distributions.
//!
//! Values are assigned to buckets whose upper bounds grow geometrically, so a
//! fixed, small number of buckets covers nine decades (microseconds to
//! kiloseconds) with bounded relative error. Quantiles are answered from the
//! bucket upper bound, which keeps them conservative (never under-reported).

/// Number of buckets per decade. 16 sub-buckets bounds the relative
/// quantile error at roughly `10^(1/16) - 1` ≈ 15%.
const BUCKETS_PER_DECADE: usize = 16;
/// Smallest resolvable value; everything below lands in bucket 0.
const MIN_VALUE: f64 = 1e-6;
/// Total decades covered above `MIN_VALUE`.
const DECADES: usize = 9;
const NUM_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES + 1;

/// A fixed-size log-bucketed histogram over non-negative `f64` samples.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucket
/// counts, so means and extremes are precise even though quantiles are
/// bucket-resolution approximations.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for `value`. Values at or below [`MIN_VALUE`] map to 0;
    /// values beyond the covered range clamp into the last bucket.
    pub fn bucket_index(value: f64) -> usize {
        // NaN also lands here: `<=` is false for NaN, so check it explicitly
        // rather than relying on a negated comparison.
        if value <= MIN_VALUE || value.is_nan() {
            return 0;
        }
        let decades_above = (value / MIN_VALUE).log10();
        let idx = (decades_above * BUCKETS_PER_DECADE as f64).ceil() as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Upper bound of bucket `idx` (the largest value that maps into it).
    pub fn bucket_upper_bound(idx: usize) -> f64 {
        if idx == 0 {
            return MIN_VALUE;
        }
        let idx = idx.min(NUM_BUCKETS - 1);
        MIN_VALUE * 10f64.powf(idx as f64 / BUCKETS_PER_DECADE as f64)
    }

    /// Record one sample. Negative and NaN samples are clamped to zero —
    /// the histogram models non-negative durations.
    pub fn record(&mut self, value: f64) {
        self.record_many(value, 1);
    }

    /// Record `n` identical samples in one bucket update. Counts
    /// saturate rather than wrap, so a merge of pathological inputs can
    /// never overflow quantile accounting.
    pub fn record_many(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let idx = Self::bucket_index(value);
        self.buckets[idx] = self.buckets[idx].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum += value * n as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum of recorded samples (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact minimum of recorded samples (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Approximate quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing the q-th sample. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 means the first sample.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= target {
                // The exact max is a tighter bound than the last bucket edge.
                return Self::bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// The fixed report quantiles in one bucket pass: p50, p95, p99,
    /// and p999 (with exact min/max bounds applied, like
    /// [`LogHistogram::quantile`]).
    pub fn quantiles(&self) -> Quantiles {
        let mut out = [0.0f64; 4];
        if self.count == 0 {
            return Quantiles::from_array(out);
        }
        let targets = Quantiles::FRACTIONS.map(|q| {
            ((q * self.count as f64).ceil() as u64)
                .max(1)
                .min(self.count)
        });
        let mut seen = 0u64;
        let mut next = 0usize;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            while next < targets.len() && seen >= targets[next] {
                out[next] = Self::bucket_upper_bound(idx).min(self.max);
                next += 1;
            }
            if next == targets.len() {
                break;
            }
        }
        for slot in out.iter_mut().skip(next) {
            *slot = self.max;
        }
        Quantiles::from_array(out)
    }

    /// Merge another histogram into this one. Bucket and sample counts
    /// saturate rather than wrap.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of buckets in the fixed layout.
    pub fn num_buckets() -> usize {
        NUM_BUCKETS
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_bound(i), n))
            .collect()
    }
}

/// The report-grade quantile set of a [`LogHistogram`], computed in a
/// single pass by [`LogHistogram::quantiles`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Quantiles {
    /// The quantile fractions, in ascending order.
    pub const FRACTIONS: [f64; 4] = [0.50, 0.95, 0.99, 0.999];

    fn from_array(values: [f64; 4]) -> Quantiles {
        Quantiles {
            p50: values[0],
            p95: values[1],
            p99: values[2],
            p999: values[3],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0;
        let mut v = 1e-7;
        while v < 1e4 {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= prev, "index decreased at {v}");
            prev = idx;
            v *= 1.07;
        }
    }

    #[test]
    fn value_maps_below_its_bucket_upper_bound() {
        for &v in &[1e-6, 3.3e-5, 0.002, 0.02, 1.0, 17.5, 999.0] {
            let idx = LogHistogram::bucket_index(v);
            assert!(
                v <= LogHistogram::bucket_upper_bound(idx) * (1.0 + 1e-12),
                "{v} exceeds bound of bucket {idx}"
            );
            if idx > 0 {
                assert!(
                    v > LogHistogram::bucket_upper_bound(idx - 1) * (1.0 - 1e-12),
                    "{v} should not fit in bucket {}",
                    idx - 1
                );
            }
        }
    }

    #[test]
    fn quantile_brackets_true_value() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p50 = h.quantile(0.5);
        // Upper-bound reporting: at or above the true median, within one
        // bucket's relative width (~15%).
        assert!((0.5..=0.5 * 1.16).contains(&p50), "p50 = {p50}");
        let p95 = h.quantile(0.95);
        assert!((0.95..=0.95 * 1.16).contains(&p95), "p95 = {p95}");
        assert_eq!(h.quantile(1.0), 1.0);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        let mut h = LogHistogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..100 {
            let v = (i as f64 + 1.0) * 7e-4;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert!((a.sum() - all.sum()).abs() < 1e-9);
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
    }

    #[test]
    fn quantiles_struct_matches_individual_queries() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000 {
            h.record(i as f64 * 1e-4);
        }
        let q = h.quantiles();
        assert_eq!(q.p50, h.quantile(0.50));
        assert_eq!(q.p95, h.quantile(0.95));
        assert_eq!(q.p99, h.quantile(0.99));
        assert_eq!(q.p999, h.quantile(0.999));
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.p999);
        assert!((0.5..=0.5 * 1.16).contains(&q.p50), "p50 = {}", q.p50);
        assert!((0.999..=1.0).contains(&q.p999), "p999 = {}", q.p999);
    }

    #[test]
    fn p0_and_p100_hit_first_and_last_samples() {
        let mut h = LogHistogram::new();
        h.record(2e-3);
        h.record(0.5);
        h.record(40.0);
        // q = 0 targets the first sample's bucket; the bucket upper
        // bound brackets it within one bucket's relative width.
        let p0 = h.quantile(0.0);
        assert!((2e-3..=2e-3 * 1.16).contains(&p0), "p0 = {p0}");
        // q = 1 is exact: the upper bound is capped by the exact max.
        assert_eq!(h.quantile(1.0), 40.0);
        // Out-of-range inputs clamp rather than panic.
        assert_eq!(h.quantile(-3.0), p0);
        assert_eq!(h.quantile(7.0), 40.0);
    }

    #[test]
    fn single_sample_answers_every_quantile_exactly() {
        let mut h = LogHistogram::new();
        h.record(0.0123);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            // min(exact max) makes a one-sample histogram exact at any q.
            assert_eq!(h.quantile(q), 0.0123, "q = {q}");
        }
        let qs = h.quantiles();
        assert_eq!(
            (qs.p50, qs.p95, qs.p99, qs.p999),
            (0.0123, 0.0123, 0.0123, 0.0123)
        );
    }

    #[test]
    fn bucket_boundary_values_stay_in_their_bucket() {
        // A value recorded exactly at a bucket's upper bound must be
        // reported at (not above) that bound.
        for idx in [0, 1, 16, 80, LogHistogram::num_buckets() - 1] {
            let bound = LogHistogram::bucket_upper_bound(idx);
            let mut h = LogHistogram::new();
            h.record(bound);
            let p100 = h.quantile(1.0);
            assert_eq!(p100, bound.min(h.max()), "bucket {idx}");
            assert!(
                h.quantile(0.5) <= bound * (1.0 + 1e-12),
                "bucket {idx}: median {} above bound {bound}",
                h.quantile(0.5)
            );
        }
    }

    #[test]
    fn underflow_lands_in_bucket_zero() {
        let mut h = LogHistogram::new();
        h.record(1e-9); // below MIN_VALUE
        h.record(MIN_VALUE);
        assert_eq!(h.count(), 2);
        // Both samples share bucket 0; every quantile is its bound,
        // tightened to the exact max.
        assert_eq!(h.quantile(0.5), MIN_VALUE);
        assert_eq!(h.quantile(1.0), MIN_VALUE);
        assert_eq!(h.min(), 1e-9);
    }

    #[test]
    fn overflow_is_capped_by_exact_max() {
        let mut h = LogHistogram::new();
        h.record(5e9); // beyond the covered decades
        let last_bound = LogHistogram::bucket_upper_bound(usize::MAX);
        assert!(h.max() > last_bound);
        assert_eq!(h.quantile(0.999), last_bound);
        assert_eq!(h.quantiles().p999, last_bound);
    }

    #[test]
    fn saturating_counts_never_wrap() {
        let mut h = LogHistogram::new();
        h.record_many(1e-3, u64::MAX);
        h.record_many(2.0, 5);
        // count saturates instead of wrapping past zero.
        assert_eq!(h.count(), u64::MAX);
        // Quantile accounting stays finite and ordered under saturation.
        let q = h.quantiles();
        assert!(q.p50 >= 1e-3 && q.p50 <= 2.0);
        assert!(q.p999 <= 2.0);
        // Merging a saturated histogram is also safe.
        let mut other = LogHistogram::new();
        other.record_many(1e-3, u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn record_many_zero_is_a_no_op() {
        let mut h = LogHistogram::new();
        h.record_many(1.0, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let mut h = LogHistogram::new();
        h.record(1e12);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1e12);
        // Quantile is capped by the exact max.
        let last_bound = LogHistogram::bucket_upper_bound(usize::MAX);
        assert_eq!(h.quantile(0.5), last_bound.min(1e12));
    }
}
