//! The no-op handle must stay off the allocator: instrumentation is
//! compiled into every hot loop (per OFDM symbol, per MAC slot), so a
//! disabled `Obs` is only acceptable if each call costs a branch and
//! nothing else. This test installs a counting global allocator and
//! asserts zero allocations across every `Obs` entry point.

use carpool_obs::{Event, Obs};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn noop_handle_never_allocates() {
    // Construct outside the measured region; only the calls must be free.
    let obs = Obs::noop();
    let allocs = allocations_during(|| {
        for i in 0..1000u64 {
            obs.counter("mac.transmissions", 1);
            obs.gauge("mac.queue_depth", i as f64);
            obs.record("mac.delay", 0.001 * i as f64);
            obs.emit(
                i as f64,
                Event::MacDelivery {
                    dest: i,
                    bytes: 1500,
                    delay: 0.01,
                },
            );
            let _span = obs.span("phy.decode");
        }
    });
    assert_eq!(allocs, 0, "no-op Obs allocated {allocs} times");
}

#[test]
fn cloning_the_noop_handle_does_not_allocate() {
    let obs = Obs::noop();
    let allocs = allocations_during(|| {
        for _ in 0..100 {
            let clone = obs.clone();
            assert!(!clone.enabled());
        }
    });
    assert_eq!(allocs, 0, "Obs::clone allocated {allocs} times");
}
