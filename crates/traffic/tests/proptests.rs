//! Property-based tests for the traffic generators.

use carpool_traffic::background::{BackgroundSource, Transport};
use carpool_traffic::framesize::FrameSizeDistribution;
use carpool_traffic::stats::{empirical_cdf, VolumeStats};
use carpool_traffic::voip::{exponential, VoipSource};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdf_is_monotone_and_quantile_inverts(p in 0.001f64..0.999) {
        for dist in [FrameSizeDistribution::sigcomm(), FrameSizeDistribution::library()] {
            let x = dist.quantile(p);
            prop_assert!((dist.cdf(x) - p).abs() < 1e-9, "{}: p={p}", dist.name());
        }
    }

    #[test]
    fn samples_fall_in_support(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for dist in [FrameSizeDistribution::sigcomm(), FrameSizeDistribution::library()] {
            for _ in 0..50 {
                let s = dist.sample(&mut rng);
                prop_assert!((40..=1500).contains(&s), "{}: {s}", dist.name());
            }
        }
    }

    #[test]
    fn voip_arrivals_ordered_and_within_duration(seed in any::<u64>(), dur in 0.5f64..20.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = VoipSource::new().generate(dur, &mut rng);
        for w in arrivals.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        prop_assert!(arrivals.iter().all(|a| a.time >= 0.0 && a.time < dur));
        prop_assert!(arrivals.iter().all(|a| a.bytes == 120));
    }

    #[test]
    fn background_arrivals_ordered(seed in any::<u64>(), dur in 0.5f64..20.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for t in [Transport::Tcp, Transport::Udp] {
            let arrivals = BackgroundSource::new(t).generate(dur, &mut rng);
            for w in arrivals.windows(2) {
                prop_assert!(w[0].time <= w[1].time);
            }
            prop_assert!(arrivals.iter().all(|a| a.time < dur));
        }
    }

    #[test]
    fn exponential_is_positive(seed in any::<u64>(), mean in 0.001f64..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(exponential(mean, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn volume_ratio_in_unit_interval(
        down in prop::collection::vec(1usize..2000, 0..30),
        up in prop::collection::vec(1usize..2000, 0..30),
    ) {
        let mut v = VolumeStats::new();
        for b in &down {
            v.record(carpool_traffic::Direction::Downlink, *b);
        }
        for b in &up {
            v.record(carpool_traffic::Direction::Uplink, *b);
        }
        let r = v.downlink_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn empirical_cdf_is_monotone(
        samples in prop::collection::vec(0usize..5000, 1..100),
        thresholds in prop::collection::vec(0usize..5000, 1..20),
    ) {
        let mut sorted_thresholds = thresholds;
        sorted_thresholds.sort_unstable();
        let cdf = empirical_cdf(&samples, &sorted_thresholds);
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(cdf.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
