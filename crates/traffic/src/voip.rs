//! VoIP traffic per Brady's ON/OFF model (paper Section 7.2.2).
//!
//! The paper's delay-sensitive workload: "an ON/OFF UDP stream with a
//! peak rate of 96 Kbit/s and frame size of 120 B according to IEEE
//! 802.11n requirements", generated with Brady's two-state voice model —
//! exponentially distributed talkspurts and silences. During a
//! talkspurt, 120-byte frames are emitted every 10 ms
//! (120 B x 8 / 96 kbit/s).

use rand::Rng;

/// Default Brady talkspurt mean duration (seconds).
pub(crate) const TALKSPURT_MEAN_S: f64 = 1.0;
/// Default Brady silence mean duration (seconds).
pub(crate) const SILENCE_MEAN_S: f64 = 1.35;
/// VoIP frame size in bytes (802.11n usage model).
pub(crate) const VOIP_FRAME_BYTES: usize = 120;
/// Peak rate in bit/s.
pub(crate) const VOIP_PEAK_RATE_BPS: f64 = 96_000.0;

/// Packetisation interval during a talkspurt.
pub(crate) fn frame_interval() -> f64 {
    VOIP_FRAME_BYTES as f64 * 8.0 / VOIP_PEAK_RATE_BPS
}

/// A timed frame arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time in seconds.
    pub time: f64,
    /// Frame size in bytes.
    pub bytes: usize,
}

/// Brady ON/OFF VoIP source.
#[derive(Debug, Clone, PartialEq)]
pub struct VoipSource {
    talkspurt_mean: f64,
    silence_mean: f64,
}

impl VoipSource {
    /// A source with Brady's default parameters.
    pub fn new() -> VoipSource {
        VoipSource {
            talkspurt_mean: TALKSPURT_MEAN_S,
            silence_mean: SILENCE_MEAN_S,
        }
    }

    /// A source with custom ON/OFF means (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either mean is not positive.
    pub fn with_means(talkspurt_mean: f64, silence_mean: f64) -> VoipSource {
        assert!(talkspurt_mean > 0.0, "talkspurt mean must be positive");
        assert!(silence_mean > 0.0, "silence mean must be positive");
        VoipSource {
            talkspurt_mean,
            silence_mean,
        }
    }

    /// Long-run fraction of time spent talking.
    pub fn activity_factor(&self) -> f64 {
        self.talkspurt_mean / (self.talkspurt_mean + self.silence_mean)
    }

    /// Mean offered load in bit/s.
    pub fn mean_rate_bps(&self) -> f64 {
        self.activity_factor() * VOIP_PEAK_RATE_BPS
    }

    /// Generates all frame arrivals in `[0, duration)`.
    ///
    /// The source starts in a random phase: with probability equal to
    /// the activity factor it begins mid-talkspurt.
    pub fn generate<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Vec<Arrival> {
        let mut arrivals = Vec::new(); // lint:allow(hot-alloc): per-arrival packet generation, bounded by offered load
        let mut t = 0.0f64;
        let mut talking = rng.gen::<f64>() < self.activity_factor();
        while t < duration {
            if talking {
                let spurt = exponential(self.talkspurt_mean, rng);
                let end = (t + spurt).min(duration);
                let mut ft = t;
                while ft < end {
                    // lint:allow(hot-alloc): per-arrival packet generation, bounded by offered load
                    arrivals.push(Arrival {
                        time: ft,
                        bytes: VOIP_FRAME_BYTES,
                    });
                    ft += frame_interval();
                }
                t = end;
                talking = false;
            } else {
                t += exponential(self.silence_mean, rng);
                talking = true;
            }
        }
        arrivals
    }
}

impl Default for VoipSource {
    fn default() -> Self {
        VoipSource::new()
    }
}

/// Samples an exponential variate with the given mean.
pub fn exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frame_interval_is_10ms() {
        assert!((frame_interval() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn arrivals_are_ordered_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals = VoipSource::new().generate(30.0, &mut rng);
        assert!(!arrivals.is_empty());
        for w in arrivals.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(arrivals.iter().all(|a| a.time < 30.0 && a.bytes == 120));
    }

    #[test]
    fn mean_rate_matches_activity_factor() {
        let mut rng = StdRng::seed_from_u64(9);
        let src = VoipSource::new();
        let duration = 2_000.0;
        let arrivals = src.generate(duration, &mut rng);
        let bits = arrivals.len() as f64 * 120.0 * 8.0;
        let measured = bits / duration;
        let expected = src.mean_rate_bps();
        assert!(
            (measured - expected).abs() < expected * 0.1,
            "measured {measured} expected {expected}"
        );
    }

    #[test]
    fn talkspurts_emit_at_peak_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = VoipSource::with_means(100.0, 0.001).generate(10.0, &mut rng);
        // Nearly always ON: arrival count ~ duration / 10 ms.
        let expected = 10.0 / frame_interval();
        assert!(
            (arrivals.len() as f64 - expected).abs() < expected * 0.05,
            "{} arrivals",
            arrivals.len()
        );
    }

    #[test]
    fn exponential_mean_is_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean = 0.047;
        let sum: f64 = (0..n).map(|_| exponential(mean, &mut rng)).sum();
        let measured = sum / n as f64;
        assert!((measured - mean).abs() < mean * 0.02, "{measured}");
    }

    #[test]
    fn default_activity_factor() {
        let af = VoipSource::new().activity_factor();
        assert!((af - 1.0 / 2.35).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        VoipSource::with_means(0.0, 1.0);
    }
}
