//! Trace serialisation: a plain-text packet-trace format.
//!
//! The paper's methodology is *trace-driven*: captured packet traces
//! feed the MAC simulator. This module defines a minimal line-oriented
//! format so synthetic traces can be exported, inspected, filtered with
//! standard tools and replayed:
//!
//! ```text
//! # carpool-trace v1
//! # time_s direction sta_id bytes
//! 0.001372 D 4 120
//! 0.004710 U 11 576
//! ```

use crate::stats::{Direction, VolumeStats};
use crate::voip::Arrival;

/// One trace line: a frame crossing the AP in either direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Arrival time in seconds.
    pub time: f64,
    /// Frame direction.
    pub direction: Direction,
    /// Station id the frame is for (downlink) or from (uplink).
    pub sta: u16,
    /// Frame size in bytes.
    pub bytes: usize,
}

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub enum TraceError {
    /// A line did not have the expected four fields.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// Records are not sorted by time.
    OutOfOrder {
        /// 1-based line number of the offender.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { line } => write!(f, "malformed trace line {line}"),
            TraceError::BadField { line, field } => {
                write!(f, "invalid {field} on trace line {line}")
            }
            TraceError::OutOfOrder { line } => {
                write!(f, "trace line {line} is earlier than its predecessor")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A time-ordered packet trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Builds a trace from records, sorting them by time.
    pub fn from_records(mut records: Vec<TraceRecord>) -> Trace {
        // total_cmp orders finite times identically to partial_cmp and is total.
        records.sort_by(|a, b| a.time.total_cmp(&b.time));
        Trace { records }
    }

    /// Merges per-station arrival streams into a trace.
    pub fn from_arrivals(
        downlink: &[(u16, Vec<Arrival>)],
        uplink: &[(u16, Vec<Arrival>)],
    ) -> Trace {
        let mut records = Vec::new();
        for (direction, streams) in [(Direction::Downlink, downlink), (Direction::Uplink, uplink)] {
            for (sta, arrivals) in streams {
                for a in arrivals {
                    records.push(TraceRecord {
                        time: a.time,
                        direction,
                        sta: *sta,
                        bytes: a.bytes,
                    });
                }
            }
        }
        Trace::from_records(records)
    }

    /// The records in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replays the trace into an observability stream: one
    /// [`carpool_obs::Event::TrafficArrival`] per record (stamped with the
    /// record's arrival time, so the stream stays monotone) plus
    /// per-direction frame/byte counters.
    pub fn emit_obs(&self, obs: &carpool_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        for r in &self.records {
            match r.direction {
                Direction::Downlink => {
                    obs.counter("traffic.downlink.frames", 1);
                    obs.counter("traffic.downlink.bytes", r.bytes as u64);
                }
                Direction::Uplink => {
                    obs.counter("traffic.uplink.frames", 1);
                    obs.counter("traffic.uplink.bytes", r.bytes as u64);
                }
            }
            obs.emit(
                r.time,
                carpool_obs::Event::TrafficArrival {
                    dest: r.sta as u64,
                    bytes: r.bytes as u64,
                },
            );
        }
    }

    /// Volume statistics of the trace (for Fig. 1(c)-style ratios).
    pub fn volume_stats(&self) -> VolumeStats {
        let mut v = VolumeStats::new();
        for r in &self.records {
            v.record(r.direction, r.bytes);
        }
        v
    }

    /// Serialises to the line format shown in the module docs.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(32 * self.records.len() + 64);
        out.push_str("# carpool-trace v1\n# time_s direction sta_id bytes\n");
        for r in &self.records {
            let d = match r.direction {
                Direction::Downlink => 'D',
                Direction::Uplink => 'U',
            };
            out.push_str(&format!("{:.6} {d} {} {}\n", r.time, r.sta, r.bytes));
        }
        out
    }

    /// Parses the line format; `#`-comments and blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        let mut last_time = f64::NEG_INFINITY;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(TraceError::Malformed { line });
            }
            let time: f64 = fields[0].parse().map_err(|_| TraceError::BadField {
                line,
                field: "time",
            })?;
            let direction = match fields[1] {
                "D" | "d" => Direction::Downlink,
                "U" | "u" => Direction::Uplink,
                _ => {
                    return Err(TraceError::BadField {
                        line,
                        field: "direction",
                    })
                }
            };
            let sta: u16 = fields[2].parse().map_err(|_| TraceError::BadField {
                line,
                field: "sta_id",
            })?;
            let bytes: usize = fields[3].parse().map_err(|_| TraceError::BadField {
                line,
                field: "bytes",
            })?;
            if time < last_time {
                return Err(TraceError::OutOfOrder { line });
            }
            last_time = time;
            records.push(TraceRecord {
                time,
                direction,
                sta,
                bytes,
            });
        }
        Ok(Trace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voip::VoipSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            TraceRecord {
                time: 0.5,
                direction: Direction::Uplink,
                sta: 3,
                bytes: 500,
            },
            TraceRecord {
                time: 0.1,
                direction: Direction::Downlink,
                sta: 1,
                bytes: 120,
            },
        ])
    }

    #[test]
    fn records_are_time_sorted() {
        let t = sample_trace();
        assert_eq!(t.records()[0].time, 0.1);
        assert_eq!(t.records()[1].time, 0.5);
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let parsed = Trace::from_text(&t.to_text()).expect("round trip");
        assert_eq!(parsed, t);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n0.1 D 1 120\n  # inline\n0.2 U 2 64\n";
        let t = Trace::from_text(text).expect("parses");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert_eq!(
            Trace::from_text("0.1 D 1\n"),
            Err(TraceError::Malformed { line: 1 })
        );
        assert_eq!(
            Trace::from_text("0.1 X 1 120\n"),
            Err(TraceError::BadField {
                line: 1,
                field: "direction"
            })
        );
        assert_eq!(
            Trace::from_text("0.2 D 1 120\n0.1 U 2 64\n"),
            Err(TraceError::OutOfOrder { line: 2 })
        );
        assert_eq!(
            Trace::from_text("soon D 1 120\n"),
            Err(TraceError::BadField {
                line: 1,
                field: "time"
            })
        );
    }

    #[test]
    fn arrivals_merge_with_directions() {
        let mut rng = StdRng::seed_from_u64(6);
        let down = VoipSource::new().generate(2.0, &mut rng);
        let up = VoipSource::new().generate(2.0, &mut rng);
        let trace = Trace::from_arrivals(&[(1, down.clone())], &[(1, up.clone())]);
        assert_eq!(trace.len(), down.len() + up.len());
        let stats = trace.volume_stats();
        assert_eq!(stats.total_frames(), (down.len() + up.len()) as u64);
        for w in trace.records().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn emit_obs_mirrors_volume_stats() {
        use carpool_obs::{MemoryRecorder, Obs, RingBufferSink};
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(9);
        let down = VoipSource::new().generate(3.0, &mut rng);
        let up = VoipSource::new().generate(3.0, &mut rng);
        let trace = Trace::from_arrivals(&[(1, down)], &[(2, up)]);

        let recorder = Arc::new(MemoryRecorder::new());
        let sink = Arc::new(RingBufferSink::new(1 << 16));
        trace.emit_obs(&Obs::new(recorder.clone(), sink.clone()));

        let stats = trace.volume_stats();
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter("traffic.downlink.frames") + snap.counter("traffic.uplink.frames"),
            stats.total_frames()
        );
        let events = sink.events();
        assert_eq!(events.len() as u64, stats.total_frames());
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t, "replayed stream must stay monotone");
        }
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(Trace::from_text(&t.to_text()).expect("parses"), t);
    }
}
