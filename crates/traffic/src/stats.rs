//! Aggregate trace statistics (paper Fig. 1(c) and Section 2).

use crate::voip::Arrival;

/// Published downlink traffic-volume ratios of the three traces
/// (paper Fig. 1(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trace {
    /// SIGCOMM 2004 hotspot trace.
    Sigcomm04,
    /// SIGCOMM 2008 trace.
    Sigcomm08,
    /// The paper's campus library measurement (IEEE 802.11n WLAN).
    Library,
}

impl Trace {
    /// All traces cited by the paper.
    pub const ALL: [Trace; 3] = [Trace::Sigcomm04, Trace::Sigcomm08, Trace::Library];

    /// Fraction of traffic volume that is downlink.
    pub fn downlink_ratio(&self) -> f64 {
        match self {
            Trace::Sigcomm04 => 0.80,
            Trace::Sigcomm08 => 0.834,
            Trace::Library => 0.892,
        }
    }

    /// Human-readable trace name.
    pub fn name(&self) -> &'static str {
        match self {
            Trace::Sigcomm04 => "SIGCOMM'04",
            Trace::Sigcomm08 => "SIGCOMM'08",
            Trace::Library => "Library",
        }
    }
}

/// Direction of a traffic volume sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// AP to station.
    Downlink,
    /// Station to AP.
    Uplink,
}

/// Accumulates directional volume statistics from arrival streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VolumeStats {
    downlink_bytes: u64,
    uplink_bytes: u64,
    downlink_frames: u64,
    uplink_frames: u64,
}

impl VolumeStats {
    /// An empty accumulator.
    pub fn new() -> VolumeStats {
        VolumeStats::default()
    }

    /// Records one frame.
    pub fn record(&mut self, direction: Direction, bytes: usize) {
        match direction {
            Direction::Downlink => {
                self.downlink_bytes += bytes as u64;
                self.downlink_frames += 1;
            }
            Direction::Uplink => {
                self.uplink_bytes += bytes as u64;
                self.uplink_frames += 1;
            }
        }
    }

    /// Records a whole arrival stream in one direction.
    pub fn record_stream(&mut self, direction: Direction, arrivals: &[Arrival]) {
        for a in arrivals {
            self.record(direction, a.bytes);
        }
    }

    /// Downlink share of total volume (0.5 when empty).
    pub fn downlink_ratio(&self) -> f64 {
        let total = self.downlink_bytes + self.uplink_bytes;
        if total == 0 {
            return 0.5;
        }
        self.downlink_bytes as f64 / total as f64
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.downlink_bytes + self.uplink_bytes
    }

    /// Total frames in both directions.
    pub fn total_frames(&self) -> u64 {
        self.downlink_frames + self.uplink_frames
    }
}

/// Empirical CDF evaluation over a sample set.
///
/// Returns, for each threshold, the fraction of samples `<= threshold`.
pub fn empirical_cdf(samples: &[usize], thresholds: &[usize]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![0.0; thresholds.len()];
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    thresholds
        .iter()
        .map(|&t| {
            let idx = sorted.partition_point(|&s| s <= t);
            idx as f64 / sorted.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_downlink_ratios() {
        assert_eq!(Trace::Sigcomm04.downlink_ratio(), 0.80);
        assert_eq!(Trace::Sigcomm08.downlink_ratio(), 0.834);
        assert_eq!(Trace::Library.downlink_ratio(), 0.892);
    }

    #[test]
    fn downlink_is_about_four_times_uplink() {
        // The paper's summary: "downlink traffic volume is about four
        // times larger than uplink traffic volume".
        for t in Trace::ALL {
            let r = t.downlink_ratio();
            let ratio = r / (1.0 - r);
            assert!(ratio > 3.0, "{}: {ratio}", t.name());
        }
    }

    #[test]
    fn volume_accumulation() {
        let mut v = VolumeStats::new();
        v.record(Direction::Downlink, 800);
        v.record(Direction::Downlink, 200);
        v.record(Direction::Uplink, 250);
        assert!((v.downlink_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(v.total_bytes(), 1250);
        assert_eq!(v.total_frames(), 3);
    }

    #[test]
    fn empty_stats_are_neutral() {
        assert_eq!(VolumeStats::new().downlink_ratio(), 0.5);
    }

    #[test]
    fn empirical_cdf_basics() {
        let samples = [100, 200, 300, 400];
        let cdf = empirical_cdf(&samples, &[99, 100, 250, 400, 1000]);
        assert_eq!(cdf, vec![0.0, 0.25, 0.5, 1.0, 1.0]);
        assert_eq!(empirical_cdf(&[], &[1]), vec![0.0]);
    }

    #[test]
    fn record_stream_counts_all() {
        let arrivals = vec![
            Arrival {
                time: 0.0,
                bytes: 10,
            },
            Arrival {
                time: 1.0,
                bytes: 20,
            },
        ];
        let mut v = VolumeStats::new();
        v.record_stream(Direction::Uplink, &arrivals);
        assert_eq!(v.total_bytes(), 30);
        assert_eq!(v.total_frames(), 2);
    }
}
