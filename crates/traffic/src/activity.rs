//! Active-station dynamics (paper Fig. 1(a)).
//!
//! The library trace shows the number of STAs with concurrent downlink
//! requests per AP fluctuating between ~2 and ~14 with a mean of 7.63.
//! This module models that as a bounded birth–death (M/M/∞-style)
//! process sampled once per second, which reproduces both the mean and
//! the visual burstiness of the published time series.

use crate::voip::exponential;
use rand::Rng;

/// Mean number of active STAs per AP measured in the library trace.
pub const LIBRARY_MEAN_ACTIVE: f64 = 7.63;

/// Bounded birth–death process for the active-station count.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProcess {
    mean: f64,
    min: usize,
    max: usize,
    /// Mean session lifetime (1/death-rate per station), seconds.
    session_s: f64,
}

impl ActivityProcess {
    /// The library-trace configuration: mean 7.63, range 2..=14.
    pub fn library() -> ActivityProcess {
        ActivityProcess {
            mean: LIBRARY_MEAN_ACTIVE,
            min: 2,
            max: 14,
            session_s: 20.0,
        }
    }

    /// A custom process.
    ///
    /// # Panics
    ///
    /// Panics unless `min <= mean <= max` and `session_s > 0`.
    pub fn new(mean: f64, min: usize, max: usize, session_s: f64) -> ActivityProcess {
        assert!(
            min as f64 <= mean && mean <= max as f64,
            "mean outside bounds"
        );
        assert!(session_s > 0.0, "session time must be positive");
        ActivityProcess {
            mean,
            min,
            max,
            session_s,
        }
    }

    /// The configured long-run mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Samples the active-station count once per second for `seconds`.
    pub fn sample_series<R: Rng + ?Sized>(&self, seconds: usize, rng: &mut R) -> Vec<usize> {
        // Birth rate chosen so the unbounded equilibrium is `mean`:
        // lambda * session = mean.
        let birth_rate = self.mean / self.session_s;
        let mut n = self.mean.round() as usize;
        let mut series = Vec::with_capacity(seconds);
        let mut t = 0.0f64;
        let mut next_tick = 0.0f64;
        while series.len() < seconds {
            let death_rate = n as f64 / self.session_s;
            let total = birth_rate + death_rate;
            let dt = exponential(1.0 / total, rng);
            // Record one sample per second boundary crossed.
            while next_tick <= t + dt && series.len() < seconds {
                series.push(n.clamp(self.min, self.max));
                next_tick += 1.0;
            }
            t += dt;
            let birth = rng.gen::<f64>() < birth_rate / total;
            if birth && n < self.max {
                n += 1;
            } else if !birth && n > self.min {
                n -= 1;
            }
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn series_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = ActivityProcess::library().sample_series(300, &mut rng);
        assert_eq!(s.len(), 300);
    }

    #[test]
    fn values_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = ActivityProcess::library().sample_series(1000, &mut rng);
        assert!(s.iter().all(|&n| (2..=14).contains(&n)));
    }

    #[test]
    fn long_run_mean_matches_library_trace() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = ActivityProcess::library().sample_series(40_000, &mut rng);
        let mean = s.iter().sum::<usize>() as f64 / s.len() as f64;
        assert!(
            (mean - LIBRARY_MEAN_ACTIVE).abs() < 0.8,
            "mean {mean} vs {LIBRARY_MEAN_ACTIVE}"
        );
    }

    #[test]
    fn process_actually_fluctuates() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = ActivityProcess::library().sample_series(300, &mut rng);
        let distinct: std::collections::HashSet<usize> = s.iter().copied().collect();
        assert!(
            distinct.len() >= 4,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    #[should_panic(expected = "outside bounds")]
    fn invalid_mean_rejected() {
        ActivityProcess::new(20.0, 2, 14, 10.0);
    }
}
