#![warn(missing_docs)]
//! # carpool-traffic — synthetic public-WLAN traffic
//!
//! The paper's MAC evaluation is trace-driven, using the SIGCOMM'04/'08
//! public traces and the authors' own campus-library sniffing campaign.
//! Those captures are not redistributable, so this crate regenerates
//! statistically equivalent workloads from their *published* properties
//! (paper Section 2 and Section 7.2):
//!
//! * [`framesize`] — the frame-size CDFs of Fig. 1(b);
//! * [`voip`] — Brady ON/OFF VoIP at 96 kbit/s peak with 120 B frames;
//! * [`background`] — Poisson TCP/UDP background at the SIGCOMM'08
//!   inter-arrival means (47 ms / 88 ms);
//! * [`activity`] — the active-station process of Fig. 1(a), mean 7.63;
//! * [`stats`] — downlink-dominance ratios of Fig. 1(c) and empirical
//!   CDF helpers.
//!
//! # Examples
//!
//! ```
//! use carpool_traffic::voip::VoipSource;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let arrivals = VoipSource::new().generate(10.0, &mut rng);
//! assert!(arrivals.iter().all(|a| a.bytes == 120));
//! ```

pub mod activity;
pub mod background;
pub mod framesize;
pub mod stats;
pub mod trace;
pub mod voip;

pub use background::{BackgroundSource, Transport};
pub use framesize::FrameSizeDistribution;
pub use stats::{Direction, Trace as TraceKind, VolumeStats};
pub use trace::{Trace, TraceRecord};
pub use voip::{Arrival, VoipSource};
