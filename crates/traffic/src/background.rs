//! Uplink/downlink background traffic matched to the SIGCOMM'08 trace.
//!
//! Paper Section 7.2.2: "We inject UDP/TCP traffic according to
//! SIGCOMM'08 trace, where the average inter-packet arrival times for
//! TCP and UDP are 47 ms and 88 ms, respectively. The frame size
//! distribution of the SIGCOMM'08 trace is depicted in Fig. 1(b)."
//!
//! Arrivals are Poisson at the published mean rates; frame sizes come
//! from the SIGCOMM CDF ([`crate::framesize`]).

use crate::framesize::FrameSizeDistribution;
use crate::voip::{exponential, Arrival};
use rand::Rng;

/// Mean TCP inter-packet arrival time in the SIGCOMM'08 trace.
pub(crate) const TCP_INTERARRIVAL_S: f64 = 0.047;
/// Mean UDP inter-packet arrival time in the SIGCOMM'08 trace.
pub(crate) const UDP_INTERARRIVAL_S: f64 = 0.088;

/// Transport protocol of a background flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// TCP-like stream (47 ms mean inter-arrival).
    Tcp,
    /// UDP-like stream (88 ms mean inter-arrival).
    Udp,
}

impl Transport {
    /// Mean inter-arrival time of this transport in the trace.
    pub fn mean_interarrival(&self) -> f64 {
        match self {
            Transport::Tcp => TCP_INTERARRIVAL_S,
            Transport::Udp => UDP_INTERARRIVAL_S,
        }
    }
}

/// A Poisson background source with trace-matched frame sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundSource {
    transport: Transport,
    sizes: FrameSizeDistribution,
    rate_scale: f64,
}

impl BackgroundSource {
    /// A source matching the SIGCOMM'08 statistics for `transport`.
    pub fn new(transport: Transport) -> BackgroundSource {
        BackgroundSource {
            transport,
            sizes: FrameSizeDistribution::sigcomm(),
            rate_scale: 1.0,
        }
    }

    /// Scales the arrival rate (1.0 = trace level; >1 = busier).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_rate_scale(mut self, scale: f64) -> BackgroundSource {
        assert!(scale > 0.0, "rate scale must be positive");
        self.rate_scale = scale;
        self
    }

    /// Replaces the frame-size distribution.
    pub fn with_sizes(mut self, sizes: FrameSizeDistribution) -> BackgroundSource {
        self.sizes = sizes;
        self
    }

    /// The transport this source emulates.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Mean offered load in bit/s.
    pub fn mean_rate_bps(&self) -> f64 {
        self.sizes.mean() * 8.0 * self.rate_scale / self.transport.mean_interarrival()
    }

    /// Generates all arrivals in `[0, duration)`.
    pub fn generate<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Vec<Arrival> {
        let mean = self.transport.mean_interarrival() / self.rate_scale;
        let mut arrivals = Vec::new(); // lint:allow(hot-alloc): per-arrival packet generation, bounded by offered load
        let mut t = exponential(mean, rng);
        while t < duration {
            // lint:allow(hot-alloc): per-arrival packet generation, bounded by offered load
            arrivals.push(Arrival {
                time: t,
                bytes: self.sizes.sample(rng),
            });
            t += exponential(mean, rng);
        }
        arrivals
    }
}

/// Merges several arrival streams into one time-ordered stream, tagging
/// each arrival with its source index.
#[cfg(test)]
fn merge_streams(streams: &[Vec<Arrival>]) -> Vec<(usize, Arrival)> {
    let mut merged: Vec<(usize, Arrival)> = streams
        .iter()
        .enumerate()
        .flat_map(|(k, s)| s.iter().map(move |a| (k, *a)))
        .collect();
    // total_cmp orders finite times identically to partial_cmp and is total.
    merged.sort_by(|a, b| a.1.time.total_cmp(&b.1.time));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interarrival_means_match_trace() {
        let mut rng = StdRng::seed_from_u64(6);
        for (transport, mean) in [
            (Transport::Tcp, TCP_INTERARRIVAL_S),
            (Transport::Udp, UDP_INTERARRIVAL_S),
        ] {
            let arrivals = BackgroundSource::new(transport).generate(2_000.0, &mut rng);
            let measured = 2_000.0 / arrivals.len() as f64;
            assert!(
                (measured - mean).abs() < mean * 0.05,
                "{transport:?}: {measured}"
            );
        }
    }

    #[test]
    fn tcp_is_busier_than_udp() {
        let tcp = BackgroundSource::new(Transport::Tcp);
        let udp = BackgroundSource::new(Transport::Udp);
        assert!(tcp.mean_rate_bps() > udp.mean_rate_bps());
    }

    #[test]
    fn rate_scale_multiplies_arrivals() {
        let mut rng = StdRng::seed_from_u64(10);
        let base = BackgroundSource::new(Transport::Udp)
            .generate(1_000.0, &mut rng)
            .len() as f64;
        let scaled = BackgroundSource::new(Transport::Udp)
            .with_rate_scale(3.0)
            .generate(1_000.0, &mut rng)
            .len() as f64;
        assert!((scaled / base - 3.0).abs() < 0.3, "ratio {}", scaled / base);
    }

    #[test]
    fn arrivals_sorted_and_sized_from_cdf() {
        let mut rng = StdRng::seed_from_u64(12);
        let arrivals = BackgroundSource::new(Transport::Tcp).generate(100.0, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(arrivals.iter().all(|a| (40..=1500).contains(&a.bytes)));
    }

    #[test]
    fn merge_is_globally_ordered() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = BackgroundSource::new(Transport::Tcp).generate(50.0, &mut rng);
        let b = BackgroundSource::new(Transport::Udp).generate(50.0, &mut rng);
        let merged = merge_streams(&[a.clone(), b.clone()]);
        assert_eq!(merged.len(), a.len() + b.len());
        for w in merged.windows(2) {
            assert!(w[0].1.time <= w[1].1.time);
        }
    }

    #[test]
    fn empty_duration_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(BackgroundSource::new(Transport::Udp)
            .generate(0.0, &mut rng)
            .is_empty());
    }
}
