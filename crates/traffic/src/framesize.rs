//! Frame-size distributions of public-WLAN traces (paper Fig. 1(b)).
//!
//! The SIGCOMM'04/'08 and campus-library traces are not redistributable,
//! so this module encodes their *published* frame-size CDFs as piecewise
//! linear interpolants and samples from them by inverse transform. The
//! two anchors the paper calls out explicitly: more than 50% (SIGCOMM)
//! and more than 90% (library) of downlink frames are smaller than
//! 300 bytes, with tails reaching the 1500 B MTU.

use rand::Rng;

/// A piecewise-linear CDF over frame sizes in bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSizeDistribution {
    /// (size_bytes, cumulative_probability) knots, strictly increasing
    /// in both coordinates, ending at probability 1.
    knots: Vec<(f64, f64)>,
    name: &'static str,
}

impl FrameSizeDistribution {
    /// The SIGCOMM trace CDF: ~54% of frames below 300 B, long tail to
    /// the MTU (many full-size TCP segments).
    pub fn sigcomm() -> FrameSizeDistribution {
        FrameSizeDistribution {
            knots: vec![
                (40.0, 0.0),
                (90.0, 0.25),
                (150.0, 0.40),
                (300.0, 0.54),
                (600.0, 0.66),
                (1000.0, 0.76),
                (1400.0, 0.88),
                (1500.0, 1.0),
            ],
            name: "sigcomm",
        }
    }

    /// The campus-library trace CDF: >90% of frames below 300 B.
    pub fn library() -> FrameSizeDistribution {
        FrameSizeDistribution {
            knots: vec![
                (40.0, 0.0),
                (80.0, 0.35),
                (120.0, 0.62),
                (200.0, 0.82),
                (300.0, 0.91),
                (600.0, 0.95),
                (1200.0, 0.98),
                (1500.0, 1.0),
            ],
            name: "library",
        }
    }

    /// A degenerate distribution returning a fixed size (used by the
    /// fixed-frame-size sweep of Fig. 17(b)).
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn fixed(bytes: usize) -> FrameSizeDistribution {
        assert!(bytes > 0, "frame size must be positive");
        FrameSizeDistribution {
            knots: vec![(bytes as f64, 0.0), (bytes as f64 + 1e-9, 1.0)],
            name: "fixed",
        }
    }

    /// A custom piecewise-linear CDF.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two knots are given, coordinates are not
    /// nondecreasing, or the final probability is not 1.
    pub fn custom(knots: Vec<(f64, f64)>) -> FrameSizeDistribution {
        assert!(knots.len() >= 2, "need at least two knots");
        for w in knots.windows(2) {
            assert!(w[0].0 <= w[1].0, "sizes must be nondecreasing");
            assert!(w[0].1 <= w[1].1, "probabilities must be nondecreasing");
        }
        let final_p = knots.last().map_or(0.0, |k| k.1);
        assert!((final_p - 1.0).abs() < 1e-9, "final probability must be 1");
        FrameSizeDistribution {
            knots,
            name: "custom",
        }
    }

    /// Distribution name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Cumulative probability of a frame being at most `bytes` long.
    pub fn cdf(&self, bytes: f64) -> f64 {
        let first = self.knots[0];
        if bytes <= first.0 {
            return first.1;
        }
        for w in self.knots.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if bytes <= x1 {
                if x1 == x0 {
                    return p1;
                }
                return p0 + (p1 - p0) * (bytes - x0) / (x1 - x0);
            }
        }
        1.0
    }

    /// Inverse CDF (quantile) for `p` in [0, 1].
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        for w in self.knots.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if p <= p1 {
                if p1 == p0 {
                    return x0;
                }
                return x0 + (x1 - x0) * (p - p0) / (p1 - p0);
            }
        }
        // Constructors guarantee at least two knots; 0.0 is unreachable.
        self.knots.last().map_or(0.0, |k| k.0)
    }

    /// Samples a frame size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.quantile(rng.gen::<f64>()).round().max(1.0) as usize
    }

    /// Mean frame size implied by the CDF (piecewise-linear integral).
    pub fn mean(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.knots.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            acc += (p1 - p0) * (x0 + x1) / 2.0;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_anchor_points() {
        // Fig. 1(b): >50% (SIGCOMM) and >90% (library) below 300 B.
        assert!(FrameSizeDistribution::sigcomm().cdf(300.0) >= 0.5);
        assert!(FrameSizeDistribution::library().cdf(300.0) >= 0.9);
    }

    #[test]
    fn cdf_is_monotone_from_zero_to_one() {
        for dist in [
            FrameSizeDistribution::sigcomm(),
            FrameSizeDistribution::library(),
        ] {
            let mut prev = -1.0;
            for b in (0..1600).step_by(10) {
                let p = dist.cdf(b as f64);
                assert!(p >= prev, "{}: cdf not monotone at {b}", dist.name());
                assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
            assert_eq!(dist.cdf(1500.0), 1.0);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let dist = FrameSizeDistribution::sigcomm();
        for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let x = dist.quantile(p);
            assert!((dist.cdf(x) - p).abs() < 1e-9, "p={p} x={x}");
        }
    }

    #[test]
    fn samples_match_cdf_empirically() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = FrameSizeDistribution::library();
        let n = 50_000;
        let below300 = (0..n).filter(|_| dist.sample(&mut rng) <= 300).count() as f64 / n as f64;
        assert!(
            (below300 - dist.cdf(300.0)).abs() < 0.01,
            "measured {below300}"
        );
    }

    #[test]
    fn fixed_distribution_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = FrameSizeDistribution::fixed(800);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 800);
        }
    }

    #[test]
    fn sizes_stay_within_mtu_range() {
        let mut rng = StdRng::seed_from_u64(8);
        for dist in [
            FrameSizeDistribution::sigcomm(),
            FrameSizeDistribution::library(),
        ] {
            for _ in 0..10_000 {
                let s = dist.sample(&mut rng);
                assert!((40..=1500).contains(&s), "{}: {s}", dist.name());
            }
        }
    }

    #[test]
    fn library_mean_is_smaller_than_sigcomm() {
        // Library traffic is dominated by short frames.
        assert!(FrameSizeDistribution::library().mean() < FrameSizeDistribution::sigcomm().mean());
    }

    #[test]
    #[should_panic(expected = "final probability")]
    fn custom_requires_probability_one() {
        FrameSizeDistribution::custom(vec![(10.0, 0.0), (20.0, 0.5)]);
    }
}
