//! Shared `--obs` / `--obs-summary` / `--trace-out` wiring for every
//! subcommand.
//!
//! `--obs <path.jsonl>` streams structured events to a JSONL file while
//! the command runs; `--obs-summary` prints the metrics registry
//! (counters, gauges, histogram quantiles) to stderr afterwards;
//! `--trace-out <path.json>` attaches the flight recorder and exports a
//! Chrome `trace_event` JSON (plus `<path>.jsonl`) at the end. All may
//! be combined; with none, the returned handle is the no-op one and the
//! instrumented code paths cost a single branch.

use crate::args::Args;
use carpool_obs::{
    flight, EventSink, FlightRecorder, JsonlSink, MemoryRecorder, MetricsSnapshot, NoopSink, Obs,
    DEFAULT_TRACE_CAPACITY,
};
use std::sync::Arc;

/// Observability wiring for one CLI invocation.
pub struct ObsSession {
    obs: Obs,
    recorder: Option<Arc<MemoryRecorder>>,
    flight: Option<Arc<FlightRecorder>>,
    summary: bool,
    path: Option<String>,
    trace_path: Option<String>,
}

impl ObsSession {
    /// Builds the session from `--obs` / `--obs-summary` / `--trace-out`.
    ///
    /// # Errors
    ///
    /// Fails when the `--obs` file cannot be created or a flag is
    /// missing its path argument.
    pub fn from_args(args: &Args) -> Result<ObsSession, String> {
        let path = args.get("obs").filter(|v| *v != "true").map(str::to_string);
        if args.get("obs") == Some("true") {
            return Err("--obs needs a file path, e.g. --obs run.jsonl".to_string());
        }
        let trace_path = args
            .get("trace-out")
            .filter(|v| *v != "true")
            .map(str::to_string);
        if args.get("trace-out") == Some("true") {
            return Err("--trace-out needs a file path, e.g. --trace-out trace.json".to_string());
        }
        let summary = args.flag("obs-summary");
        if path.is_none() && !summary && trace_path.is_none() {
            return Ok(ObsSession {
                obs: Obs::noop(),
                recorder: None,
                flight: None,
                summary: false,
                path: None,
                trace_path: None,
            });
        }
        let recorder = Arc::new(MemoryRecorder::new());
        let sink: Arc<dyn EventSink + Send + Sync> = match &path {
            Some(p) => Arc::new(
                JsonlSink::create(p).map_err(|e| format!("cannot create --obs file '{p}': {e}"))?,
            ),
            None => Arc::new(NoopSink),
        };
        let mut obs = Obs::new(recorder.clone(), sink);
        let mut flight = None;
        if trace_path.is_some() {
            let f = Arc::new(FlightRecorder::new(DEFAULT_TRACE_CAPACITY));
            obs = obs.with_flight(f.clone());
            flight = Some(f);
        }
        Ok(ObsSession {
            obs,
            recorder: Some(recorder),
            flight,
            summary,
            path,
            trace_path,
        })
    }

    /// The handle to thread through instrumented code.
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }

    /// Flushes the JSONL sink, exports the flight-recorder trace, and
    /// prints the `--obs-summary` tables.
    pub fn finish(&self) {
        self.obs.flush();
        if let Some(p) = &self.path {
            eprintln!("# obs events written to {p}");
        }
        if let (Some(f), Some(p)) = (&self.flight, &self.trace_path) {
            let records = f.records();
            let dropped = f.dropped();
            let chrome = flight::to_chrome_trace(&records);
            let jsonl = flight::to_jsonl(&records, dropped);
            let jsonl_path = format!("{p}.jsonl");
            match std::fs::write(p, chrome) {
                Ok(()) => eprintln!(
                    "# flight recorder: {} records ({} dropped) -> {p} (chrome://tracing), {jsonl_path} (jsonl)",
                    records.len(),
                    dropped
                ),
                Err(e) => eprintln!("# flight recorder: cannot write '{p}': {e}"),
            }
            if let Err(e) = std::fs::write(&jsonl_path, jsonl) {
                eprintln!("# flight recorder: cannot write '{jsonl_path}': {e}");
            }
        }
        if self.summary {
            if let Some(recorder) = &self.recorder {
                eprint!("{}", render_summary(&recorder.snapshot()));
            }
        }
    }
}

/// Renders a metrics snapshot as the `--obs-summary` block.
pub fn render_summary(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("# obs counters\n");
        for (name, value) in &snap.counters {
            out.push_str(&format!("#   {name:<34} {value}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("# obs gauges\n");
        for (name, value) in &snap.gauges {
            out.push_str(&format!("#   {name:<34} {value:.6}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("# obs histograms                        count       mean        p50        p95        max\n");
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "#   {name:<34} {:>7} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e}\n",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn no_flags_yields_noop_handle() {
        let s = ObsSession::from_args(&parse(&["mac-sim"])).expect("builds");
        assert!(!s.obs().enabled());
    }

    #[test]
    fn summary_flag_enables_recorder() {
        let s = ObsSession::from_args(&parse(&["mac-sim", "--obs-summary"])).expect("builds");
        assert!(s.obs().enabled());
        s.obs().counter("x.y", 3);
        let snap = s.recorder.as_ref().expect("recorder").snapshot();
        assert_eq!(snap.counter("x.y"), 3);
    }

    #[test]
    fn obs_without_path_is_an_error() {
        assert!(ObsSession::from_args(&parse(&["mac-sim", "--obs"])).is_err());
    }

    #[test]
    fn trace_out_without_path_is_an_error() {
        assert!(ObsSession::from_args(&parse(&["trace", "--trace-out"])).is_err());
    }

    #[test]
    fn trace_out_attaches_the_flight_recorder() {
        let s = ObsSession::from_args(&parse(&["trace", "--trace-out", "t.json"])).expect("builds");
        assert!(s.obs().enabled());
        assert!(s.obs().tracing());
        s.obs().trace(carpool_obs::TraceKind::MacEnqueue, 0.0, 1, 2);
        assert_eq!(s.flight.as_ref().expect("flight").len(), 1);
    }

    #[test]
    fn summary_renders_all_metric_kinds() {
        let recorder = MemoryRecorder::new();
        use carpool_obs::Recorder;
        recorder.counter("mac.transmissions", 42);
        recorder.gauge("mac.queue", 3.0);
        recorder.record("mac.delay", 0.25);
        let text = render_summary(&recorder.snapshot());
        assert!(text.contains("mac.transmissions"));
        assert!(text.contains("42"));
        assert!(text.contains("mac.queue"));
        assert!(text.contains("mac.delay"));
    }
}
