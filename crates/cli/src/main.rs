//! `carpool` — command-line driver for the Carpool reproduction.
//!
//! ```console
//! carpool phy-ber  --mcs qam64-3/4 --snr 28 --coherence-ms 4 --frames 20 [--rte] [--soft]
//! carpool mac-sim  --protocol carpool --stas 30 --duration 8 [--background] [--hidden 0.3] [--rts-cts]
//! carpool sweep    --from 10 --to 30 --step 4 --duration 6 [--background]
//! carpool frame    --receivers 4 --bytes 400 --snr 30
//! carpool bloom    --receivers 8 --hashes 4
//! ```

mod args;
mod obs_session;
mod report;

use args::Args;
use carpool::link::CarpoolLink;
use carpool_bloom::analysis::{
    false_positive_ratio, measure_false_positive_ratio_obs, optimal_hash_count,
};
use carpool_channel::link::LinkChannel;
use carpool_frame::addr::MacAddress;
use carpool_frame::carpool::{CarpoolFrame, Subframe};
use carpool_mac::error_model::BerBiasModel;
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{HiddenTerminals, SimConfig, Simulator, UplinkTraffic};
use carpool_phy::bits::hamming_distance;
use carpool_phy::convolutional::CodeRate;
use carpool_phy::mcs::Mcs;
use carpool_phy::modulation::Modulation;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::{receive, receive_soft, Estimation, SectionLayout};
use carpool_phy::tx::SectionSpec;
use carpool_phy::txcache::transmit_cached;
use carpool_traffic::background::{BackgroundSource, Transport};
use carpool_traffic::trace::Trace;
use carpool_traffic::voip::VoipSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HELP: &str = "\
carpool — multi-receiver PHY frame aggregation for public WLANs

USAGE:
    carpool <COMMAND> [--key value ...]

COMMANDS:
    phy-ber    Monte-Carlo BER of the OFDM PHY over the office channel
               --mcs <bpsk|qpsk|qam16|qam64>[-1/2|-2/3|-3/4]  (default qam64-3/4)
               --snr <dB=28> --coherence-ms <4> --rician-k <15> --cfo <100>
               --frames <20> --kbytes <4> --seed <1000> [--rte] [--soft]
    mac-sim    One MAC simulation in the paper's library scenario
               --protocol <carpool|mu|ampdu|dot11|wifox>  (default carpool)
               --stas <20> --aps <2> --duration <8> --seed <1>
               [--background] [--hidden <fraction>] [--rts-cts] [--time-fair]
    mac-dense  One large multi-AP scenario on the sharded event engine:
               N AP contention domains coupled through OBSS interference,
               stepped in parallel with deterministic boundary handoff
               (results are identical for every --shards/--threads value)
               --aps <16> --stas <64 per AP> --duration <2> --seed <1>
               --protocol <carpool|mu|ampdu|dot11|wifox>
               --shards <0 = one shard per domain> --coupling <0.25>
    sweep      Fig. 15/16-style sweep across all five protocols
               --from <10> --to <30> --step <4> --duration <6> [--background]
    frame      Build and deliver one Carpool frame end to end
               --receivers <3> --bytes <400> --snr <32> --seed <7>
    bloom      A-HDR false-positive analysis
               --receivers <8> --hashes <4> --trials <20000>
    gen-trace  Emit a synthetic public-WLAN packet trace (stdout)
               --stas <10> --duration <30> --seed <1> [--background]
    trace      Fig. 3-shaped single-frame run for the flight recorder:
               one long QAM64-3/4 aggregate over the office channel,
               traced end to end (use with --trace-out)
               --stas <4> --snr <30> --seed <42>
    report     Render an --obs JSONL stream as per-layer summary tables
               (including flight-recorder timelines from a --trace-out
               .jsonl file)
               carpool report <path.jsonl>
    lint       Run the project lint gate (panic-freedom, layering,
               determinism, docs, call-graph analysis) against
               lint-baseline.json
               [--json] [--write-baseline] [--force] [--root <dir>]
               [--explain <rule>] [--graph] [--budget-ms <n>]
               [--strict-indexing] [--sarif <path>] [--no-cache]
    help       Show this message

OBSERVABILITY (accepted by every command):
    --obs <path.jsonl>   Stream structured events (PHY/frame/MAC/traffic
                         plus timing spans) to a JSONL file; inspect with
                         `carpool report <path.jsonl>`.
    --obs-summary        Print the metrics registry (counters, gauges,
                         histogram quantiles) to stderr when done.
    --trace-out <path>   Attach the frame flight recorder and export a
                         Chrome trace_event JSON (open in chrome://tracing
                         or https://ui.perfetto.dev) plus <path>.jsonl
                         when the command finishes.

PARALLELISM (accepted by every command):
    --threads <N>        Worker threads for parallel trial execution.
                         Default: the CARPOOL_THREADS environment
                         variable, else all cores. Results are identical
                         for every thread count.

PERFORMANCE (accepted by every command):
    --no-tx-cache        Disable the process-wide TX waveform
                         memoization cache (also: CARPOOL_NO_TX_CACHE=1).
                         Results are byte-identical either way; the cache
                         only skips re-encoding identical frames across
                         sweep points.
";

fn parse_mcs(spec: &str) -> Result<Mcs, String> {
    let lower = spec.to_lowercase();
    let (m, r) = lower.split_once('-').unwrap_or((lower.as_str(), ""));
    let modulation = match m {
        "bpsk" => Modulation::Bpsk,
        "qpsk" => Modulation::Qpsk,
        "qam16" => Modulation::Qam16,
        "qam64" => Modulation::Qam64,
        other => return Err(format!("unknown modulation '{other}'")),
    };
    let rate = match r {
        "" => match modulation {
            Modulation::Qam64 => CodeRate::ThreeQuarters,
            _ => CodeRate::Half,
        },
        "1/2" => CodeRate::Half,
        "2/3" => CodeRate::TwoThirds,
        "3/4" => CodeRate::ThreeQuarters,
        other => return Err(format!("unknown code rate '{other}'")),
    };
    Ok(Mcs::new(modulation, rate))
}

fn parse_protocol(spec: &str) -> Result<Protocol, String> {
    match spec.to_lowercase().as_str() {
        "carpool" => Ok(Protocol::Carpool),
        "mu" | "mu-aggregation" => Ok(Protocol::MuAggregation),
        "ampdu" | "a-mpdu" => Ok(Protocol::Ampdu),
        "dot11" | "802.11" | "80211" => Ok(Protocol::Dot11),
        "wifox" => Ok(Protocol::Wifox),
        other => Err(format!("unknown protocol '{other}'")),
    }
}

fn cmd_phy_ber(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let mcs = parse_mcs(args.get("mcs").unwrap_or("qam64-3/4"))?;
    let snr: f64 = args.get_or("snr", 28.0).map_err(|e| e.to_string())?;
    let coherence_ms: f64 = args
        .get_or("coherence-ms", 4.0)
        .map_err(|e| e.to_string())?;
    let rician_k: f64 = args.get_or("rician-k", 15.0).map_err(|e| e.to_string())?;
    let cfo: f64 = args.get_or("cfo", 100.0).map_err(|e| e.to_string())?;
    let frames: usize = args.get_or("frames", 20).map_err(|e| e.to_string())?;
    let kbytes: usize = args.get_or("kbytes", 4).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 1000).map_err(|e| e.to_string())?;
    let estimation = if args.flag("rte") {
        Estimation::Rte(CalibrationRule::Average)
    } else {
        Estimation::Standard
    };

    let payload: Vec<u8> = (0..kbytes * 1024 * 8)
        .map(|k| ((k * 31 + 7) % 5 < 2) as u8)
        .collect();
    let spec = SectionSpec::payload(payload.clone(), mcs);
    let tx = transmit_cached(std::slice::from_ref(&spec), obs).map_err(|e| e.to_string())?;
    let layouts = [SectionLayout::of(&spec)];

    let mut raw_errors = 0usize;
    let mut raw_total = 0usize;
    let mut payload_errors = 0usize;
    let mut frame_errors = 0usize;
    for f in 0..frames {
        let mut link = LinkChannel::builder()
            .snr_db(snr)
            .coherence_time(coherence_ms * 1e-3)
            .rician_k(rician_k)
            .cfo_hz(cfo)
            .seed(seed + f as u64)
            .build()
            .with_obs(obs.clone());
        let rx_samples = link.transmit(&tx.samples);
        let rx = if args.flag("soft") {
            receive_soft(&rx_samples, &layouts, estimation)
        } else {
            receive(&rx_samples, &layouts, estimation)
        }
        .map_err(|e| e.to_string())?;
        for (t, r) in tx.sections[0]
            .symbol_bits
            .iter()
            .zip(&rx.sections[0].raw_symbol_bits)
        {
            raw_errors += hamming_distance(t, r);
            raw_total += t.len();
        }
        let errs = hamming_distance(&payload, &rx.sections[0].bits);
        payload_errors += errs;
        frame_errors += (errs > 0) as usize;
        if obs.enabled() {
            obs.counter("phy.ber_frames", 1);
            obs.counter("phy.payload_bit_errors", errs as u64);
            obs.counter("phy.frame_errors", (errs > 0) as u64);
        }
    }
    println!("mcs {mcs}, {frames} frames x {kbytes} KiB, SNR {snr} dB, coherence {coherence_ms} ms, K {rician_k}, CFO {cfo} Hz");
    println!(
        "  estimation: {}{}",
        if args.flag("rte") { "RTE" } else { "standard" },
        if args.flag("soft") {
            " + soft Viterbi"
        } else {
            ""
        }
    );
    println!(
        "  raw (pre-FEC) BER : {:.3e}",
        raw_errors as f64 / raw_total as f64
    );
    println!(
        "  payload BER       : {:.3e}",
        payload_errors as f64 / (frames * payload.len()) as f64
    );
    println!(
        "  frame error rate  : {:.3}",
        frame_errors as f64 / frames as f64
    );
    Ok(())
}

fn cmd_mac_sim(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let protocol = parse_protocol(args.get("protocol").unwrap_or("carpool"))?;
    let mut config = SimConfig {
        protocol,
        num_stas: args.get_or("stas", 20).map_err(|e| e.to_string())?,
        num_aps: args.get_or("aps", 2).map_err(|e| e.to_string())?,
        duration_s: args.get_or("duration", 8.0).map_err(|e| e.to_string())?,
        seed: args.get_or("seed", 1).map_err(|e| e.to_string())?,
        use_rts_cts: args.flag("rts-cts"),
        ..SimConfig::default()
    };
    if args.flag("background") {
        config.uplink = Some(UplinkTraffic::default());
    }
    if let Some(f) = args.get("hidden") {
        let fraction: f64 = f.parse().map_err(|_| format!("invalid --hidden '{f}'"))?;
        config.hidden_terminals = Some(HiddenTerminals { fraction });
    }
    if args.flag("time-fair") {
        config.scheduler = carpool_mac::sim::SchedulerPolicy::TimeFair;
    }

    let report = Simulator::new(config, Box::new(BerBiasModel::calibrated()))
        .with_obs(obs.clone())
        .run();
    println!(
        "{protocol} — {} STAs, {:.0} s simulated",
        report.sta_airtime.len(),
        report.duration_s
    );
    println!(
        "  downlink: {:.2} Mbit/s, mean delay {:.3} s, {} delivered / {} dropped",
        report.downlink_goodput_mbps(),
        report.downlink_delay_s(),
        report.downlink.delivered_frames,
        report.downlink.dropped_frames
    );
    println!(
        "  uplink  : {:.2} Mbit/s, mean delay {:.3} s",
        report.uplink.goodput_bps(report.duration_s) / 1e6,
        report.uplink.mean_delay()
    );
    println!(
        "  channel : {} transmissions, {} collisions ({:.1}%), {} hidden losses, {:.2} frames/TXOP",
        report.channel.transmissions,
        report.channel.collisions,
        report.channel.collision_ratio() * 100.0,
        report.channel.hidden_collisions,
        report.channel.mean_aggregation()
    );
    Ok(())
}

fn cmd_mac_dense(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let protocol = parse_protocol(args.get("protocol").unwrap_or("carpool"))?;
    let domains: usize = args.get_or("aps", 16).map_err(|e| e.to_string())?;
    let cell = SimConfig {
        protocol,
        num_stas: args.get_or("stas", 64).map_err(|e| e.to_string())?,
        num_aps: 1,
        duration_s: args.get_or("duration", 2.0).map_err(|e| e.to_string())?,
        seed: args.get_or("seed", 1).map_err(|e| e.to_string())?,
        ..SimConfig::default()
    };
    let config = carpool_mac::DenseConfig {
        cell,
        domains,
        obss_coupling: args.get_or("coupling", 0.25).map_err(|e| e.to_string())?,
        shards: args.get_or("shards", 0).map_err(|e| e.to_string())?,
        ..carpool_mac::DenseConfig::default()
    };
    let start = std::time::Instant::now();
    let report = carpool_mac::run_dense(&config, |_| Box::new(BerBiasModel::calibrated()), obs)
        .map_err(|e| e.to_string())?;
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{protocol} — {} AP domains x {} STAs, {:.0} s simulated",
        domains, config.cell.num_stas, report.duration_s
    );
    println!(
        "  downlink: {:.2} Mbit/s aggregate, {} delivered / {} dropped",
        report.downlink_goodput_mbps(),
        report.downlink.delivered_frames,
        report.downlink.dropped_frames
    );
    println!(
        "  channel : {} transmissions, {} collisions ({:.1}%)",
        report.channel.transmissions,
        report.channel.collisions,
        report.channel.collision_ratio() * 100.0
    );
    println!(
        "  engine  : {} MAC events in {:.3} s wall ({:.2} Mevents/s)",
        report.events,
        wall,
        report.events as f64 / wall / 1e6
    );
    Ok(())
}

fn cmd_sweep(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let from: usize = args.get_or("from", 10).map_err(|e| e.to_string())?;
    let to: usize = args.get_or("to", 30).map_err(|e| e.to_string())?;
    let step: usize = args.get_or("step", 4).map_err(|e| e.to_string())?;
    let duration: f64 = args.get_or("duration", 6.0).map_err(|e| e.to_string())?;
    if step == 0 || from > to {
        return Err("need --from <= --to and --step > 0".to_string());
    }
    let protocols = Protocol::ALL;
    print!("{:>6}", "STAs");
    for p in protocols {
        print!(" {:>15}", p.name());
    }
    println!("     (goodput Mbit/s / delay s)");
    for n in (from..=to).step_by(step) {
        print!("{n:>6}");
        for p in protocols {
            let mut cfg = SimConfig {
                protocol: p,
                num_stas: n,
                duration_s: duration,
                seed: 1,
                ..SimConfig::default()
            };
            if args.flag("background") {
                cfg.uplink = Some(UplinkTraffic::default());
            }
            let r = Simulator::new(cfg, Box::new(BerBiasModel::calibrated()))
                .with_obs(obs.clone())
                .run();
            print!(
                " {:>7.2}/{:<7.3}",
                r.downlink_goodput_mbps(),
                r.downlink_delay_s()
            );
        }
        println!();
    }
    Ok(())
}

fn cmd_frame(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let receivers: usize = args.get_or("receivers", 3).map_err(|e| e.to_string())?;
    let bytes: usize = args.get_or("bytes", 400).map_err(|e| e.to_string())?;
    let snr: f64 = args.get_or("snr", 32.0).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 7).map_err(|e| e.to_string())?;
    if !(1..=8).contains(&receivers) {
        return Err("--receivers must be 1..=8".to_string());
    }
    let subframes: Vec<Subframe> = (0..receivers as u16)
        .map(|k| Subframe::new(MacAddress::station(k), Mcs::QAM16_1_2, vec![k as u8; bytes]))
        .collect();
    let frame = CarpoolFrame::new(subframes).map_err(|e| e.to_string())?;
    println!(
        "frame: {receivers} subframes x {bytes} B, A-HDR {}",
        frame.header()
    );
    let mut link = CarpoolLink::builder()
        .snr_db(snr)
        .seed(seed)
        .build()
        .with_obs(obs.clone());
    for k in 0..receivers as u16 {
        let sta = MacAddress::station(k);
        let rx = link.deliver(&frame, sta).map_err(|e| e.to_string())?;
        let ok = rx
            .payload_at(k as usize)
            .map(|p| p == &frame.subframes()[k as usize].payload[..])
            == Some(true);
        println!(
            "  {sta}: matched {:?}, payload {}, decoded/skipped {}/{} symbols",
            rx.matched_indices,
            if ok { "intact" } else { "MISSING/CORRUPT" },
            rx.symbols_decoded,
            rx.symbols_skipped
        );
    }
    Ok(())
}

fn cmd_trace(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let stas: usize = args.get_or("stas", 4).map_err(|e| e.to_string())?;
    let snr: f64 = args.get_or("snr", 30.0).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
    if !(1..=8).contains(&stas) {
        return Err("--stas must be 1..=8".to_string());
    }
    if !obs.tracing() {
        eprintln!("# note: no --trace-out given; running untraced (add --trace-out trace.json)");
    }
    let summary = carpool::fig03_flight_trace(stas, snr, seed, obs).map_err(|e| e.to_string())?;
    println!(
        "fig03 flight trace: {}/{} stations delivered, {} payload symbols on air ({} us)",
        summary.delivered,
        summary.stations,
        summary.payload_symbols,
        summary.payload_symbols as f64 * carpool_phy::mcs::SYMBOL_DURATION * 1e6
    );
    Ok(())
}

fn cmd_bloom(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let receivers: usize = args.get_or("receivers", 8).map_err(|e| e.to_string())?;
    let hashes: usize = args.get_or("hashes", 4).map_err(|e| e.to_string())?;
    let trials: usize = args.get_or("trials", 20_000).map_err(|e| e.to_string())?;
    if receivers == 0 || receivers > 8 {
        return Err("--receivers must be 1..=8".to_string());
    }
    let mut rng = StdRng::seed_from_u64(11);
    println!("A-HDR with {receivers} receivers, h = {hashes}:");
    println!(
        "  optimal h          : {:.2}",
        optimal_hash_count(receivers)
    );
    println!(
        "  analytic r_FP      : {:.3}%",
        false_positive_ratio(hashes, receivers) * 100.0
    );
    println!(
        "  measured r_FP      : {:.3}%  ({trials} trials)",
        measure_false_positive_ratio_obs(hashes, receivers, trials, &mut rng, obs) * 100.0
    );
    println!(
        "  vs explicit headers: {:.1}% of the bits",
        48.0 / (48.0 * receivers as f64) * 100.0
    );
    Ok(())
}

fn cmd_gen_trace(args: &Args, obs: &carpool_obs::Obs) -> Result<(), String> {
    let stas: u16 = args.get_or("stas", 10).map_err(|e| e.to_string())?;
    let duration: f64 = args.get_or("duration", 30.0).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 1).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut downlink = Vec::new();
    let mut uplink = Vec::new();
    for sta in 0..stas {
        let mut down = VoipSource::new().generate(duration, &mut rng);
        let mut up = VoipSource::new().generate(duration, &mut rng);
        if args.flag("background") {
            // Downlink-dominant data on top of the calls, reproducing
            // the ~4:1 volume asymmetry of Fig. 1(c).
            let transport = if sta % 2 == 0 {
                Transport::Tcp
            } else {
                Transport::Udp
            };
            down.extend(
                BackgroundSource::new(transport)
                    .with_rate_scale(4.0)
                    .generate(duration, &mut rng),
            );
            up.extend(BackgroundSource::new(transport).generate(duration, &mut rng));
        }
        downlink.push((sta, down));
        uplink.push((sta, up));
    }
    let trace = Trace::from_arrivals(&downlink, &uplink);
    trace.emit_obs(obs);
    let stats = trace.volume_stats();
    print!("{}", trace.to_text());
    eprintln!(
        "# {} records over {duration} s, downlink share {:.1}%",
        trace.len(),
        stats.downlink_ratio() * 100.0
    );
    Ok(())
}

/// Runs the lint gate and returns its process exit code verbatim
/// (0 clean, 1 gate failure, 2 internal analyzer error), so scripts
/// can distinguish "the code is dirty" from "the linter broke".
fn cmd_lint(args: &Args) -> i32 {
    let budget_ms = match args.get("budget-ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: --budget-ms: '{v}' is not a number");
                return 2;
            }
        },
        None => None,
    };
    let opts = carpool_lint::LintOptions {
        root: args.get("root").map(std::path::PathBuf::from),
        json: args.flag("json"),
        write_baseline: args.flag("write-baseline"),
        force: args.flag("force"),
        explain: args.get("explain").map(str::to_string),
        graph: args.flag("graph"),
        budget_ms,
        strict_indexing: args.flag("strict-indexing"),
        sarif: args.get("sarif").map(std::path::PathBuf::from),
        no_cache: args.flag("no-cache"),
    };
    let code = carpool_lint::run(&opts);
    match code {
        0 => {}
        1 => eprintln!("error: lint gate failed: new violations or stale baseline (see above)"),
        _ => eprintln!(
            "error: lint could not run (internal analyzer error — bad workspace root, \
             unreadable sources, or malformed baseline)"
        ),
    }
    code
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{HELP}");
            std::process::exit(2);
        }
    };
    let session = match obs_session::ObsSession::from_args(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let obs = session.obs();
    if let Some(spec) = args.get("threads") {
        match spec.parse::<usize>() {
            Ok(n) if n >= 1 => carpool_par::set_thread_override(Some(n)),
            _ => {
                eprintln!("error: --threads expects a positive integer, got '{spec}'");
                std::process::exit(2);
            }
        }
    }
    if args.flag("no-tx-cache") {
        carpool_phy::txcache::set_enabled(false);
    }
    let result = match args.command() {
        Some("phy-ber") => cmd_phy_ber(&args, &obs),
        Some("mac-sim") => cmd_mac_sim(&args, &obs),
        Some("mac-dense") => cmd_mac_dense(&args, &obs),
        Some("sweep") => cmd_sweep(&args, &obs),
        Some("frame") => cmd_frame(&args, &obs),
        Some("trace") => cmd_trace(&args, &obs),
        Some("bloom") => cmd_bloom(&args, &obs),
        Some("gen-trace") => cmd_gen_trace(&args, &obs),
        Some("report") => report::cmd_report(&args),
        Some("lint") => {
            let code = cmd_lint(&args);
            session.finish();
            std::process::exit(code);
        }
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    session.finish();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
