//! `carpool report` — render an `--obs` JSONL event stream as per-layer
//! summary tables.
//!
//! The stream is self-describing (every record carries `kind` and
//! `layer`), so the report works on any mix of subcommand outputs: a
//! `mac-sim` run yields the MAC table, a `frame` run the PHY and frame
//! tables, and so on. Unknown kinds are counted but never fatal —
//! forward compatibility matters more than strictness here.

use carpool_obs::{LogHistogram, ParsedEvent};
use std::collections::BTreeMap;

/// Per-frame lifecycle assembled from flight-recorder `trace_*` events.
#[derive(Debug, Default, Clone)]
pub struct FrameTimeline {
    /// MAC enqueue time (sim seconds).
    pub enqueue: Option<f64>,
    /// Aggregation decision time.
    pub agg: Option<f64>,
    /// First airtime-start stamp.
    pub air_start: Option<f64>,
    /// Last airtime-end stamp.
    pub air_end: Option<f64>,
    /// Per-symbol RTE recalibrations applied / rejected.
    pub rte_applied: u64,
    pub rte_rejected: u64,
    /// Side-channel group CRC verdicts.
    pub side_ok: u64,
    pub side_fail: u64,
    /// A-HDR membership decisions observed (one per listening STA).
    pub ahdr_checks: u64,
    /// Per-STA outcomes: delivered / early-dropped.
    pub sta_delivered: u64,
    pub sta_dropped: u64,
    /// MAC-level closure.
    pub acked: u64,
    pub dropped: u64,
    pub retx: u64,
    /// Last applied-RTE timestamp, for cadence tracking.
    last_rte: Option<f64>,
    /// Most recent airtime-start (retransmissions restart the clock).
    last_air_start: Option<f64>,
}

impl FrameTimeline {
    /// Airtime of this frame, when both endpoints were traced.
    pub fn airtime(&self) -> Option<f64> {
        match (self.air_start, self.air_end) {
            (Some(s), Some(e)) if e >= s => Some(e - s),
            _ => None,
        }
    }
}

/// Aggregates accumulated from one event stream.
#[derive(Debug, Default)]
pub struct ReportAggregates {
    // Stream-wide.
    pub events: u64,
    pub malformed: u64,
    pub unknown_kinds: u64,
    pub t_max: f64,
    // PHY.
    pub rte_applied: u64,
    pub rte_rejected: u64,
    pub side_crc_ok: u64,
    pub side_crc_fail: u64,
    pub equalizer_resets: u64,
    // Frame / A-HDR.
    pub ahdr_matched: u64,
    pub ahdr_missed: u64,
    pub ahdr_false_positives: u64,
    pub ahdr_true_negatives: u64,
    pub subframe_accepted: u64,
    pub subframe_rejected: u64,
    pub subframe_bytes: u64,
    // MAC.
    pub delivered_frames: u64,
    pub delivered_bytes: u64,
    pub dropped_frames: u64,
    pub retransmissions: u64,
    pub transmissions: u64,
    pub collisions: u64,
    pub aggregated_stas: u64,
    pub airtime_s: f64,
    pub delay: LogHistogram,
    pub drop_delay: LogHistogram,
    // Traffic.
    pub arrivals: u64,
    pub arrival_bytes: u64,
    // Spans, keyed by name.
    pub spans: Vec<(String, SpanAgg)>,
    // Flight recorder (trace_* kinds from --trace-out JSONL).
    pub trace_records: u64,
    /// Ring-overflow accounting from the `trace_summary` trailer.
    pub trace_dropped: u64,
    pub frames: BTreeMap<u64, FrameTimeline>,
    pub trace_airtime: LogHistogram,
    pub trace_delivery_delay: LogHistogram,
    /// Gap between consecutive applied RTE recalibrations within one
    /// frame — the recalibration cadence.
    pub trace_rte_gap: LogHistogram,
}

/// Wall-clock span aggregate (microseconds).
#[derive(Debug, Default, Clone)]
pub struct SpanAgg {
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
}

impl ReportAggregates {
    /// Folds one parsed event into the aggregates.
    pub fn ingest(&mut self, e: &ParsedEvent) {
        self.events += 1;
        if e.t > self.t_max {
            self.t_max = e.t;
        }
        match e.kind.as_str() {
            "rte_update" => {
                if e.bool_field("applied") == Some(true) {
                    self.rte_applied += 1;
                } else {
                    self.rte_rejected += 1;
                }
            }
            "side_crc" => {
                if e.bool_field("ok") == Some(true) {
                    self.side_crc_ok += 1;
                } else {
                    self.side_crc_fail += 1;
                }
            }
            "eq_reset" => self.equalizer_resets += 1,
            "ahdr_check" => {
                let matched = e.bool_field("matched") == Some(true);
                if matched {
                    self.ahdr_matched += 1;
                } else {
                    self.ahdr_missed += 1;
                }
                // Ground truth is only present when the emitter knew the
                // real receiver set (facade deliveries, bloom probes).
                match (matched, e.bool_field("expected")) {
                    (true, Some(false)) => self.ahdr_false_positives += 1,
                    (false, Some(false)) => self.ahdr_true_negatives += 1,
                    _ => {}
                }
            }
            "subframe_accept" => {
                self.subframe_accepted += 1;
                self.subframe_bytes += e.u64_field("bytes").unwrap_or(0);
            }
            "subframe_reject" => self.subframe_rejected += 1,
            "mac_delivery" => {
                self.delivered_frames += 1;
                self.delivered_bytes += e.u64_field("bytes").unwrap_or(0);
                if let Some(d) = e.f64_field("delay") {
                    self.delay.record(d);
                }
            }
            "mac_drop" => {
                self.dropped_frames += 1;
                if let Some(d) = e.f64_field("delay") {
                    self.drop_delay.record(d);
                }
            }
            "mac_retx" => self.retransmissions += 1,
            "mac_tx" => {
                self.transmissions += 1;
                self.aggregated_stas += e.u64_field("stas").unwrap_or(0);
                self.airtime_s += e.f64_field("airtime").unwrap_or(0.0);
            }
            "mac_collision" => self.collisions += 1,
            "queue_depth" | "backoff" => {}
            "traffic_arrival" => {
                self.arrivals += 1;
                self.arrival_bytes += e.u64_field("bytes").unwrap_or(0);
            }
            "span_end" => {
                let name = e.str_field("name").unwrap_or("?").to_string();
                let us = e.u64_field("micros").unwrap_or(0);
                if self.spans.iter().all(|(n, _)| *n != name) {
                    self.spans.push((name.clone(), SpanAgg::default()));
                }
                if let Some((_, agg)) = self.spans.iter_mut().find(|(n, _)| *n == name) {
                    agg.count += 1;
                    agg.total_us += us;
                    agg.max_us = agg.max_us.max(us);
                }
            }
            kind if kind.starts_with("trace_") => self.ingest_trace(kind, e),
            _ => self.unknown_kinds += 1,
        }
    }

    /// Folds one flight-recorder record into the per-frame timelines.
    fn ingest_trace(&mut self, kind: &str, e: &ParsedEvent) {
        if kind == "trace_summary" {
            self.trace_dropped += e.u64_field("dropped").unwrap_or(0);
            return;
        }
        self.trace_records += 1;
        let frame = e.u64_field("frame").unwrap_or(0);
        let tl = self.frames.entry(frame).or_default();
        match kind {
            "trace_enqueue" => tl.enqueue = tl.enqueue.or(Some(e.t)),
            "trace_agg" => tl.agg = tl.agg.or(Some(e.t)),
            "trace_airtime_start" => {
                tl.air_start = tl.air_start.or(Some(e.t));
                tl.last_air_start = Some(e.t);
            }
            "trace_airtime_end" => tl.air_end = Some(e.t),
            "trace_rte" => {
                if e.u64_field("b") == Some(1) {
                    tl.rte_applied += 1;
                    if let Some(prev) = tl.last_rte {
                        self.trace_rte_gap.record(e.t - prev);
                    }
                    tl.last_rte = Some(e.t);
                } else {
                    tl.rte_rejected += 1;
                }
            }
            "trace_side_crc" => {
                if e.u64_field("b") == Some(1) {
                    tl.side_ok += 1;
                } else {
                    tl.side_fail += 1;
                }
            }
            "trace_ahdr" => tl.ahdr_checks += 1,
            "trace_outcome" => {
                // b bit 0 = delivered flag, upper bits = payload bytes.
                if e.u64_field("b").unwrap_or(0) & 1 == 1 {
                    tl.sta_delivered += 1;
                } else {
                    tl.sta_dropped += 1;
                }
            }
            "trace_ack" => {
                tl.acked += 1;
                // b carries the enqueue→ACK delay as f64 bits.
                if let Some(bits) = e.u64_field("b") {
                    let delay = f64::from_bits(bits);
                    if delay.is_finite() && delay >= 0.0 {
                        self.trace_delivery_delay.record(delay);
                    }
                }
            }
            "trace_drop" => tl.dropped += 1,
            "trace_retx" => tl.retx += 1,
            _ => self.unknown_kinds += 1,
        }
        // Each end event closes the most recent start, so a frame that
        // retransmits contributes one airtime sample per time on air.
        if kind == "trace_airtime_end" {
            if let Some(s) = tl.last_air_start.take() {
                if e.t >= s {
                    self.trace_airtime.record(e.t - s);
                }
            }
        }
    }

    /// Parses a whole JSONL document, tolerating blank lines.
    pub fn from_jsonl(text: &str) -> ReportAggregates {
        let mut agg = ReportAggregates::default();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match ParsedEvent::from_json_line(trimmed) {
                Ok(e) => agg.ingest(&e),
                Err(_) => agg.malformed += 1,
            }
        }
        agg
    }

    /// A-HDR false-positive ratio over probes with known ground truth.
    pub fn ahdr_fp_ratio(&self) -> Option<f64> {
        let with_truth = self.ahdr_false_positives + self.ahdr_true_negatives;
        (with_truth > 0).then(|| self.ahdr_false_positives as f64 / with_truth as f64)
    }

    /// Downlink+uplink goodput over the stream's time extent, Mbit/s.
    pub fn goodput_mbps(&self) -> Option<f64> {
        (self.t_max > 0.0 && self.delivered_bytes > 0)
            .then(|| self.delivered_bytes as f64 * 8.0 / self.t_max / 1e6)
    }

    /// Renders the per-layer report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events: {} ({} malformed, {} unknown kinds), time extent {:.3} s\n",
            self.events, self.malformed, self.unknown_kinds, self.t_max
        ));

        if self.rte_applied
            + self.rte_rejected
            + self.side_crc_ok
            + self.side_crc_fail
            + self.equalizer_resets
            > 0
        {
            out.push_str("\nPHY\n");
            let rte_total = self.rte_applied + self.rte_rejected;
            if rte_total > 0 {
                out.push_str(&format!(
                    "  RTE updates        : {} applied / {} rejected ({:.1}% applied)\n",
                    self.rte_applied,
                    self.rte_rejected,
                    self.rte_applied as f64 / rte_total as f64 * 100.0
                ));
            }
            let crc_total = self.side_crc_ok + self.side_crc_fail;
            if crc_total > 0 {
                out.push_str(&format!(
                    "  side-channel CRC   : {} ok / {} failed ({:.2}% failure)\n",
                    self.side_crc_ok,
                    self.side_crc_fail,
                    self.side_crc_fail as f64 / crc_total as f64 * 100.0
                ));
            }
            out.push_str(&format!(
                "  equalizer resets   : {}\n",
                self.equalizer_resets
            ));
        }

        if self.ahdr_matched + self.ahdr_missed + self.subframe_accepted + self.subframe_rejected
            > 0
        {
            out.push_str("\nFRAME / A-HDR\n");
            out.push_str(&format!(
                "  membership checks  : {} matched / {} missed\n",
                self.ahdr_matched, self.ahdr_missed
            ));
            if let Some(fp) = self.ahdr_fp_ratio() {
                out.push_str(&format!(
                    "  false positives    : {} of {} outsider probes ({:.3}%)\n",
                    self.ahdr_false_positives,
                    self.ahdr_false_positives + self.ahdr_true_negatives,
                    fp * 100.0
                ));
            }
            out.push_str(&format!(
                "  subframes          : {} accepted ({} B) / {} rejected\n",
                self.subframe_accepted, self.subframe_bytes, self.subframe_rejected
            ));
        }

        if self.delivered_frames + self.dropped_frames + self.transmissions > 0 {
            out.push_str("\nMAC\n");
            out.push_str(&format!(
                "  delivered          : {} frames, {} B",
                self.delivered_frames, self.delivered_bytes
            ));
            if let Some(g) = self.goodput_mbps() {
                out.push_str(&format!(" ({g:.2} Mbit/s over the stream)"));
            }
            out.push('\n');
            if self.delay.count() > 0 {
                let q = self.delay.quantiles();
                out.push_str(&format!(
                    "  delivery delay     : p50 {:.4} s, p95 {:.4} s, p99 {:.4} s, p999 {:.4} s, max {:.4} s\n",
                    q.p50,
                    q.p95,
                    q.p99,
                    q.p999,
                    self.delay.max()
                ));
            }
            out.push_str(&format!(
                "  dropped            : {} frames",
                self.dropped_frames
            ));
            if self.drop_delay.count() > 0 {
                out.push_str(&format!(" (max queued {:.4} s)", self.drop_delay.max()));
            }
            out.push('\n');
            out.push_str(&format!(
                "  retransmissions    : {}\n",
                self.retransmissions
            ));
            if self.transmissions > 0 {
                out.push_str(&format!(
                    "  channel            : {} TXOPs, {} collisions, {:.2} STAs/TXOP, {:.3} s airtime\n",
                    self.transmissions,
                    self.collisions,
                    self.aggregated_stas as f64 / self.transmissions as f64,
                    self.airtime_s
                ));
            }
        }

        if self.arrivals > 0 {
            out.push_str("\nTRAFFIC\n");
            out.push_str(&format!(
                "  arrivals           : {} frames, {} B\n",
                self.arrivals, self.arrival_bytes
            ));
        }

        if self.trace_records > 0 || self.trace_dropped > 0 {
            out.push_str("\nFLIGHT RECORDER\n");
            out.push_str(&format!(
                "  records            : {} across {} frames ({} lost to ring overflow)\n",
                self.trace_records,
                self.frames.len(),
                self.trace_dropped
            ));
            let quant_line = |name: &str, h: &LogHistogram, scale: f64, unit: &str| {
                let q = h.quantiles();
                format!(
                    "  {name:<19}: p50 {:.1} {unit}, p95 {:.1} {unit}, p99 {:.1} {unit}, p999 {:.1} {unit} ({} samples)\n",
                    q.p50 * scale,
                    q.p95 * scale,
                    q.p99 * scale,
                    q.p999 * scale,
                    h.count()
                )
            };
            if self.trace_airtime.count() > 0 {
                out.push_str(&quant_line("airtime", &self.trace_airtime, 1e6, "us"));
            }
            if self.trace_delivery_delay.count() > 0 {
                out.push_str(&quant_line(
                    "delivery delay",
                    &self.trace_delivery_delay,
                    1e3,
                    "ms",
                ));
            }
            if self.trace_rte_gap.count() > 0 {
                out.push_str(&quant_line("RTE cadence", &self.trace_rte_gap, 1e6, "us"));
            }
            // Per-frame timelines, capped to keep huge traces readable.
            const MAX_TIMELINES: usize = 8;
            for (id, tl) in self.frames.iter().take(MAX_TIMELINES) {
                let stamp =
                    |t: Option<f64>| t.map_or("-".to_string(), |t| format!("{:.1}us", t * 1e6));
                let air = tl
                    .airtime()
                    .map_or(String::new(), |a| format!(" ({:.1}us)", a * 1e6));
                out.push_str(&format!(
                    "  frame {id:<6} enq {} | agg {} | air {}..{}{air} | rte {}+/{}- | crc {}+/{}- | ahdr {} | sta {}ok/{}drop | {}\n",
                    stamp(tl.enqueue),
                    stamp(tl.agg),
                    stamp(tl.air_start),
                    stamp(tl.air_end),
                    tl.rte_applied,
                    tl.rte_rejected,
                    tl.side_ok,
                    tl.side_fail,
                    tl.ahdr_checks,
                    tl.sta_delivered,
                    tl.sta_dropped,
                    if tl.dropped > 0 {
                        "DROPPED".to_string()
                    } else if tl.acked > 0 {
                        format!("acked x{}", tl.acked)
                    } else if tl.retx > 0 {
                        format!("retx x{}", tl.retx)
                    } else {
                        "open".to_string()
                    }
                ));
            }
            if self.frames.len() > MAX_TIMELINES {
                out.push_str(&format!(
                    "  ... {} more frames (full detail in the .jsonl / chrome trace)\n",
                    self.frames.len() - MAX_TIMELINES
                ));
            }
        }

        if !self.spans.is_empty() {
            out.push_str("\nSPANS (wall clock)        count   total ms    mean us     max us\n");
            for (name, a) in &self.spans {
                out.push_str(&format!(
                    "  {name:<22} {:>7} {:>10.2} {:>10.1} {:>10}\n",
                    a.count,
                    a.total_us as f64 / 1e3,
                    a.total_us as f64 / a.count.max(1) as f64,
                    a.max_us
                ));
            }
        }
        out
    }
}

/// The `carpool report <path.jsonl>` subcommand.
pub fn cmd_report(args: &crate::args::Args) -> Result<(), String> {
    if args.positionals().len() > 1 {
        return Err("usage: carpool report <path.jsonl> (one file at a time)".to_string());
    }
    let path = args
        .positional(0)
        .or_else(|| args.get("path"))
        .ok_or("usage: carpool report <path.jsonl>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let agg = ReportAggregates::from_jsonl(&text);
    if agg.events == 0 {
        return Err(format!("'{path}' contains no parseable obs events"));
    }
    print!("{}", agg.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use carpool_obs::{Event, Stamped};

    fn line(t: f64, seq: u64, event: Event) -> String {
        Stamped { t, seq, event }.to_json_line()
    }

    #[test]
    fn aggregates_match_a_small_synthetic_stream() {
        let mut text = String::new();
        text.push_str(&line(
            0.1,
            0,
            Event::MacDelivery {
                dest: 1,
                bytes: 1000,
                delay: 0.01,
            },
        ));
        text.push('\n');
        text.push_str(&line(
            0.2,
            1,
            Event::MacDelivery {
                dest: 2,
                bytes: 500,
                delay: 0.04,
            },
        ));
        text.push('\n');
        text.push_str(&line(
            0.3,
            2,
            Event::MacDrop {
                dest: 1,
                delay: 0.2,
            },
        ));
        text.push('\n');
        text.push_str(&line(
            0.3,
            3,
            Event::MacTx {
                stas: 4,
                airtime: 0.002,
            },
        ));
        text.push('\n');
        text.push_str(&line(
            0.4,
            4,
            Event::AhdrCheck {
                station: 9,
                matched: true,
                expected: Some(false),
            },
        ));
        text.push('\n');
        text.push_str(&line(
            0.4,
            5,
            Event::AhdrCheck {
                station: 9,
                matched: false,
                expected: Some(false),
            },
        ));
        text.push('\n');
        text.push_str("not json\n");

        let agg = ReportAggregates::from_jsonl(&text);
        assert_eq!(agg.events, 6);
        assert_eq!(agg.malformed, 1);
        assert_eq!(agg.delivered_frames, 2);
        assert_eq!(agg.delivered_bytes, 1500);
        assert_eq!(agg.dropped_frames, 1);
        assert_eq!(agg.transmissions, 1);
        assert_eq!(agg.ahdr_false_positives, 1);
        assert_eq!(agg.ahdr_fp_ratio(), Some(0.5));
        assert!((agg.t_max - 0.4).abs() < 1e-12);
        assert!((agg.delay.max() - 0.04).abs() < 1e-3);
        let report = agg.render();
        assert!(report.contains("MAC"));
        assert!(report.contains("FRAME / A-HDR"));
    }

    #[test]
    fn span_ends_aggregate_by_name() {
        let mut text = String::new();
        text.push_str(&line(
            0.0,
            0,
            Event::SpanEnd {
                name: "phy.decode",
                micros: 100,
            },
        ));
        text.push('\n');
        text.push_str(&line(
            0.0,
            1,
            Event::SpanEnd {
                name: "phy.decode",
                micros: 300,
            },
        ));
        text.push('\n');
        text.push_str(&line(
            0.0,
            2,
            Event::SpanEnd {
                name: "mac.sim_loop",
                micros: 50,
            },
        ));
        let agg = ReportAggregates::from_jsonl(&text);
        assert_eq!(agg.spans.len(), 2);
        let decode = &agg.spans.iter().find(|(n, _)| n == "phy.decode").unwrap().1;
        assert_eq!(decode.count, 2);
        assert_eq!(decode.total_us, 400);
        assert_eq!(decode.max_us, 300);
        assert!(agg.render().contains("mac.sim_loop"));
    }

    #[test]
    fn empty_stream_reports_zero_events() {
        let agg = ReportAggregates::from_jsonl("\n\n");
        assert_eq!(agg.events, 0);
    }

    #[test]
    fn flight_trace_stream_builds_frame_timelines() {
        use carpool_obs::{flight, TraceKind, TraceRecord};

        let delay = 0.0015f64;
        let records = vec![
            TraceRecord::new(TraceKind::MacEnqueue, 1, 0.0, 7, 1500),
            TraceRecord::new(TraceKind::AggDecision, 1, 100e-6, 7, 0),
            TraceRecord::new(TraceKind::AirtimeStart, 1, 100e-6, 7, 500),
            TraceRecord::new(TraceKind::RteRecal, 1, 140e-6, 10, 1),
            TraceRecord::new(TraceKind::RteRecal, 1, 180e-6, 20, 1),
            TraceRecord::new(TraceKind::RteRecal, 1, 220e-6, 30, 0),
            TraceRecord::new(TraceKind::SideCrc, 1, 180e-6, 0, 1),
            TraceRecord::new(TraceKind::AhdrDecision, 1, 110e-6, 7, 1),
            TraceRecord::new(TraceKind::StaOutcome, 1, 300e-6, 7, (1500 << 1) | 1),
            TraceRecord::new(TraceKind::AirtimeEnd, 1, 500e-6, 7, 500),
            TraceRecord::new(TraceKind::MacAck, 1, 520e-6, 7, delay.to_bits()),
            TraceRecord::new(TraceKind::StaOutcome, 2, 10e-6, 9, 0),
        ];
        let text = flight::to_jsonl(&records, 3);
        let agg = ReportAggregates::from_jsonl(&text);
        assert_eq!(agg.malformed, 0);
        assert_eq!(agg.unknown_kinds, 0);
        assert_eq!(agg.trace_records, 12);
        assert_eq!(agg.trace_dropped, 3);
        assert_eq!(agg.frames.len(), 2);

        let tl = &agg.frames[&1];
        assert_eq!(tl.enqueue, Some(0.0));
        assert!(tl.airtime().is_some_and(|a| (a - 400e-6).abs() < 1e-12));
        assert_eq!((tl.rte_applied, tl.rte_rejected), (2, 1));
        assert_eq!((tl.side_ok, tl.side_fail), (1, 0));
        assert_eq!(tl.sta_delivered, 1);
        assert_eq!(tl.acked, 1);
        assert_eq!(agg.frames[&2].sta_dropped, 1);

        // The RTE cadence histogram saw the 40 us inter-recal gap.
        assert_eq!(agg.trace_rte_gap.count(), 1);
        assert!((agg.trace_delivery_delay.max() - delay).abs() < 1e-12);

        let report = agg.render();
        assert!(report.contains("FLIGHT RECORDER"));
        assert!(report.contains("ring overflow"));
        assert!(report.contains("RTE cadence"));
        assert!(report.contains("frame 1"));
        assert!(report.contains("DROPPED") || report.contains("sta 0ok/1drop"));
    }
}
