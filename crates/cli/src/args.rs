//! A small `--key value` argument parser (the workspace avoids external
//! CLI crates).

use std::collections::HashMap;

/// Parsed command-line arguments: one subcommand, bare positionals
/// (e.g. the trace path in `carpool report run.jsonl`) and `--key value`
/// options (`--flag` without a value is stored as `"true"`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    positionals: Vec<String>,
    options: HashMap<String, String>,
}

/// Errors from argument parsing and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An option's value failed to parse.
    BadValue {
        /// Option name (without dashes).
        key: String,
        /// Offending raw value.
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::BadValue { key, value } => {
                write!(f, "invalid value '{value}' for --{key}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    /// The first bare token becomes the subcommand; later bare tokens are
    /// collected as positionals in order.
    ///
    /// # Errors
    ///
    /// Infallible today (the `Result` is kept for option-value errors
    /// surfaced later by [`Args::get_or`]).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                args.command = iter.next();
            }
        }
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                args.positionals.push(token);
                continue;
            };
            let value = iter
                .next_if(|v| !v.starts_with("--"))
                .unwrap_or_else(|| "true".to_string());
            args.options.insert(key.to_string(), value);
        }
        Ok(args)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Bare positional arguments after the subcommand, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The `idx`-th positional argument.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positionals.get(idx).map(String::as_str)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Boolean flag (present without value, or an explicit true/false).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn command_and_options() {
        let a = parse(&["mac-sim", "--stas", "30", "--rts-cts", "--seed", "7"]);
        assert_eq!(a.command(), Some("mac-sim"));
        assert_eq!(a.get_or("stas", 0usize).unwrap(), 30);
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert!(a.flag("rts-cts"));
        assert!(!a.flag("background"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["phy-ber"]);
        assert_eq!(a.get_or("frames", 20usize).unwrap(), 20);
        assert_eq!(a.get_or("snr", 28.0f64).unwrap(), 28.0);
    }

    #[test]
    fn bad_value_reported() {
        let a = parse(&["x", "--stas", "many"]);
        assert!(matches!(
            a.get_or("stas", 0usize),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn positionals_collected_in_order() {
        let a = parse(&["report", "run.jsonl", "--top", "5", "other.jsonl"]);
        assert_eq!(a.command(), Some("report"));
        assert_eq!(a.positionals(), ["run.jsonl", "other.jsonl"]);
        assert_eq!(a.positional(0), Some("run.jsonl"));
        assert_eq!(a.positional(2), None);
        assert_eq!(a.get_or("top", 0usize).unwrap(), 5);
    }

    #[test]
    fn no_command_only_flags() {
        let a = parse(&["--help"]);
        assert_eq!(a.command(), None);
        assert!(a.flag("help"));
    }
}
