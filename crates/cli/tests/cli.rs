//! End-to-end tests of the `carpool` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_carpool"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_all_commands() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    for cmd in ["phy-ber", "mac-sim", "sweep", "frame", "bloom", "gen-trace"] {
        assert!(stdout.contains(cmd), "missing {cmd} in help");
    }
}

#[test]
fn no_arguments_shows_help() {
    let (ok, stdout, _) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let (ok, _, stderr) = run(&["warp-drive"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn bad_option_value_fails_cleanly() {
    let (ok, _, stderr) = run(&["mac-sim", "--stas", "lots"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value"));
}

#[test]
fn bloom_analysis_prints_expected_fields() {
    let (ok, stdout, _) = run(&["bloom", "--receivers", "8", "--trials", "2000"]);
    assert!(ok);
    assert!(stdout.contains("optimal h"));
    assert!(stdout.contains("analytic r_FP"));
    assert!(stdout.contains("measured r_FP"));
}

#[test]
fn frame_delivery_reports_intact_payloads() {
    let (ok, stdout, _) = run(&["frame", "--receivers", "2", "--bytes", "120"]);
    assert!(ok, "{stdout}");
    assert_eq!(stdout.matches("payload intact").count(), 2, "{stdout}");
}

#[test]
fn gen_trace_emits_parseable_trace() {
    let (ok, stdout, _) = run(&["gen-trace", "--stas", "2", "--duration", "1"]);
    assert!(ok);
    let trace = carpool_traffic::trace::Trace::from_text(&stdout).expect("valid trace");
    assert!(!trace.is_empty());
}

#[test]
fn mac_sim_smoke() {
    let (ok, stdout, _) = run(&["mac-sim", "--stas", "6", "--duration", "1"]);
    assert!(ok);
    assert!(stdout.contains("downlink:"));
    assert!(stdout.contains("channel :"));
}
