//! Property-based tests for framing, aggregation and NAV arithmetic.

use carpool_frame::addr::MacAddress;
use carpool_frame::aggregation::{select, AggregationLimits, AggregationPolicy, QueuedFrame};
use carpool_frame::airtime::{ack_airtime, SIFS};
use carpool_frame::mac_frame::{AmpduBundle, FrameKind, MacFrame};
use carpool_frame::nav::{ack_start_offset, nav_ack, nav_data, nav_receiver};
use carpool_frame::sig::Sig;
use carpool_phy::mcs::Mcs;
use proptest::prelude::*;

fn any_mcs() -> impl Strategy<Value = Mcs> {
    prop::sample::select(Mcs::ALL.to_vec())
}

fn any_policy() -> impl Strategy<Value = AggregationPolicy> {
    prop::sample::select(vec![
        AggregationPolicy::None,
        AggregationPolicy::Ampdu,
        AggregationPolicy::MultiUser,
    ])
}

fn queue_strategy() -> impl Strategy<Value = Vec<QueuedFrame>> {
    prop::collection::vec((0u16..12, 40usize..1500), 1..40).prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(k, (dest, bytes))| QueuedFrame {
                dest: MacAddress::station(dest),
                bytes,
                enqueue_time: k as f64 * 1e-3,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sig_round_trip(mcs in any_mcs(), len in any::<u16>()) {
        let sig = Sig::new(mcs, len);
        prop_assert_eq!(Sig::from_bits(&sig.to_bits()).expect("valid"), sig);
    }

    #[test]
    fn mac_frame_round_trip(
        dest in any::<[u8; 6]>(),
        src in any::<[u8; 6]>(),
        seq in any::<u16>(),
        body in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let f = MacFrame {
            kind: FrameKind::Data,
            dest: dest.into(),
            src: src.into(),
            seq,
            body,
        };
        prop_assert_eq!(MacFrame::from_bytes(&f.to_bytes()).expect("valid"), f);
    }

    #[test]
    fn ampdu_round_trip(
        dest in any::<[u8; 6]>(),
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..10),
    ) {
        let frames: Vec<MacFrame> = bodies
            .into_iter()
            .enumerate()
            .map(|(k, body)| MacFrame::data(dest.into(), MacAddress::access_point(0), k as u16, body))
            .collect();
        let bundle = AmpduBundle::from_frames(frames.clone()).expect("one destination");
        let parsed = AmpduBundle::parse_lossy(&bundle.to_bytes());
        prop_assert_eq!(parsed.len(), frames.len());
        for (p, f) in parsed.into_iter().zip(frames) {
            prop_assert_eq!(p.expect("intact"), f);
        }
    }

    #[test]
    fn selection_invariants(queue in queue_strategy(), policy in any_policy()) {
        let limits = AggregationLimits::default();
        let sel = select(policy, &queue, &limits);
        // Head-of-line always served.
        prop_assert!(sel.indices().contains(&0));
        // Indices valid and unique.
        let idx = sel.indices();
        prop_assert!(idx.iter().all(|&k| k < queue.len()));
        let unique: std::collections::HashSet<usize> = idx.iter().copied().collect();
        prop_assert_eq!(unique.len(), idx.len());
        // Each group is single-destination and within the receiver cap.
        prop_assert!(sel.receiver_count() <= limits.max_receivers);
        for (dest, group) in &sel.groups {
            prop_assert!(!group.is_empty());
            for &k in group {
                prop_assert_eq!(queue[k].dest, *dest);
            }
            prop_assert!(group.len() <= limits.max_frames_per_receiver);
        }
    }

    #[test]
    fn byte_cap_respected_beyond_head(queue in queue_strategy(), cap in 500usize..4000) {
        let limits = AggregationLimits { max_bytes: cap, ..Default::default() };
        let sel = select(AggregationPolicy::MultiUser, &queue, &limits);
        let total: usize = sel.indices().iter().map(|&k| queue[k].bytes).sum();
        // Either within cap, or the head alone exceeded it.
        prop_assert!(total <= cap || sel.frame_count() == 1);
    }

    #[test]
    fn nav_identities(n in 1usize..=8, payload_us in 1.0f64..10_000.0) {
        let payload = payload_us * 1e-6;
        // Eq. 1 decomposes into the ACK schedule.
        let last_ack_end = ack_start_offset(n) + ack_airtime();
        prop_assert!((nav_data(n, payload) - payload - last_ack_end).abs() < 1e-12);
        // ACK NAVs count down to zero.
        prop_assert_eq!(nav_ack(n, n), 0.0);
        for j in 1..n {
            prop_assert!(nav_ack(j, n) > nav_ack(j + 1, n));
        }
        // Receiver deferrals are spaced by one ACK + SIFS.
        for i in 1..n {
            let gap = nav_receiver(i + 1) - nav_receiver(i);
            prop_assert!((gap - (ack_airtime() + SIFS)).abs() < 1e-12);
        }
    }
}
