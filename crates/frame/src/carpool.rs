//! Carpool PPDU assembly and station-side parsing (paper Fig. 4).
//!
//! A Carpool frame is `[preamble][A-HDR][SIG_1][payload_1]...[SIG_N]
//! [payload_N]`. The A-HDR Bloom filter names each subframe's receiver;
//! every SIG gives the following payload's MCS and byte length so that a
//! station can hop over foreign subframes decoding only SIG symbols.
//!
//! The station-side flow implemented by [`receive_carpool`]:
//!
//! 1. decode the A-HDR and compute the matched subframe indices — if
//!    none match, drop the frame immediately (only 2 symbols decoded);
//! 2. walk the subframes in order, decoding every SIG; decode the
//!    payloads of matched subframes and *skip* the rest;
//! 3. report per-subframe payloads plus decode/skip symbol counts for
//!    energy accounting (paper Section 8).

use crate::addr::MacAddress;
use crate::sig::{Sig, SIG_BITS};
use crate::FrameError;
use carpool_bloom::{AggregationHeader, BLOOM_BITS, DEFAULT_HASHES, MAX_RECEIVERS};
use carpool_phy::bits::{bits_to_bytes, bytes_to_bits};
use carpool_phy::math::Complex64;
use carpool_phy::mcs::{Mcs, SYMBOL_DURATION};
use carpool_phy::rx::{Estimation, FrameDecoder, PhyScratch, SectionLayout};
use carpool_phy::tx::{transmit, SectionSpec, SideChannelConfig, TxFrame};

/// One subframe: the MAC data for exactly one receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subframe {
    /// Destination station.
    pub receiver: MacAddress,
    /// MCS for this receiver (subframes may differ, paper Section 4.1).
    pub mcs: Mcs,
    /// MAC payload bytes (a single MPDU or an A-MPDU bundle).
    pub payload: Vec<u8>,
}

impl Subframe {
    /// Creates a subframe.
    pub fn new(receiver: MacAddress, mcs: Mcs, payload: Vec<u8>) -> Subframe {
        Subframe {
            receiver,
            mcs,
            payload,
        }
    }
}

/// A Carpool aggregate frame ready for transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct CarpoolFrame {
    subframes: Vec<Subframe>,
    hashes: usize,
    side_channel: Option<SideChannelConfig>,
}

impl CarpoolFrame {
    /// Builds a frame from subframes with the paper's default hash count
    /// and side-channel configuration.
    ///
    /// # Errors
    ///
    /// * [`FrameError::Empty`] if `subframes` is empty or any payload is
    ///   empty or longer than 65535 bytes (the SIG length field).
    /// * [`FrameError::TooManyReceivers`] beyond [`MAX_RECEIVERS`].
    pub fn new(subframes: Vec<Subframe>) -> Result<CarpoolFrame, FrameError> {
        CarpoolFrame::with_options(
            subframes,
            DEFAULT_HASHES,
            Some(SideChannelConfig::default()),
        )
    }

    /// Builds a frame with explicit hash count and side channel.
    ///
    /// # Errors
    ///
    /// See [`CarpoolFrame::new`].
    pub fn with_options(
        subframes: Vec<Subframe>,
        hashes: usize,
        side_channel: Option<SideChannelConfig>,
    ) -> Result<CarpoolFrame, FrameError> {
        if subframes.is_empty() {
            return Err(FrameError::Empty);
        }
        if subframes.len() > MAX_RECEIVERS {
            return Err(FrameError::TooManyReceivers {
                count: subframes.len(),
            });
        }
        for sf in &subframes {
            if sf.payload.is_empty() || sf.payload.len() > u16::MAX as usize {
                return Err(FrameError::Malformed {
                    reason: format!("payload of {} bytes unsupported", sf.payload.len()),
                });
            }
        }
        Ok(CarpoolFrame {
            subframes,
            hashes,
            side_channel,
        })
    }

    /// The subframes in transmission order.
    pub fn subframes(&self) -> &[Subframe] {
        &self.subframes
    }

    /// The computed aggregation header.
    pub fn header(&self) -> AggregationHeader {
        let receivers: Vec<&[u8]> = self
            .subframes
            .iter()
            .map(|s| s.receiver.as_bytes())
            .collect(); // lint:allow(hot-alloc): per-TXOP frame assembly, amortized by the TX waveform cache
                        // The receiver count was validated at construction, so the error
                        // arm is unreachable; an empty header is the graceful fallback.
        AggregationHeader::for_receivers(&receivers, self.hashes)
            .unwrap_or_else(|_| AggregationHeader::new(self.hashes))
    }

    /// PHY section specs: `[A-HDR][SIG_1][payload_1]...`.
    pub fn to_specs(&self) -> Vec<SectionSpec> {
        let mut specs = Vec::with_capacity(1 + 2 * self.subframes.len()); // lint:allow(hot-alloc): per-TXOP frame assembly, amortized by the TX waveform cache
                                                                          // The A-HDR is QBPSK-marked so any receiver can classify the
                                                                          // PPDU as Carpool at the first post-preamble symbol (Sec. 4.3).
        specs.push(SectionSpec::header_qbpsk(self.header().to_bits()));
        for sf in &self.subframes {
            let sig = Sig::new(sf.mcs, sf.payload.len() as u16);
            specs.push(SectionSpec::header(sig.to_bits()));
            let bits = bytes_to_bits(&sf.payload);
            specs.push(match self.side_channel {
                Some(sc) => SectionSpec {
                    bits,
                    mcs: sf.mcs,
                    scramble: true,
                    side_channel: Some(sc),
                    qbpsk: false,
                },
                None => SectionSpec::payload_legacy(bits, sf.mcs),
            });
        }
        specs
    }

    /// Modulates the frame to baseband samples.
    ///
    /// # Errors
    ///
    /// Propagates PHY configuration errors as [`FrameError::Phy`].
    pub fn transmit(&self) -> Result<TxFrame, FrameError> {
        transmit(&self.to_specs()).map_err(FrameError::Phy)
    }

    /// Total payload bytes across subframes.
    pub fn payload_bytes(&self) -> usize {
        self.subframes.iter().map(|s| s.payload.len()).sum()
    }
}

/// A subframe as seen by a receiving station.
#[derive(Debug, Clone, PartialEq)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub struct ReceivedSubframe {
    /// Position in the frame.
    pub index: usize,
    /// The decoded SIG field.
    pub sig: Sig,
    /// Decoded payload bytes — `Some` only for matched subframes.
    pub payload: Option<Vec<u8>>,
}

/// Outcome of a station processing a Carpool frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CarpoolReception {
    /// Subframe indices the A-HDR matched for this station.
    pub matched_indices: Vec<usize>,
    /// Every subframe's SIG, with payloads for matched ones.
    pub subframes: Vec<ReceivedSubframe>,
    /// OFDM symbols this station actually demodulated.
    pub symbols_decoded: usize,
    /// OFDM symbols skipped (energy saved, paper Section 8).
    pub symbols_skipped: usize,
}

impl CarpoolReception {
    /// Payload bytes decoded for this station at `index`, if any.
    pub fn payload_at(&self, index: usize) -> Option<&[u8]> {
        self.subframes
            .iter()
            .find(|s| s.index == index)
            .and_then(|s| s.payload.as_deref())
    }
}

/// Station-side processing of a received Carpool frame.
///
/// `side_channel` must mirror the transmitter's configuration (it is a
/// capability negotiated at association, paper Section 4.3).
///
/// # Errors
///
/// * [`FrameError::Phy`] for malformed sample buffers.
/// * [`FrameError::BadSig`] if a SIG fails its parity — the station
///   cannot navigate past an unreadable SIG, so parsing stops there.
pub fn receive_carpool(
    samples: &[Complex64],
    station: MacAddress,
    estimation: Estimation,
    hashes: usize,
    side_channel: Option<SideChannelConfig>,
) -> Result<CarpoolReception, FrameError> {
    receive_carpool_obs(
        samples,
        station,
        estimation,
        hashes,
        side_channel,
        &carpool_obs::Obs::noop(),
    )
}

/// Numeric station identity for event streams (address as a big-endian
/// integer over its six bytes).
fn station_id(addr: MacAddress) -> u64 {
    addr.as_bytes()
        .iter()
        .fold(0u64, |acc, &b| (acc << 8) | b as u64)
}

/// [`receive_carpool`] with observability. Emits an
/// [`carpool_obs::Event::AhdrCheck`] for the A-HDR membership test
/// (ground truth unknown at this layer — callers who know whether the
/// station was really aboard emit their own check events), per-subframe
/// accept/skip events, and a `frame.receive` timing span. The attached
/// PHY decoder inherits `obs`, so side-CRC and RTE events interleave in
/// the same stream. Event timestamps are OFDM symbol positions.
///
/// # Errors
///
/// Same as [`receive_carpool`].
pub fn receive_carpool_obs(
    samples: &[Complex64],
    station: MacAddress,
    estimation: Estimation,
    hashes: usize,
    side_channel: Option<SideChannelConfig>,
    obs: &carpool_obs::Obs,
) -> Result<CarpoolReception, FrameError> {
    let mut scratch = PhyScratch::default();
    receive_carpool_obs_with_scratch(
        samples,
        station,
        estimation,
        hashes,
        side_channel,
        obs,
        &mut scratch,
    )
}

/// [`receive_carpool_obs`] with a caller-owned [`PhyScratch`], the
/// allocation-free form for batch delivery: the scratch's decode
/// buffers, cached RX scatter maps, and Viterbi trellis are borrowed
/// for this frame and handed back (grown, never shrunk) on every exit
/// path, so a worker decoding frame after frame reuses them all.
/// Results are bit-identical to a fresh scratch — the workspace carries
/// capacity, never values (see the `carpool-par` determinism contract).
///
/// # Errors
///
/// Same as [`receive_carpool`].
#[allow(clippy::too_many_arguments)]
pub fn receive_carpool_obs_with_scratch(
    samples: &[Complex64],
    station: MacAddress,
    estimation: Estimation,
    hashes: usize,
    side_channel: Option<SideChannelConfig>,
    obs: &carpool_obs::Obs,
    scratch: &mut PhyScratch,
) -> Result<CarpoolReception, FrameError> {
    let _receive_span = obs.span("frame.receive");
    let mut decoder = FrameDecoder::new(samples, estimation)
        .map_err(FrameError::Phy)?
        .with_obs(obs.clone()) // lint:allow(hot-alloc): per-TXOP frame assembly, amortized by the TX waveform cache
        .with_scratch(std::mem::take(scratch));
    let result = walk_carpool_frame(&mut decoder, station, hashes, side_channel, obs);
    // Recover the workspace on success *and* error so a bad frame never
    // costs the worker its warmed buffers.
    *scratch = decoder.into_scratch();
    result
}

/// Frame walk shared by the scratch and non-scratch receive paths; the
/// caller owns the decoder so it can reclaim the scratch afterwards.
fn walk_carpool_frame(
    decoder: &mut FrameDecoder<'_>,
    station: MacAddress,
    hashes: usize,
    side_channel: Option<SideChannelConfig>,
    obs: &carpool_obs::Obs,
) -> Result<CarpoolReception, FrameError> {
    // 1. A-HDR.
    let ahdr_layout = SectionLayout {
        message_bits: BLOOM_BITS,
        mcs: Mcs::BPSK_1_2,
        scramble: false,
        side_channel: None,
        qbpsk: true,
    };
    let ahdr_section = decoder
        .decode_section(&ahdr_layout)
        .map_err(FrameError::Phy)?;
    let header =
        AggregationHeader::from_bits(&ahdr_section.bits, hashes).map_err(FrameError::Bloom)?;
    let matched_indices = header.matched_indices(station.as_bytes(), MAX_RECEIVERS);
    let mut symbols_decoded = ahdr_layout.symbol_count();
    let mut symbols_skipped = 0usize;

    if obs.enabled() {
        let matched = !matched_indices.is_empty();
        obs.counter(
            if matched {
                "frame.ahdr_match"
            } else {
                "frame.ahdr_miss"
            },
            1,
        );
        obs.emit(
            decoder.position() as f64,
            carpool_obs::Event::AhdrCheck {
                station: station_id(station),
                matched,
                expected: None,
            },
        );
        // Trace payload: low 48 bits = union of the Bloom positions the
        // station's matched hash sets probed, bits 48..56 = matched
        // subframe bitmap. Captures *which* filter bits drove the
        // membership decision, not just the verdict.
        let probe_union = matched_indices
            .iter()
            .fold(0u64, |m, &i| m | header.probe_mask(station.as_bytes(), i));
        let bitmap = matched_indices.iter().fold(0u64, |m, &i| m | (1 << i));
        obs.trace(
            carpool_obs::TraceKind::AhdrDecision,
            decoder.position() as f64 * SYMBOL_DURATION,
            station_id(station),
            (bitmap << BLOOM_BITS) | probe_union,
        );
    }

    // If nothing matches, the station drops the frame now.
    let Some(&last_matched) = matched_indices.last() else {
        let skipped = decoder.remaining_symbols();
        obs.counter("frame.symbols_skipped", skipped as u64);
        // Outcome payload b: bit 0 = delivered flag, upper bits = bytes.
        // An early A-HDR drop is b = 0.
        obs.trace(
            carpool_obs::TraceKind::StaOutcome,
            decoder.position() as f64 * SYMBOL_DURATION,
            station_id(station),
            0,
        );
        return Ok(CarpoolReception {
            matched_indices,
            subframes: Vec::new(), // lint:allow(hot-alloc): per-TXOP frame assembly, amortized by the TX waveform cache
            symbols_decoded,
            symbols_skipped: skipped,
        });
    };

    // 2. Walk subframes: decode every SIG, decode or skip each payload.
    let sig_layout = SectionLayout {
        message_bits: SIG_BITS,
        mcs: Mcs::BPSK_1_2,
        scramble: false,
        side_channel: None,
        qbpsk: false,
    };
    let mut subframes = Vec::new(); // lint:allow(hot-alloc): per-TXOP frame assembly, amortized by the TX waveform cache
    let mut index = 0usize;
    while index < MAX_RECEIVERS && decoder.remaining_symbols() >= sig_layout.symbol_count() {
        let sig_section = decoder
            .decode_section(&sig_layout)
            .map_err(FrameError::Phy)?;
        symbols_decoded += sig_layout.symbol_count();
        let sig = Sig::from_bits(&sig_section.bits)?;
        let payload_layout = SectionLayout {
            message_bits: sig.length_bytes as usize * 8,
            mcs: sig.mcs,
            scramble: true,
            side_channel,
            qbpsk: false,
        };
        let matched = matched_indices.contains(&index);
        let payload = if matched {
            let section = decoder
                .decode_section(&payload_layout)
                .map_err(FrameError::Phy)?;
            symbols_decoded += payload_layout.symbol_count();
            let bytes = bits_to_bytes(&section.bits);
            if obs.enabled() {
                obs.counter("frame.subframe_decoded", 1);
                obs.emit(
                    decoder.position() as f64,
                    carpool_obs::Event::SubframeAccept {
                        station: station_id(station),
                        bytes: bytes.len() as u64,
                    },
                );
                // Outcome payload b mirrors the early-drop site: bit 0 =
                // delivered, upper bits = payload length in bytes.
                obs.trace(
                    carpool_obs::TraceKind::StaOutcome,
                    decoder.position() as f64 * SYMBOL_DURATION,
                    station_id(station),
                    ((bytes.len() as u64) << 1) | 1,
                );
            }
            Some(bytes)
        } else {
            decoder
                .skip_section(&payload_layout)
                .map_err(FrameError::Phy)?;
            symbols_skipped += payload_layout.symbol_count();
            obs.counter("frame.subframe_skipped", 1);
            None
        };
        // lint:allow(hot-alloc): per-TXOP frame assembly, amortized by the TX waveform cache
        subframes.push(ReceivedSubframe {
            index,
            sig,
            payload,
        });
        // Paper: "After decoding its subframe, the receiver drops all
        // rear subframes."
        if index >= last_matched {
            symbols_skipped += decoder.remaining_symbols();
            break;
        }
        index += 1;
    }

    obs.counter("frame.symbols_decoded", symbols_decoded as u64);
    obs.counter("frame.symbols_skipped", symbols_skipped as u64);
    Ok(CarpoolReception {
        matched_indices,
        subframes,
        symbols_decoded,
        symbols_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta(k: u16) -> MacAddress {
        MacAddress::station(k)
    }

    fn build_frame(n: usize) -> CarpoolFrame {
        let subframes: Vec<Subframe> = (0..n)
            .map(|k| {
                Subframe::new(
                    sta(k as u16),
                    if k % 2 == 0 {
                        Mcs::QPSK_1_2
                    } else {
                        Mcs::QAM16_3_4
                    },
                    vec![(k as u8) ^ 0x5A; 120 + 40 * k],
                )
            })
            .collect();
        CarpoolFrame::new(subframes).unwrap()
    }

    #[test]
    fn every_receiver_gets_its_payload() {
        let frame = build_frame(4);
        let tx = frame.transmit().unwrap();
        for k in 0..4u16 {
            let rx = receive_carpool(
                &tx.samples,
                sta(k),
                Estimation::Standard,
                DEFAULT_HASHES,
                Some(SideChannelConfig::default()),
            )
            .unwrap();
            assert!(rx.matched_indices.contains(&(k as usize)), "sta {k}");
            let payload = rx.payload_at(k as usize).unwrap();
            assert_eq!(
                payload,
                &frame.subframes()[k as usize].payload[..],
                "sta {k}"
            );
        }
    }

    #[test]
    fn outsider_mostly_drops_without_payload_decoding() {
        let frame = build_frame(3);
        let tx = frame.transmit().unwrap();
        let rx = receive_carpool(
            &tx.samples,
            sta(999),
            Estimation::Standard,
            DEFAULT_HASHES,
            Some(SideChannelConfig::default()),
        )
        .unwrap();
        // With 3 receivers the FP chance is small; an outsider usually
        // matches nothing. Whatever happens, its own payload never
        // appears (no false negatives only applies to inserted items).
        for s in &rx.subframes {
            if let Some(p) = &s.payload {
                // False positive decode: payload belongs to someone else.
                assert_ne!(p.len(), 0);
            }
        }
        if rx.matched_indices.is_empty() {
            assert!(rx.subframes.is_empty());
            assert!(rx.symbols_skipped > 0);
        }
    }

    #[test]
    fn middle_receiver_skips_foreign_payloads() {
        let frame = build_frame(5);
        let tx = frame.transmit().unwrap();
        let rx = receive_carpool(
            &tx.samples,
            sta(2),
            Estimation::Standard,
            DEFAULT_HASHES,
            Some(SideChannelConfig::default()),
        )
        .unwrap();
        assert!(rx.payload_at(2).is_some());
        // It should have skipped symbols (subframes 0, 1 bodies at least,
        // minus any false-positive decodes) and dropped the tail.
        assert!(rx.symbols_skipped > 0, "no symbols skipped");
        // Symbols decoded strictly less than the whole frame.
        assert!(rx.symbols_decoded < tx.payload_symbols());
    }

    #[test]
    fn rte_estimation_also_decodes() {
        use carpool_phy::rte::CalibrationRule;
        let frame = build_frame(2);
        let tx = frame.transmit().unwrap();
        let rx = receive_carpool(
            &tx.samples,
            sta(1),
            Estimation::Rte(CalibrationRule::Average),
            DEFAULT_HASHES,
            Some(SideChannelConfig::default()),
        )
        .unwrap();
        assert_eq!(rx.payload_at(1).unwrap(), &frame.subframes()[1].payload[..]);
    }

    #[test]
    fn obs_traces_membership_and_subframe_outcomes() {
        use carpool_obs::{Event, MemoryRecorder, Obs, RingBufferSink};
        use std::sync::Arc;

        let frame = build_frame(3);
        let tx = frame.transmit().unwrap();
        let recorder = Arc::new(MemoryRecorder::new());
        let sink = Arc::new(RingBufferSink::new(4096));
        let obs = Obs::new(recorder.clone(), sink.clone());

        let rx = receive_carpool_obs(
            &tx.samples,
            sta(1),
            Estimation::Standard,
            DEFAULT_HASHES,
            Some(SideChannelConfig::default()),
            &obs,
        )
        .unwrap();
        assert!(rx.payload_at(1).is_some());

        let snap = recorder.snapshot();
        assert_eq!(snap.counter("frame.ahdr_match"), 1);
        assert!(snap.counter("frame.subframe_decoded") >= 1);
        assert!(snap.histogram("span.frame.receive").is_some());
        // PHY events flow through the same handle.
        assert!(snap.counter("phy.sections_decoded") > 0);

        let events = sink.events();
        let accepted: u64 = events
            .iter()
            .filter_map(|e| match e.event {
                Event::SubframeAccept { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum();
        assert_eq!(accepted, frame.subframes()[1].payload.len() as u64);
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::AhdrCheck { matched: true, .. })));
    }

    #[test]
    fn construction_validations() {
        assert!(matches!(CarpoolFrame::new(vec![]), Err(FrameError::Empty)));
        let too_many: Vec<Subframe> = (0..9)
            .map(|k| Subframe::new(sta(k), Mcs::BPSK_1_2, vec![1]))
            .collect();
        assert!(matches!(
            CarpoolFrame::new(too_many),
            Err(FrameError::TooManyReceivers { count: 9 })
        ));
        let empty_payload = vec![Subframe::new(sta(0), Mcs::BPSK_1_2, vec![])];
        assert!(CarpoolFrame::new(empty_payload).is_err());
    }

    #[test]
    fn specs_have_expected_structure() {
        let frame = build_frame(3);
        let specs = frame.to_specs();
        assert_eq!(specs.len(), 1 + 2 * 3);
        assert_eq!(specs[0].bits.len(), BLOOM_BITS);
        for k in 0..3 {
            assert_eq!(specs[1 + 2 * k].bits.len(), SIG_BITS);
            assert!(specs[2 + 2 * k].scramble);
        }
    }

    #[test]
    fn payload_bytes_sums_subframes() {
        let frame = build_frame(2);
        assert_eq!(frame.payload_bytes(), 120 + 160);
    }

    #[test]
    fn without_side_channel_still_works() {
        let subframes = vec![Subframe::new(sta(0), Mcs::QPSK_1_2, vec![9; 200])];
        let frame = CarpoolFrame::with_options(subframes, DEFAULT_HASHES, None).unwrap();
        let tx = frame.transmit().unwrap();
        let rx = receive_carpool(
            &tx.samples,
            sta(0),
            Estimation::Standard,
            DEFAULT_HASHES,
            None,
        )
        .unwrap();
        assert_eq!(rx.payload_at(0).unwrap(), &frame.subframes()[0].payload[..]);
    }
}
