#![warn(missing_docs)]
//! # carpool-frame — frame formats, aggregation and channel reservation
//!
//! Everything between raw PHY sections and the MAC state machine:
//!
//! * [`addr`] — MAC addressing for simulated stations and APs.
//! * [`mac_frame`] — MPDUs with FCS and A-MPDU bundling.
//! * [`sig`] — per-subframe SIG fields (MCS + length) that let stations
//!   skip foreign subframes.
//! * [`carpool`] — assembly and station-side parsing of Carpool frames
//!   (A-HDR + subframes, paper Fig. 4), on top of `carpool-phy`.
//! * [`aggregation`] — the frame-selection policies compared in the
//!   paper: legacy 802.11, A-MPDU and multi-user aggregation.
//! * [`airtime`] — Table 2 timing parameters and airtime arithmetic.
//! * [`nav`] — sequential-ACK and RTS/CTS NAV equations (Eqs. 1–2).
//!
//! # Examples
//!
//! ```
//! use carpool_frame::addr::MacAddress;
//! use carpool_frame::carpool::{receive_carpool, CarpoolFrame, Subframe};
//! use carpool_phy::mcs::Mcs;
//! use carpool_phy::rx::Estimation;
//! use carpool_phy::tx::SideChannelConfig;
//!
//! # fn main() -> Result<(), carpool_frame::FrameError> {
//! let frame = CarpoolFrame::new(vec![
//!     Subframe::new(MacAddress::station(1), Mcs::QPSK_1_2, vec![0xAB; 200]),
//!     Subframe::new(MacAddress::station(2), Mcs::QAM16_3_4, vec![0xCD; 400]),
//! ])?;
//! let tx = frame.transmit()?;
//! let rx = receive_carpool(
//!     &tx.samples,
//!     MacAddress::station(2),
//!     Estimation::Standard,
//!     carpool_bloom::DEFAULT_HASHES,
//!     Some(SideChannelConfig::default()),
//! )?;
//! assert_eq!(rx.payload_at(1).unwrap(), &[0xCD; 400][..]);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod aggregation;
pub mod airtime;
pub mod carpool;
pub mod coexist;
pub mod mac_frame;
pub mod mimo;
pub mod nav;
pub mod sig;

use carpool_bloom::BloomError;
use carpool_phy::PhyError;

/// Errors produced by framing and parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// A SIG field failed validation.
    BadSig {
        /// Human-readable reason.
        reason: String,
    },
    /// A frame check sequence did not match.
    BadFcs,
    /// A structurally invalid frame or bundle.
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
    /// More receivers than a Carpool frame supports.
    TooManyReceivers {
        /// Receivers requested.
        count: usize,
    },
    /// An empty frame was requested.
    Empty,
    /// An underlying PHY error.
    Phy(PhyError),
    /// An underlying Bloom filter error.
    Bloom(BloomError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadSig { reason } => write!(f, "bad SIG field: {reason}"),
            FrameError::BadFcs => f.write_str("frame check sequence mismatch"),
            FrameError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            FrameError::TooManyReceivers { count } => {
                write!(
                    f,
                    "{count} receivers exceed the Carpool limit of {}",
                    carpool_bloom::MAX_RECEIVERS
                )
            }
            FrameError::Empty => f.write_str("frame has no subframes"),
            FrameError::Phy(e) => write!(f, "phy error: {e}"),
            FrameError::Bloom(e) => write!(f, "aggregation header error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Phy(e) => Some(e),
            FrameError::Bloom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhyError> for FrameError {
    fn from(e: PhyError) -> FrameError {
        FrameError::Phy(e)
    }
}

impl From<BloomError> for FrameError {
    fn from(e: BloomError) -> FrameError {
        FrameError::Bloom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = FrameError::TooManyReceivers { count: 12 };
        assert!(e.to_string().contains("12"));
        let p = FrameError::Phy(PhyError::EmptyFrame);
        assert!(std::error::Error::source(&p).is_some());
        assert!(std::error::Error::source(&FrameError::BadFcs).is_none());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameError>();
    }
}
