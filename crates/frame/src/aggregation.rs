//! Aggregation policies: which queued frames ride in the next TXOP.
//!
//! The policies compared in the paper's MAC evaluation (Section 7.2):
//!
//! * [`AggregationPolicy::None`] — plain IEEE 802.11: one frame per
//!   channel access.
//! * [`AggregationPolicy::Ampdu`] — IEEE 802.11n A-MPDU: aggregate
//!   queued frames *for one destination* (the head-of-line one).
//! * [`AggregationPolicy::MultiUser`] — MU-Aggregation / Carpool:
//!   aggregate across up to 8 destinations; Carpool additionally applies
//!   RTE at the PHY, which the MAC simulator models via its error
//!   traces, so both share this selection logic.
//!
//! "The aggregation process is ended when the size of the buffered
//! frames reaches the maximum frame size or the delay of the oldest
//! frame reaches the maximum latency limit" (Section 7.2.2); selection
//! is FIFO within and across destinations, matching the paper's
//! first-in-first-out service discipline (Section 8, Fairness).

use crate::addr::MacAddress;
use carpool_bloom::MAX_RECEIVERS;

/// A frame waiting in a downlink queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedFrame {
    /// Destination station.
    pub dest: MacAddress,
    /// MAC payload size in bytes.
    pub bytes: usize,
    /// Time the frame entered the queue, seconds.
    pub enqueue_time: f64,
}

/// Limits ending the aggregation process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationLimits {
    /// Maximum aggregate payload size in bytes (64 KB in 802.11n).
    pub max_bytes: usize,
    /// Maximum number of distinct receivers (8 for Carpool).
    pub max_receivers: usize,
    /// Maximum number of frames aggregated per receiver.
    pub max_frames_per_receiver: usize,
}

impl Default for AggregationLimits {
    fn default() -> Self {
        AggregationLimits {
            max_bytes: 65_535,
            max_receivers: MAX_RECEIVERS,
            max_frames_per_receiver: 64,
        }
    }
}

/// Aggregation policy of a transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregationPolicy {
    /// One frame per transmission (legacy IEEE 802.11).
    #[default]
    None,
    /// Single-destination MAC aggregation (IEEE 802.11n A-MPDU).
    Ampdu,
    /// Multi-destination aggregation (MU-Aggregation and Carpool).
    MultiUser,
}

/// The outcome of a selection: per-receiver groups of queue indices, in
/// subframe order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
// lint:allow(dead-api): appears in pub signatures; callers use it structurally without naming the type
pub struct Selection {
    /// For each receiver (subframe), the indices into the queue slice.
    pub groups: Vec<(MacAddress, Vec<usize>)>,
}

impl Selection {
    /// Total frames selected.
    pub fn frame_count(&self) -> usize {
        self.groups.iter().map(|(_, v)| v.len()).sum()
    }

    /// Number of receivers (subframes).
    pub fn receiver_count(&self) -> usize {
        self.groups.len()
    }

    /// All selected queue indices in ascending order.
    pub fn indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .groups
            .iter()
            .flat_map(|(_, g)| g.iter().copied())
            .collect();
        v.sort_unstable();
        v
    }

    /// `true` if nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Reusable buffers for [`select_into`]: the [`Selection`] being built
/// plus a pool of spare per-receiver index vectors recycled from the
/// previous call, so steady-state selection does no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct SelectionScratch {
    selection: Selection,
    spare: Vec<Vec<usize>>,
}

impl SelectionScratch {
    /// Runs [`select_into`] against the scratch and returns the result.
    pub fn select(
        &mut self,
        policy: AggregationPolicy,
        queue: &[QueuedFrame],
        limits: &AggregationLimits,
    ) -> &Selection {
        select_into(policy, queue, limits, self);
        &self.selection
    }

    /// The selection produced by the last [`SelectionScratch::select`].
    pub fn last(&self) -> &Selection {
        &self.selection
    }

    /// Pops a recycled group vector (cleared) or makes a fresh one.
    fn take_group(&mut self) -> Vec<usize> {
        self.spare.pop().unwrap_or_default()
    }
}

/// Selects frames from `queue` (FIFO order) under `limits` according to
/// `policy`.
///
/// Returns an empty selection for an empty queue. The head-of-line frame
/// is always selected if present (even if it alone exceeds `max_bytes`,
/// it must eventually be served).
pub fn select(
    policy: AggregationPolicy,
    queue: &[QueuedFrame],
    limits: &AggregationLimits,
) -> Selection {
    let mut scratch = SelectionScratch::default();
    select_into(policy, queue, limits, &mut scratch);
    scratch.selection
}

/// Allocation-free form of [`select`]: builds the selection inside
/// `scratch`, recycling its group buffers from the previous TXOP.
/// Identical output to [`select`] (which delegates here).
pub(crate) fn select_into(
    policy: AggregationPolicy,
    queue: &[QueuedFrame],
    limits: &AggregationLimits,
    scratch: &mut SelectionScratch,
) {
    let SelectionScratch { selection, spare } = &mut *scratch;
    while let Some((_, mut group)) = selection.groups.pop() {
        group.clear();
        spare.push(group); // lint:allow(hot-alloc): recycling pool, bounded by max receivers
    }
    let Some(head) = queue.first() else {
        return;
    };
    match policy {
        AggregationPolicy::None => {
            let mut group = scratch.take_group();
            group.push(0); // lint:allow(hot-alloc): recycled group buffer, bounded by queue depth
            scratch.selection.groups.push((head.dest, group)); // lint:allow(hot-alloc): recycled group buffer, bounded by max receivers
        }
        AggregationPolicy::Ampdu => {
            let mut indices = scratch.take_group();
            let mut bytes = 0usize;
            for (k, f) in queue.iter().enumerate() {
                if f.dest != head.dest {
                    continue;
                }
                if !indices.is_empty()
                    && (bytes + f.bytes > limits.max_bytes
                        || indices.len() >= limits.max_frames_per_receiver)
                {
                    break;
                }
                bytes += f.bytes;
                indices.push(k); // lint:allow(hot-alloc): recycled group buffer, bounded by queue depth
            }
            scratch.selection.groups.push((head.dest, indices)); // lint:allow(hot-alloc): recycled group buffer, bounded by max receivers
        }
        AggregationPolicy::MultiUser => {
            let mut bytes = 0usize;
            let max_receivers = limits.max_receivers.min(MAX_RECEIVERS);
            for (k, f) in queue.iter().enumerate() {
                let groups = &mut scratch.selection.groups;
                let existing = groups.iter_mut().position(|(d, _)| *d == f.dest);
                let first = k == 0;
                if !first && bytes + f.bytes > limits.max_bytes {
                    break;
                }
                match existing {
                    Some(g) => {
                        if scratch.selection.groups[g].1.len() >= limits.max_frames_per_receiver {
                            continue;
                        }
                        scratch.selection.groups[g].1.push(k); // lint:allow(hot-alloc): recycled group buffer, bounded by queue depth
                    }
                    None => {
                        if scratch.selection.groups.len() >= max_receivers {
                            continue;
                        }
                        let mut group = scratch.take_group();
                        group.push(k); // lint:allow(hot-alloc): recycled group buffer, bounded by queue depth
                        scratch.selection.groups.push((f.dest, group)); // lint:allow(hot-alloc): recycled group buffer, bounded by max receivers
                    }
                }
                bytes += f.bytes;
            }
        }
    }
}

/// Whether the oldest queued frame has exceeded its latency bound at
/// time `now` — the trigger that ends aggregation early (Section 7.2.2).
#[cfg(test)]
fn deadline_reached(queue: &[QueuedFrame], now: f64, max_latency: f64) -> bool {
    queue
        .first()
        .map(|f| now - f.enqueue_time >= max_latency)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(dest: u16, bytes: usize, t: f64) -> QueuedFrame {
        QueuedFrame {
            dest: MacAddress::station(dest),
            bytes,
            enqueue_time: t,
        }
    }

    #[test]
    fn empty_queue_selects_nothing() {
        for policy in [
            AggregationPolicy::None,
            AggregationPolicy::Ampdu,
            AggregationPolicy::MultiUser,
        ] {
            assert!(select(policy, &[], &AggregationLimits::default()).is_empty());
        }
    }

    #[test]
    fn legacy_takes_only_head() {
        let queue = [q(1, 100, 0.0), q(1, 100, 0.1), q(2, 100, 0.2)];
        let sel = select(
            AggregationPolicy::None,
            &queue,
            &AggregationLimits::default(),
        );
        assert_eq!(sel.frame_count(), 1);
        assert_eq!(sel.indices(), vec![0]);
    }

    #[test]
    fn ampdu_aggregates_only_head_destination() {
        let queue = [
            q(1, 100, 0.0),
            q(2, 100, 0.1),
            q(1, 100, 0.2),
            q(3, 100, 0.3),
            q(1, 100, 0.4),
        ];
        let sel = select(
            AggregationPolicy::Ampdu,
            &queue,
            &AggregationLimits::default(),
        );
        assert_eq!(sel.receiver_count(), 1);
        assert_eq!(sel.indices(), vec![0, 2, 4]);
    }

    #[test]
    fn multi_user_spans_destinations_in_fifo_order() {
        let queue = [
            q(1, 100, 0.0),
            q(2, 100, 0.1),
            q(1, 100, 0.2),
            q(3, 100, 0.3),
        ];
        let sel = select(
            AggregationPolicy::MultiUser,
            &queue,
            &AggregationLimits::default(),
        );
        assert_eq!(sel.receiver_count(), 3);
        assert_eq!(sel.frame_count(), 4);
        // Subframe order follows first appearance.
        assert_eq!(sel.groups[0].0, MacAddress::station(1));
        assert_eq!(sel.groups[1].0, MacAddress::station(2));
        assert_eq!(sel.groups[2].0, MacAddress::station(3));
    }

    #[test]
    fn byte_limit_ends_aggregation() {
        let queue = [q(1, 400, 0.0), q(2, 400, 0.1), q(3, 400, 0.2)];
        let limits = AggregationLimits {
            max_bytes: 900,
            ..Default::default()
        };
        let sel = select(AggregationPolicy::MultiUser, &queue, &limits);
        assert_eq!(sel.frame_count(), 2);
    }

    #[test]
    fn head_of_line_always_served_even_if_oversized() {
        let queue = [q(1, 100_000, 0.0)];
        let limits = AggregationLimits {
            max_bytes: 1500,
            ..Default::default()
        };
        for policy in [
            AggregationPolicy::None,
            AggregationPolicy::Ampdu,
            AggregationPolicy::MultiUser,
        ] {
            assert_eq!(select(policy, &queue, &limits).frame_count(), 1);
        }
    }

    #[test]
    fn receiver_limit_respected() {
        let queue: Vec<QueuedFrame> = (0..12).map(|k| q(k, 100, k as f64)).collect();
        let sel = select(
            AggregationPolicy::MultiUser,
            &queue,
            &AggregationLimits::default(),
        );
        assert_eq!(sel.receiver_count(), MAX_RECEIVERS);
        // The overflow destinations are left queued.
        assert_eq!(sel.frame_count(), MAX_RECEIVERS);
    }

    #[test]
    fn per_receiver_frame_cap() {
        let queue: Vec<QueuedFrame> = (0..10).map(|k| q(1, 50, k as f64)).collect();
        let limits = AggregationLimits {
            max_frames_per_receiver: 4,
            ..Default::default()
        };
        let sel = select(AggregationPolicy::Ampdu, &queue, &limits);
        assert_eq!(sel.frame_count(), 4);
    }

    #[test]
    fn select_into_matches_select_across_scratch_reuse() {
        let queues: [&[QueuedFrame]; 4] = [
            &[],
            &[q(1, 100, 0.0), q(1, 100, 0.1), q(2, 100, 0.2)],
            &[
                q(3, 400, 0.0),
                q(2, 400, 0.1),
                q(3, 400, 0.2),
                q(1, 50, 0.3),
            ],
            &[q(1, 100_000, 0.0)],
        ];
        let limits = AggregationLimits {
            max_bytes: 900,
            max_frames_per_receiver: 2,
            ..Default::default()
        };
        let mut scratch = SelectionScratch::default();
        for _ in 0..3 {
            for queue in queues {
                for policy in [
                    AggregationPolicy::None,
                    AggregationPolicy::Ampdu,
                    AggregationPolicy::MultiUser,
                ] {
                    let expect = select(policy, queue, &limits);
                    let got = scratch.select(policy, queue, &limits);
                    assert_eq!(*got, expect, "{policy:?}");
                    assert_eq!(*scratch.last(), expect);
                }
            }
        }
    }

    #[test]
    fn deadline_detection() {
        let queue = [q(1, 100, 1.0)];
        assert!(!deadline_reached(&queue, 1.005, 0.01));
        assert!(deadline_reached(&queue, 1.02, 0.01));
        assert!(!deadline_reached(&[], 99.0, 0.01));
    }
}
