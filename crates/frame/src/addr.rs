//! MAC addressing.

/// A 48-bit IEEE 802 MAC address.
///
/// # Examples
///
/// ```
/// use carpool_frame::addr::MacAddress;
///
/// let sta = MacAddress::new([0x02, 0, 0, 0, 0, 0x2A]);
/// assert_eq!(sta.to_string(), "02:00:00:00:00:2a");
/// assert_eq!(MacAddress::station(42), sta);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddress([u8; 6]);

impl MacAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddress = MacAddress([0xFF; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> MacAddress {
        MacAddress(octets)
    }

    /// A locally-administered address for simulated station `id`
    /// (`02:00:00:00:hh:ll`).
    pub fn station(id: u16) -> MacAddress {
        let [hi, lo] = id.to_be_bytes();
        MacAddress([0x02, 0, 0, 0, hi, lo])
    }

    /// A locally-administered address for simulated AP `id`
    /// (`02:AP:00:00:hh:ll`).
    pub fn access_point(id: u16) -> MacAddress {
        let [hi, lo] = id.to_be_bytes();
        MacAddress([0x02, 0xA9, 0, 0, hi, lo])
    }

    /// The raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Byte-slice view (for hashing into the A-HDR Bloom filter).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddress::BROADCAST
    }
}

impl AsRef<[u8]> for MacAddress {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 6]> for MacAddress {
    fn from(octets: [u8; 6]) -> MacAddress {
        MacAddress(octets)
    }
}

impl std::fmt::Display for MacAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_addresses_are_distinct() {
        let set: std::collections::HashSet<MacAddress> =
            (0..1000).map(MacAddress::station).collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn ap_and_station_namespaces_disjoint() {
        for id in 0..100 {
            assert_ne!(MacAddress::station(id), MacAddress::access_point(id));
        }
    }

    #[test]
    fn broadcast_detection() {
        assert!(MacAddress::BROADCAST.is_broadcast());
        assert!(!MacAddress::station(1).is_broadcast());
    }

    #[test]
    fn display_format() {
        let a = MacAddress::new([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
        assert_eq!(a.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn conversion_round_trip() {
        let raw = [1, 2, 3, 4, 5, 6];
        let a: MacAddress = raw.into();
        assert_eq!(a.octets(), raw);
        assert_eq!(a.as_ref(), &raw);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(MacAddress::station(1) < MacAddress::station(2));
    }
}
