//! Backward compatibility with legacy 802.11 nodes (paper Section 4.3).
//!
//! Carpool must coexist with legacy stations: "Carpool nodes can easily
//! recognize Carpool frames and legacy frames by decoding A-HDR at PHY.
//! On the other hand, legacy nodes do not support the PLCP of Carpool
//! frames, and therefore cannot decode Carpool frames at PHY."
//!
//! The implementation uses the classic 802.11 format-detection trick:
//! the Carpool A-HDR is transmitted QBPSK (data subcarriers rotated
//! 90°), while a legacy PPDU starts with a real-axis BPSK SIG. One
//! look at the first post-preamble symbol's constellation classifies
//! the frame.

use crate::sig::Sig;
#[cfg(test)]
use crate::sig::SIG_BITS;
use crate::FrameError;
#[cfg(test)]
use carpool_phy::bits::bits_to_bytes;
use carpool_phy::bits::bytes_to_bits;
use carpool_phy::math::Complex64;
use carpool_phy::mcs::Mcs;
#[cfg(test)]
use carpool_phy::rx::SectionLayout;
use carpool_phy::rx::{Estimation, FrameDecoder};
use carpool_phy::tx::{transmit, SectionSpec, TxFrame};

/// PPDU format classes distinguishable at the first payload symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameClass {
    /// A Carpool aggregate (QBPSK A-HDR right after the preamble).
    Carpool,
    /// A legacy single-receiver PPDU (real-axis SIG first).
    Legacy,
}

/// Classifies a received PPDU by the constellation axis of its first
/// post-preamble symbol.
///
/// # Errors
///
/// Propagates PHY errors for buffers too short to hold a preamble and
/// one symbol.
pub fn classify(samples: &[Complex64]) -> Result<FrameClass, FrameError> {
    let decoder = FrameDecoder::new(samples, Estimation::Standard).map_err(FrameError::Phy)?;
    if decoder.peek_is_qbpsk().map_err(FrameError::Phy)? {
        Ok(FrameClass::Carpool)
    } else {
        Ok(FrameClass::Legacy)
    }
}

/// A legacy (single-receiver, non-Carpool) PPDU: `[preamble][SIG][payload]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyFrame {
    /// Payload MCS.
    pub mcs: Mcs,
    /// MAC payload bytes.
    pub payload: Vec<u8>,
}

impl LegacyFrame {
    /// Creates a legacy frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Malformed`] for empty or oversized payloads.
    pub fn new(mcs: Mcs, payload: Vec<u8>) -> Result<LegacyFrame, FrameError> {
        if payload.is_empty() || payload.len() > u16::MAX as usize {
            return Err(FrameError::Malformed {
                reason: format!("payload of {} bytes unsupported", payload.len()),
            });
        }
        Ok(LegacyFrame { mcs, payload })
    }

    /// PHY sections: a real-axis SIG, then the payload (no side channel
    /// — legacy transmitters do not inject phase offsets).
    pub fn to_specs(&self) -> Vec<SectionSpec> {
        let sig = Sig::new(self.mcs, self.payload.len() as u16);
        vec![
            SectionSpec::header(sig.to_bits()),
            SectionSpec::payload_legacy(bytes_to_bits(&self.payload), self.mcs),
        ]
    }

    /// Modulates to baseband samples.
    ///
    /// # Errors
    ///
    /// Propagates PHY errors.
    pub fn transmit(&self) -> Result<TxFrame, FrameError> {
        transmit(&self.to_specs()).map_err(FrameError::Phy)
    }
}

/// Legacy-receiver processing: parse the SIG, decode the payload.
/// Works on both legacy stations and Carpool stations serving legacy
/// traffic (a Carpool node "runs the corresponding version of protocol
/// supported by the client").
///
/// # Errors
///
/// * [`FrameError::BadSig`] if the SIG fails validation — which is the
///   normal outcome when a legacy node hears a Carpool PPDU.
/// * [`FrameError::Phy`] for malformed buffers.
#[cfg(test)]
fn receive_legacy(samples: &[Complex64]) -> Result<Vec<u8>, FrameError> {
    let mut decoder = FrameDecoder::new(samples, Estimation::Standard).map_err(FrameError::Phy)?;
    let sig_layout = SectionLayout {
        message_bits: SIG_BITS,
        mcs: Mcs::BPSK_1_2,
        scramble: false,
        side_channel: None,
        qbpsk: false,
    };
    let sig_section = decoder
        .decode_section(&sig_layout)
        .map_err(FrameError::Phy)?;
    let sig = Sig::from_bits(&sig_section.bits)?;
    let payload_layout = SectionLayout {
        message_bits: sig.length_bytes as usize * 8,
        mcs: sig.mcs,
        scramble: true,
        side_channel: None,
        qbpsk: false,
    };
    let section = decoder
        .decode_section(&payload_layout)
        .map_err(FrameError::Phy)?;
    Ok(bits_to_bytes(&section.bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddress;
    use crate::carpool::{CarpoolFrame, Subframe};

    fn carpool_samples() -> Vec<Complex64> {
        let frame = CarpoolFrame::new(vec![
            Subframe::new(MacAddress::station(1), Mcs::QPSK_1_2, vec![0xAA; 150]),
            Subframe::new(MacAddress::station(2), Mcs::QAM16_1_2, vec![0xBB; 150]),
        ])
        .expect("two receivers");
        frame.transmit().expect("modulates").samples
    }

    #[test]
    fn legacy_frame_round_trip() {
        let frame = LegacyFrame::new(Mcs::QAM16_3_4, vec![0x5A; 700]).unwrap();
        let tx = frame.transmit().unwrap();
        assert_eq!(receive_legacy(&tx.samples).unwrap(), frame.payload);
    }

    #[test]
    fn classification_separates_the_formats() {
        let legacy = LegacyFrame::new(Mcs::QPSK_1_2, vec![1; 100])
            .unwrap()
            .transmit()
            .unwrap();
        assert_eq!(classify(&legacy.samples).unwrap(), FrameClass::Legacy);
        assert_eq!(classify(&carpool_samples()).unwrap(), FrameClass::Carpool);
    }

    #[test]
    fn legacy_node_cannot_parse_a_carpool_ppdu() {
        // "Legacy nodes do not support the PLCP of Carpool frames": the
        // A-HDR is not a valid SIG (QBPSK axis + parity), so a legacy
        // receive attempt errors out instead of mis-decoding.
        let err = receive_legacy(&carpool_samples());
        assert!(err.is_err(), "legacy parse should fail: {err:?}");
    }

    #[test]
    fn classification_is_noise_robust() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let legacy = LegacyFrame::new(Mcs::QPSK_1_2, vec![7; 200])
            .unwrap()
            .transmit()
            .unwrap();
        let carpool = carpool_samples();
        // ~13 dB SNR relative to the OFDM signal power (~0.0127).
        let noise_amp = 0.025f64;
        for (samples, expect) in [
            (&legacy.samples, FrameClass::Legacy),
            (&carpool, FrameClass::Carpool),
        ] {
            let noisy: Vec<Complex64> = samples
                .iter()
                .map(|s| {
                    *s + Complex64::new(
                        (rng.gen::<f64>() - 0.5) * noise_amp,
                        (rng.gen::<f64>() - 0.5) * noise_amp,
                    )
                })
                .collect();
            assert_eq!(classify(&noisy).unwrap(), expect);
        }
    }

    #[test]
    fn oversized_legacy_payload_rejected() {
        assert!(LegacyFrame::new(Mcs::BPSK_1_2, vec![]).is_err());
        assert!(LegacyFrame::new(Mcs::BPSK_1_2, vec![0; 70_000]).is_err());
    }
}
