//! Carpool over MU-MIMO (paper Section 8, Fig. 18).
//!
//! IEEE 802.11ac MU-MIMO serves at most as many receivers per
//! transmission as the AP has antennas — not enough for the scores of
//! stations in a public WLAN. Carpool extends it: several *precoding
//! groups* (each up to the antenna count) ride in one transmission,
//! sharing a single legacy preamble and A-HDR. Group `g`'s streams are
//! precoded with the channel of its own receivers and carry their VHT
//! preamble mid-frame (Fig. 18(b)); the A-HDR indexes receivers by
//! *group*, so every station knows when its group starts.
//!
//! This module models the scheme at the frame/airtime level: stream
//! layout, the shared A-HDR, and the airtime comparison against plain
//! MU-MIMO (which pays preamble + contention per group).

use crate::addr::MacAddress;
use crate::airtime::{ack_airtime, ahdr_airtime, sig_airtime, PLCP_OVERHEAD, SIFS};
use crate::FrameError;
use carpool_bloom::{AggregationHeader, DEFAULT_HASHES, MAX_RECEIVERS};
use carpool_phy::mcs::Mcs;

/// Airtime of one VHT (per-group) preamble: VHT-SIG plus one VHT-LTF per
/// spatial stream, approximated at one OFDM symbol each.
pub(crate) fn vht_preamble_airtime(streams: usize) -> f64 {
    use carpool_phy::mcs::SYMBOL_DURATION;
    (1 + streams) as f64 * SYMBOL_DURATION
}

/// One spatial payload inside a precoding group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MimoSubframe {
    /// Destination station.
    pub receiver: MacAddress,
    /// Payload bytes on this stream.
    pub bytes: usize,
    /// Per-stream MCS.
    pub mcs: Mcs,
}

impl MimoSubframe {
    /// Creates a stream payload descriptor.
    pub fn new(receiver: MacAddress, bytes: usize, mcs: Mcs) -> MimoSubframe {
        MimoSubframe {
            receiver,
            bytes,
            mcs,
        }
    }

    fn airtime(&self) -> f64 {
        sig_airtime() + self.mcs.airtime_for_bits(self.bytes * 8)
    }
}

/// A Carpool MU-MIMO aggregate: precoding groups transmitted back to
/// back inside one channel access.
#[derive(Debug, Clone, PartialEq)]
pub struct MimoCarpoolFrame {
    streams: usize,
    groups: Vec<Vec<MimoSubframe>>,
}

impl MimoCarpoolFrame {
    /// Builds a frame for an AP with `streams` antennas.
    ///
    /// # Errors
    ///
    /// * [`FrameError::Empty`] if there are no groups or an empty group.
    /// * [`FrameError::TooManyReceivers`] if a group exceeds `streams`
    ///   receivers or the total exceeds [`MAX_RECEIVERS`].
    /// * [`FrameError::Malformed`] if `streams` is zero or a receiver
    ///   repeats within a group (one stream per receiver).
    pub fn new(
        streams: usize,
        groups: Vec<Vec<MimoSubframe>>,
    ) -> Result<MimoCarpoolFrame, FrameError> {
        if streams == 0 {
            return Err(FrameError::Malformed {
                reason: "need at least one spatial stream".to_string(),
            });
        }
        if groups.is_empty() || groups.iter().any(|g| g.is_empty()) {
            return Err(FrameError::Empty);
        }
        let total: usize = groups.iter().map(|g| g.len()).sum();
        if total > MAX_RECEIVERS {
            return Err(FrameError::TooManyReceivers { count: total });
        }
        for g in &groups {
            if g.len() > streams {
                return Err(FrameError::TooManyReceivers { count: g.len() });
            }
            for (i, a) in g.iter().enumerate() {
                if g[..i].iter().any(|b| b.receiver == a.receiver) {
                    return Err(FrameError::Malformed {
                        reason: format!("receiver {} repeated in a group", a.receiver),
                    });
                }
            }
        }
        Ok(MimoCarpoolFrame { streams, groups })
    }

    /// Greedily packs subframes into groups of up to `streams` receivers
    /// in arrival order.
    ///
    /// # Errors
    ///
    /// See [`MimoCarpoolFrame::new`].
    pub fn pack(
        streams: usize,
        subframes: Vec<MimoSubframe>,
    ) -> Result<MimoCarpoolFrame, FrameError> {
        if streams == 0 {
            return Err(FrameError::Malformed {
                reason: "need at least one spatial stream".to_string(),
            });
        }
        let mut groups: Vec<Vec<MimoSubframe>> = Vec::new();
        for sf in subframes {
            match groups.last_mut() {
                Some(g) if g.len() < streams && !g.iter().any(|b| b.receiver == sf.receiver) => {
                    g.push(sf)
                }
                _ => groups.push(vec![sf]),
            }
        }
        MimoCarpoolFrame::new(streams, groups)
    }

    /// Spatial streams of the transmitter.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// The precoding groups in transmission order.
    pub fn groups(&self) -> &[Vec<MimoSubframe>] {
        &self.groups
    }

    /// Total receivers across groups.
    pub fn receiver_count(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// The shared A-HDR: receivers of group `g` are inserted with group
    /// index `g` (paper: "the indices of A,B are 1, and the indices of
    /// C,D are 2" — zero-based here).
    pub fn header(&self) -> AggregationHeader {
        let mut hdr = AggregationHeader::new(DEFAULT_HASHES);
        for (g, group) in self.groups.iter().enumerate() {
            for sf in group {
                hdr.insert(sf.receiver.as_bytes(), g);
            }
        }
        hdr
    }

    /// Duration of one group: its VHT preamble plus its *longest* stream
    /// (streams are parallel in space, so the slowest pads the group).
    pub fn group_airtime(&self, group: usize) -> f64 {
        let g = &self.groups[group];
        let payload = g.iter().map(MimoSubframe::airtime).fold(0.0f64, f64::max);
        vht_preamble_airtime(self.streams) + payload
    }

    /// Airtime of the whole aggregate: one legacy preamble + A-HDR, then
    /// the groups back to back (Fig. 18(b)).
    pub fn data_airtime(&self) -> f64 {
        PLCP_OVERHEAD
            + ahdr_airtime()
            + (0..self.groups.len())
                .map(|g| self.group_airtime(g))
                .sum::<f64>()
    }

    /// Complete exchange time including one sequential ACK per receiver.
    pub fn exchange_airtime(&self) -> f64 {
        self.data_airtime() + self.receiver_count() as f64 * (SIFS + ack_airtime())
    }

    /// Airtime the *same* payloads would need under plain 802.11ac
    /// MU-MIMO: one full transmission (preamble + VHT preamble + ACKs)
    /// per group — the comparison of paper Fig. 18(a). Contention and
    /// backoff costs per extra access come on top in a loaded cell.
    pub fn plain_mu_mimo_airtime(&self) -> f64 {
        (0..self.groups.len())
            .map(|g| {
                PLCP_OVERHEAD
                    + self.group_airtime(g)
                    + self.groups[g].len() as f64 * (SIFS + ack_airtime())
            })
            .sum()
    }

    /// Channel accesses saved versus plain MU-MIMO.
    pub fn accesses_saved(&self) -> usize {
        self.groups.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta(k: u16) -> MacAddress {
        MacAddress::station(k)
    }

    fn sf(k: u16, bytes: usize) -> MimoSubframe {
        MimoSubframe::new(sta(k), bytes, Mcs::QAM16_1_2)
    }

    fn paper_example() -> MimoCarpoolFrame {
        // Fig. 18: a two-antenna AP, four data streams for four STAs in
        // two precoding groups: (A, B) then (C, D).
        MimoCarpoolFrame::new(
            2,
            vec![vec![sf(0, 800), sf(1, 600)], vec![sf(2, 700), sf(3, 900)]],
        )
        .expect("valid grouping")
    }

    #[test]
    fn paper_figure18_grouping() {
        let frame = paper_example();
        assert_eq!(frame.streams(), 2);
        assert_eq!(frame.groups().len(), 2);
        assert_eq!(frame.receiver_count(), 4);
        assert_eq!(frame.accesses_saved(), 1);
    }

    #[test]
    fn header_indexes_by_group() {
        let frame = paper_example();
        let hdr = frame.header();
        // A and B match group 0; C and D match group 1.
        assert!(hdr.query(sta(0).as_bytes(), 0));
        assert!(hdr.query(sta(1).as_bytes(), 0));
        assert!(hdr.query(sta(2).as_bytes(), 1));
        assert!(hdr.query(sta(3).as_bytes(), 1));
    }

    #[test]
    fn aggregate_beats_plain_mu_mimo() {
        let frame = paper_example();
        assert!(
            frame.exchange_airtime() < frame.plain_mu_mimo_airtime(),
            "carpool {} vs plain {}",
            frame.exchange_airtime(),
            frame.plain_mu_mimo_airtime()
        );
    }

    #[test]
    fn group_airtime_is_bounded_by_slowest_stream() {
        let frame = MimoCarpoolFrame::new(2, vec![vec![sf(0, 100), sf(1, 1500)]]).unwrap();
        let solo_slow = MimoCarpoolFrame::new(2, vec![vec![sf(1, 1500)]]).unwrap();
        assert!((frame.group_airtime(0) - solo_slow.group_airtime(0)).abs() < 1e-12);
    }

    #[test]
    fn pack_fills_groups_in_order() {
        let frame = MimoCarpoolFrame::pack(
            2,
            vec![sf(0, 100), sf(1, 100), sf(2, 100), sf(3, 100), sf(4, 100)],
        )
        .unwrap();
        let sizes: Vec<usize> = frame.groups().iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn pack_splits_duplicate_receiver() {
        // One stream per receiver per group: a repeat opens a new group.
        let frame = MimoCarpoolFrame::pack(2, vec![sf(0, 100), sf(0, 200), sf(1, 100)]).unwrap();
        assert_eq!(frame.groups().len(), 2);
        assert_eq!(frame.groups()[0].len(), 1);
        assert_eq!(frame.groups()[1].len(), 2);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            MimoCarpoolFrame::new(0, vec![vec![sf(0, 1)]]),
            Err(FrameError::Malformed { .. })
        ));
        assert!(matches!(
            MimoCarpoolFrame::new(2, vec![]),
            Err(FrameError::Empty)
        ));
        assert!(matches!(
            MimoCarpoolFrame::new(2, vec![vec![sf(0, 1), sf(1, 1), sf(2, 1)]]),
            Err(FrameError::TooManyReceivers { count: 3 })
        ));
        assert!(matches!(
            MimoCarpoolFrame::new(2, vec![vec![sf(0, 1), sf(0, 2)]]),
            Err(FrameError::Malformed { .. })
        ));
        let nine: Vec<Vec<MimoSubframe>> = (0..9u16).map(|k| vec![sf(k, 10)]).collect();
        assert!(matches!(
            MimoCarpoolFrame::new(2, nine),
            Err(FrameError::TooManyReceivers { count: 9 })
        ));
    }

    #[test]
    fn single_stream_degenerates_to_serial_carpool() {
        // With one antenna every group has one receiver; the aggregate
        // still shares one preamble across all of them.
        let frame = MimoCarpoolFrame::pack(1, vec![sf(0, 300), sf(1, 300), sf(2, 300)]).unwrap();
        assert_eq!(frame.groups().len(), 3);
        assert!(frame.exchange_airtime() < frame.plain_mu_mimo_airtime());
    }
}
