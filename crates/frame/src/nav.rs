//! NAV arithmetic for Carpool's sequential ACK (paper Section 4.2).
//!
//! Multiple receivers of a Carpool frame would all ACK after one SIFS and
//! collide; instead they ACK one by one, coordinated purely through the
//! Network Allocation Vector:
//!
//! * the data frame reserves the medium for the whole sequence
//!   (Eq. 1): `NAV_data = t_payload + N (t_ACK + t_SIFS)`;
//! * the receiver of subframe `i` defers its ACK by
//!   (Eq. 2): `NAV_i = (i - 1)(t_ACK + t_SIFS)`;
//! * the `j`-th ACK advertises the time left to the end of the sequence,
//!   `NAV_{N-j+1}`, so the last ACK carries `NAV_1 = 0` like a legacy ACK.
//!
//! Subframe indices here are 1-based, following the paper's notation.

#[cfg(test)]
use crate::airtime::cts_airtime;
use crate::airtime::{ack_airtime, SIFS};

/// NAV carried by an aggregated data frame for `receivers` receivers
/// whose payload lasts `payload_airtime` seconds (paper Eq. 1).
///
/// # Panics
///
/// Panics if `receivers == 0`.
pub fn nav_data(receivers: usize, payload_airtime: f64) -> f64 {
    assert!(receivers > 0, "need at least one receiver");
    payload_airtime + receivers as f64 * (ack_airtime() + SIFS)
}

/// Deferral of the receiver of the `i`-th subframe, 1-based (paper Eq. 2).
///
/// # Panics
///
/// Panics if `i == 0`.
pub fn nav_receiver(i: usize) -> f64 {
    assert!(i >= 1, "subframe indices are 1-based");
    (i - 1) as f64 * (ack_airtime() + SIFS)
}

/// NAV advertised by the `j`-th ACK of `n` total (1-based): the residual
/// reservation `NAV_{n-j+1}`, hence zero for the last ACK.
///
/// # Panics
///
/// Panics if `j == 0` or `j > n`.
pub fn nav_ack(j: usize, n: usize) -> f64 {
    assert!(j >= 1 && j <= n, "ACK index {j} outside 1..={n}");
    nav_receiver(n - j + 1)
}

/// Start time of the `i`-th ACK (1-based) relative to the end of the
/// data frame: `i x SIFS + (i-1) x t_ACK`.
pub fn ack_start_offset(i: usize) -> f64 {
    assert!(i >= 1, "subframe indices are 1-based");
    SIFS + nav_receiver(i)
}

/// NAV carried by a Carpool multicast RTS covering `receivers` CTSs, the
/// data frame of `payload_airtime`, and the sequential ACKs (Fig. 7).
#[cfg(test)]
fn nav_rts(receivers: usize, payload_airtime: f64) -> f64 {
    assert!(receivers > 0, "need at least one receiver");
    let n = receivers as f64;
    n * (SIFS + cts_airtime()) + SIFS + nav_data(receivers, payload_airtime)
}

/// NAV advertised by the `j`-th CTS of `n`: everything that remains of
/// the sequence after this CTS ends.
#[cfg(test)]
fn nav_cts(j: usize, n: usize, payload_airtime: f64) -> f64 {
    assert!(j >= 1 && j <= n, "CTS index {j} outside 1..={n}");
    let remaining_cts = (n - j) as f64;
    remaining_cts * (SIFS + cts_airtime()) + SIFS + nav_data(n, payload_airtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_definition() {
        let t_payload = 500e-6;
        for n in 1..=8 {
            let expect = t_payload + n as f64 * (ack_airtime() + SIFS);
            assert!((nav_data(n, t_payload) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn eq2_first_receiver_does_not_defer() {
        assert_eq!(nav_receiver(1), 0.0);
        assert!((nav_receiver(2) - (ack_airtime() + SIFS)).abs() < 1e-12);
    }

    #[test]
    fn last_ack_nav_is_zero_like_legacy() {
        for n in 1..=8 {
            assert_eq!(nav_ack(n, n), 0.0, "n={n}");
        }
    }

    #[test]
    fn first_ack_reserves_rest_of_sequence() {
        let n = 5;
        assert!((nav_ack(1, n) - nav_receiver(n)).abs() < 1e-12);
    }

    #[test]
    fn ack_sequence_back_to_back() {
        // ACK i ends exactly one SIFS before ACK i+1 starts.
        for i in 1..8 {
            let end_i = ack_start_offset(i) + ack_airtime();
            let start_next = ack_start_offset(i + 1);
            assert!((start_next - end_i - SIFS).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn whole_sequence_fits_nav_data() {
        let t_payload = 300e-6;
        for n in 1..=8usize {
            let last_ack_end = ack_start_offset(n) + ack_airtime();
            let reserved = nav_data(n, t_payload) - t_payload;
            assert!(
                (last_ack_end - reserved).abs() < 1e-12,
                "n={n}: {last_ack_end} vs {reserved}"
            );
        }
    }

    #[test]
    fn rts_nav_covers_everything() {
        let n = 3;
        let t_payload = 200e-6;
        // RTS NAV >= all CTSs + data + all ACKs.
        let floor = n as f64 * (SIFS + cts_airtime())
            + SIFS
            + t_payload
            + n as f64 * (SIFS + ack_airtime());
        assert!(nav_rts(n, t_payload) >= floor - 1e-12);
    }

    #[test]
    fn cts_nav_decreases_with_index() {
        let n = 4;
        let t = 100e-6;
        let mut prev = f64::INFINITY;
        for j in 1..=n {
            let nav = nav_cts(j, n, t);
            assert!(nav < prev);
            prev = nav;
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_index_panics() {
        nav_receiver(0);
    }
}
