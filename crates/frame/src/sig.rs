//! SIG field encoding.
//!
//! Each Carpool subframe starts with SIG symbols carrying its MCS and
//! length so that stations can *skip* subframes that are not theirs
//! (paper Section 4.1: "for every subframe whose position is prior to
//! the receiver's subframe, the receiver only decodes the SIG symbol to
//! obtain the subframe's length and then skips the whole subframe").
//!
//! The layout follows the spirit of the legacy L-SIG (rate + length +
//! parity) but widens the length field to 16 bits, because a Carpool
//! subframe may itself be an A-MPDU of up to 64 KB — the legacy 12-bit
//! field only covers 4095 B. The 24 coded bits still fit one BPSK-1/2
//! OFDM symbol. This deviation is recorded in `DESIGN.md`.

use crate::FrameError;
use carpool_phy::bits::{bits_to_uint, uint_to_bits};
use carpool_phy::mcs::Mcs;

/// Number of information bits in a SIG field (one BPSK-1/2 symbol).
pub const SIG_BITS: usize = 24;

/// Decoded contents of a SIG field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sig {
    /// MCS of the subframe that follows.
    pub mcs: Mcs,
    /// Length of the subframe's MAC payload in bytes (up to 65535).
    pub length_bytes: u16,
}

/// Maps an MCS to its 4-bit rate code (and back).
///
/// The match is exhaustive over `(Modulation, CodeRate)`, so the three
/// pairings outside the eight standard rates fall back to the
/// modulation's base slot; for the standard rates the codes are exactly
/// the [`Mcs::ALL`] positions.
fn mcs_to_code(mcs: Mcs) -> u8 {
    use carpool_phy::convolutional::CodeRate;
    use carpool_phy::modulation::Modulation;
    match (mcs.modulation, mcs.code_rate) {
        (Modulation::Bpsk, CodeRate::ThreeQuarters) => 1,
        (Modulation::Bpsk, _) => 0,
        (Modulation::Qpsk, CodeRate::ThreeQuarters) => 3,
        (Modulation::Qpsk, _) => 2,
        (Modulation::Qam16, CodeRate::ThreeQuarters) => 5,
        (Modulation::Qam16, _) => 4,
        (Modulation::Qam64, CodeRate::ThreeQuarters) => 7,
        (Modulation::Qam64, _) => 6,
    }
}

fn code_to_mcs(code: u8) -> Option<Mcs> {
    Mcs::ALL.get(code as usize).copied()
}

impl Sig {
    /// Creates a SIG field.
    pub fn new(mcs: Mcs, length_bytes: u16) -> Sig {
        Sig { mcs, length_bytes }
    }

    /// Serialises to [`SIG_BITS`] bits: 4 rate bits, 16 length bits,
    /// 1 even-parity bit, 3 reserved zero bits.
    pub fn to_bits(&self) -> Vec<u8> {
        let mut bits = Vec::with_capacity(SIG_BITS); // lint:allow(hot-alloc): per-frame SIG field encode, bounded by header size
        bits.extend(uint_to_bits(mcs_to_code(self.mcs) as u64, 4));
        bits.extend(uint_to_bits(self.length_bytes as u64, 16));
        let parity = bits.iter().fold(0u8, |acc, &b| acc ^ b);
        bits.push(parity);
        bits.extend_from_slice(&[0, 0, 0]);
        debug_assert_eq!(bits.len(), SIG_BITS);
        bits
    }

    /// Parses a SIG field, validating parity and the rate code.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadSig`] if the bit count, parity or rate
    /// code is invalid.
    pub fn from_bits(bits: &[u8]) -> Result<Sig, FrameError> {
        if bits.len() != SIG_BITS {
            return Err(FrameError::BadSig {
                reason: format!("expected {SIG_BITS} bits, got {}", bits.len()),
            });
        }
        let parity = bits[..20].iter().fold(0u8, |acc, &b| acc ^ b);
        if parity != bits[20] {
            return Err(FrameError::BadSig {
                reason: "parity mismatch".to_string(),
            });
        }
        let code = bits_to_uint(&bits[0..4], 4) as u8;
        let mcs = code_to_mcs(code).ok_or_else(|| FrameError::BadSig {
            reason: format!("unknown rate code {code}"),
        })?;
        let length_bytes = bits_to_uint(&bits[4..20], 16) as u16;
        Ok(Sig { mcs, length_bytes })
    }
}

impl std::fmt::Display for Sig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SIG[{} x {}B]", self.mcs, self.length_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_mcs_and_lengths() {
        for mcs in Mcs::ALL {
            for len in [0u16, 1, 300, 1500, 4095, 65535] {
                let sig = Sig::new(mcs, len);
                let parsed = Sig::from_bits(&sig.to_bits()).unwrap();
                assert_eq!(parsed, sig);
            }
        }
    }

    #[test]
    fn parity_detects_single_bit_flips() {
        let sig = Sig::new(Mcs::QAM16_3_4, 1234);
        let bits = sig.to_bits();
        for k in 0..21 {
            let mut bad = bits.clone();
            bad[k] ^= 1;
            assert!(Sig::from_bits(&bad).is_err(), "flip at {k} undetected");
        }
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(Sig::from_bits(&[0; 23]).is_err());
        assert!(Sig::from_bits(&[0; 25]).is_err());
    }

    #[test]
    fn invalid_rate_code_rejected() {
        // Rate code 9 with fixed parity.
        let mut bits = Sig::new(Mcs::BPSK_1_2, 7).to_bits();
        bits[0] = 1;
        bits[3] = 1; // code becomes 9
        let parity = bits[..20].iter().fold(0u8, |a, &b| a ^ b);
        bits[20] = parity;
        let err = Sig::from_bits(&bits).unwrap_err();
        assert!(err.to_string().contains("rate code"));
    }

    #[test]
    fn one_symbol_at_base_rate() {
        // SIG must fit in a single BPSK-1/2 OFDM symbol (24 data bits).
        assert_eq!(SIG_BITS, Mcs::BPSK_1_2.data_bits_per_symbol());
    }

    #[test]
    fn display_contains_fields() {
        let s = Sig::new(Mcs::QAM64_3_4, 1500).to_string();
        assert!(s.contains("1500"));
        assert!(s.contains("QAM64"));
    }
}
