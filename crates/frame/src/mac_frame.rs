//! MAC frame formats and A-MPDU bundling.
//!
//! A compact MAC header (type, addresses, sequence number) plus payload,
//! protected by the CRC-32 FCS. Multiple MPDUs for the *same* receiver
//! can be bundled A-MPDU-style with per-MPDU delimiters, which is what an
//! individual Carpool subframe carries when IEEE 802.11n MAC aggregation
//! is layered below the PHY aggregation (paper Fig. 4: "the MAC data can
//! be either single data unit or aggregation data unit").

use crate::addr::MacAddress;
use crate::FrameError;
use carpool_phy::crc::{append_fcs, check_fcs};

/// MAC frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A data frame.
    Data,
    /// An acknowledgement.
    Ack,
    /// Request to send.
    Rts,
    /// Clear to send.
    Cts,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Rts => 2,
            FrameKind::Cts => 3,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Ack),
            2 => Some(FrameKind::Rts),
            3 => Some(FrameKind::Cts),
            _ => None,
        }
    }
}

/// Size in bytes of the serialised MAC header (kind + 2 addresses + seq).
pub const MAC_HEADER_BYTES: usize = 1 + 6 + 6 + 2;
/// Size in bytes of the FCS trailer.
pub const FCS_BYTES: usize = 4;
/// Size of a serialised ACK frame (header + FCS, no body).
pub const ACK_BYTES: usize = MAC_HEADER_BYTES + FCS_BYTES;

/// A MAC protocol data unit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MacFrame {
    /// Frame type.
    pub kind: FrameKind,
    /// Destination address.
    pub dest: MacAddress,
    /// Source address.
    pub src: MacAddress,
    /// Sequence number.
    pub seq: u16,
    /// Payload bytes (empty for control frames).
    pub body: Vec<u8>,
}

impl MacFrame {
    /// Creates a data frame.
    pub fn data(dest: MacAddress, src: MacAddress, seq: u16, body: Vec<u8>) -> MacFrame {
        MacFrame {
            kind: FrameKind::Data,
            dest,
            src,
            seq,
            body,
        }
    }

    /// Creates an ACK for a received frame.
    pub fn ack(dest: MacAddress, src: MacAddress, seq: u16) -> MacFrame {
        MacFrame {
            kind: FrameKind::Ack,
            dest,
            src,
            seq,
            body: Vec::new(),
        }
    }

    /// Serialised length including header and FCS.
    pub fn wire_len(&self) -> usize {
        MAC_HEADER_BYTES + self.body.len() + FCS_BYTES
    }

    /// Serialises to bytes with a trailing FCS.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.dest.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.body);
        append_fcs(&out)
    }

    /// Parses a frame, verifying the FCS.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadFcs`] if the checksum fails or
    /// [`FrameError::Malformed`] for structural problems.
    pub fn from_bytes(bytes: &[u8]) -> Result<MacFrame, FrameError> {
        let payload = check_fcs(bytes).ok_or(FrameError::BadFcs)?;
        if payload.len() < MAC_HEADER_BYTES {
            return Err(FrameError::Malformed {
                reason: format!("{} bytes below minimum header", payload.len()),
            });
        }
        let kind = FrameKind::from_byte(payload[0]).ok_or_else(|| FrameError::Malformed {
            reason: format!("unknown frame kind {}", payload[0]),
        })?;
        let mut dest = [0u8; 6];
        dest.copy_from_slice(&payload[1..7]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&payload[7..13]);
        let seq = u16::from_le_bytes([payload[13], payload[14]]);
        Ok(MacFrame {
            kind,
            dest: dest.into(),
            src: src.into(),
            seq,
            body: payload[MAC_HEADER_BYTES..].to_vec(),
        })
    }
}

/// An A-MPDU bundle: several MPDUs for one receiver, each behind a
/// 2-byte length delimiter so undamaged MPDUs survive partial corruption.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AmpduBundle {
    frames: Vec<MacFrame>,
}

impl AmpduBundle {
    /// Creates an empty bundle.
    pub fn new() -> AmpduBundle {
        AmpduBundle { frames: Vec::new() }
    }

    /// Bundles existing frames.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Malformed`] if frames have differing
    /// destinations — an A-MPDU addresses exactly one receiver.
    pub fn from_frames(frames: Vec<MacFrame>) -> Result<AmpduBundle, FrameError> {
        if let Some(first) = frames.first() {
            if frames.iter().any(|f| f.dest != first.dest) {
                return Err(FrameError::Malformed {
                    reason: "A-MPDU frames must share one destination".to_string(),
                });
            }
        }
        Ok(AmpduBundle { frames })
    }

    /// Adds a frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Malformed`] if the destination differs from
    /// the frames already bundled.
    pub fn push(&mut self, frame: MacFrame) -> Result<(), FrameError> {
        if let Some(first) = self.frames.first() {
            if frame.dest != first.dest {
                return Err(FrameError::Malformed {
                    reason: "A-MPDU frames must share one destination".to_string(),
                });
            }
        }
        self.frames.push(frame);
        Ok(())
    }

    /// The bundled frames.
    pub fn frames(&self) -> &[MacFrame] {
        &self.frames
    }

    /// Number of bundled frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if the bundle has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Serialised length.
    pub fn wire_len(&self) -> usize {
        self.frames.iter().map(|f| 2 + f.wire_len()).sum()
    }

    /// Serialises the bundle with per-MPDU delimiters.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for f in &self.frames {
            let bytes = f.to_bytes();
            out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Parses a bundle, returning each MPDU's parse result separately —
    /// a corrupted MPDU yields an error slot while intact ones survive,
    /// mirroring selective A-MPDU acknowledgement.
    pub fn parse_lossy(bytes: &[u8]) -> Vec<Result<MacFrame, FrameError>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 2 <= bytes.len() {
            let len = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]) as usize;
            pos += 2;
            if pos + len > bytes.len() {
                out.push(Err(FrameError::Malformed {
                    reason: "delimiter exceeds buffer".to_string(),
                }));
                break;
            }
            out.push(MacFrame::from_bytes(&bytes[pos..pos + len]));
            pos += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u16) -> MacFrame {
        MacFrame::data(
            MacAddress::station(1),
            MacAddress::access_point(0),
            seq,
            vec![seq as u8; 100],
        )
    }

    #[test]
    fn frame_round_trip() {
        let f = frame(7);
        assert_eq!(MacFrame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn ack_round_trip() {
        let a = MacFrame::ack(MacAddress::access_point(0), MacAddress::station(3), 99);
        let parsed = MacFrame::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(parsed.kind, FrameKind::Ack);
        assert_eq!(parsed.seq, 99);
        assert!(parsed.body.is_empty());
        assert_eq!(a.wire_len(), ACK_BYTES);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = frame(1).to_bytes();
        bytes[20] ^= 0xFF;
        assert!(matches!(
            MacFrame::from_bytes(&bytes),
            Err(FrameError::BadFcs)
        ));
    }

    #[test]
    fn wire_len_matches_serialisation() {
        let f = frame(3);
        assert_eq!(f.to_bytes().len(), f.wire_len());
    }

    #[test]
    fn bundle_round_trip() {
        let mut b = AmpduBundle::new();
        for seq in 0..5 {
            b.push(frame(seq)).unwrap();
        }
        assert_eq!(b.len(), 5);
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), b.wire_len());
        let parsed = AmpduBundle::parse_lossy(&bytes);
        assert_eq!(parsed.len(), 5);
        for (k, p) in parsed.into_iter().enumerate() {
            assert_eq!(p.unwrap(), frame(k as u16));
        }
    }

    #[test]
    fn bundle_rejects_mixed_destinations() {
        let mut b = AmpduBundle::new();
        b.push(frame(0)).unwrap();
        let other = MacFrame::data(
            MacAddress::station(2),
            MacAddress::access_point(0),
            1,
            vec![],
        );
        assert!(b.push(other).is_err());
    }

    #[test]
    fn lossy_parse_salvages_intact_mpdus() {
        let mut b = AmpduBundle::new();
        for seq in 0..3 {
            b.push(frame(seq)).unwrap();
        }
        let mut bytes = b.to_bytes();
        // Corrupt a byte inside the second MPDU's body.
        let first_len = 2 + frame(0).wire_len();
        bytes[first_len + 30] ^= 0x55;
        let parsed = AmpduBundle::parse_lossy(&bytes);
        assert!(parsed[0].is_ok());
        assert!(parsed[1].is_err());
        assert!(parsed[2].is_ok());
    }

    #[test]
    fn truncated_bundle_reports_malformed_tail() {
        let mut b = AmpduBundle::new();
        b.push(frame(0)).unwrap();
        let bytes = b.to_bytes();
        let parsed = AmpduBundle::parse_lossy(&bytes[..bytes.len() - 5]);
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].is_err());
    }

    #[test]
    fn empty_bundle_behaviour() {
        let b = AmpduBundle::new();
        assert!(b.is_empty());
        assert_eq!(b.wire_len(), 0);
        assert!(AmpduBundle::parse_lossy(&[]).is_empty());
    }
}
