//! PHY/MAC timing parameters (paper Table 2) and airtime arithmetic.
//!
//! All durations are in seconds. Airtime computations mirror the PHY
//! implementation exactly (including convolutional tails), so the MAC
//! simulator's clock agrees with what `carpool-phy` would actually
//! modulate.

use crate::mac_frame::ACK_BYTES;
use crate::sig::SIG_BITS;
use carpool_bloom::BLOOM_BITS;
use carpool_phy::mcs::Mcs;

/// Slot time (Table 2): 9 µs.
pub const SLOT_TIME: f64 = 9e-6;
/// Short interframe space (Table 2): 10 µs.
pub const SIFS: f64 = 10e-6;
/// DCF interframe space (Table 2): 28 µs.
pub const DIFS: f64 = 28e-6;
/// Minimum contention window (Table 2): 15 slots.
pub const CW_MIN: u32 = 15;
/// Maximum contention window (Table 2): 1023 slots.
pub const CW_MAX: u32 = 1023;
/// PLCP preamble + header overhead (Table 2): 28 µs.
pub const PLCP_OVERHEAD: f64 = 28e-6;
/// One-way propagation delay (Table 2): 1 µs.
pub const PROPAGATION_DELAY: f64 = 1e-6;

/// Control frames (ACK/RTS/CTS) go at the mandatory base rate.
pub const CONTROL_MCS: Mcs = Mcs::BPSK_1_2;

/// Airtime of the A-HDR: two BPSK-1/2 OFDM symbols (paper Section 4.1).
pub fn ahdr_airtime() -> f64 {
    // 48 bits at 24 data bits/symbol = 2 symbols; the PHY implementation
    // spends an extra symbol on the convolutional tail.
    CONTROL_MCS.airtime_for_bits(BLOOM_BITS)
}

/// Airtime of one SIG field.
pub fn sig_airtime() -> f64 {
    CONTROL_MCS.airtime_for_bits(SIG_BITS)
}

/// Airtime of a legacy (single-receiver) data frame.
pub fn data_frame_airtime(payload_bytes: usize, mcs: Mcs) -> f64 {
    PLCP_OVERHEAD + mcs.airtime_for_bits(payload_bytes * 8)
}

/// Airtime of a Carpool frame given its subframes as `(bytes, mcs)`.
pub fn carpool_frame_airtime(subframes: &[(usize, Mcs)]) -> f64 {
    let payload: f64 = subframes
        .iter()
        .map(|&(bytes, mcs)| sig_airtime() + mcs.airtime_for_bits(bytes * 8))
        .sum();
    PLCP_OVERHEAD + ahdr_airtime() + payload
}

/// Airtime of an ACK frame at the base rate.
pub fn ack_airtime() -> f64 {
    PLCP_OVERHEAD + CONTROL_MCS.airtime_for_bits(ACK_BYTES * 8)
}

/// Airtime of an RTS frame (20 bytes) at the base rate; Carpool's
/// multicast RTS additionally carries the A-HDR (paper Fig. 7).
pub fn rts_airtime(with_ahdr: bool) -> f64 {
    let base = PLCP_OVERHEAD + CONTROL_MCS.airtime_for_bits(20 * 8);
    if with_ahdr {
        base + ahdr_airtime()
    } else {
        base
    }
}

/// Airtime of a CTS frame (14 bytes) at the base rate.
pub fn cts_airtime() -> f64 {
    PLCP_OVERHEAD + CONTROL_MCS.airtime_for_bits(14 * 8)
}

/// Duration of a complete legacy exchange: DATA + SIFS + ACK.
#[cfg(test)]
fn legacy_exchange_airtime(payload_bytes: usize, mcs: Mcs) -> f64 {
    data_frame_airtime(payload_bytes, mcs) + SIFS + ack_airtime()
}

/// Duration of a complete Carpool exchange: DATA + N x (SIFS + ACK)
/// (sequential ACKs, paper Section 4.2).
#[cfg(test)]
fn carpool_exchange_airtime(subframes: &[(usize, Mcs)]) -> f64 {
    carpool_frame_airtime(subframes) + subframes.len() as f64 * (SIFS + ack_airtime())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        assert_eq!(SLOT_TIME, 9e-6);
        assert_eq!(SIFS, 10e-6);
        assert_eq!(DIFS, 28e-6);
        assert_eq!(CW_MIN, 15);
        assert_eq!(CW_MAX, 1023);
        assert_eq!(PLCP_OVERHEAD, 28e-6);
        assert_eq!(PROPAGATION_DELAY, 1e-6);
    }

    #[test]
    fn ahdr_is_a_few_symbols() {
        use carpool_phy::mcs::SYMBOL_DURATION;
        // Two information symbols (+1 tail symbol in this PHY).
        let t = ahdr_airtime();
        assert!(
            (2.0 * SYMBOL_DURATION..=3.0 * SYMBOL_DURATION).contains(&t),
            "{t}"
        );
    }

    #[test]
    fn carpool_header_overhead_beats_explicit_addresses() {
        // The motivating example (paper Section 3): 8 receivers' MAC
        // addresses at base rate cost ~59 µs; the A-HDR costs ~8-12 µs.
        let explicit = CONTROL_MCS.airtime_for_bits(48 * 8);
        assert!(ahdr_airtime() < explicit / 3.0);
    }

    #[test]
    fn aggregation_amortises_plcp() {
        // One Carpool frame with 4 x 500 B at QAM64 is far shorter than
        // four separate exchanges.
        let subframes = [(500, Mcs::QAM64_3_4); 4];
        let carpool = carpool_exchange_airtime(&subframes);
        let separate: f64 = (0..4)
            .map(|_| legacy_exchange_airtime(500, Mcs::QAM64_3_4) + DIFS)
            .sum();
        // (The full gain also includes avoided backoff, which the MAC
        // simulator accounts for; pure airtime already saves ~20%.)
        assert!(carpool < separate * 0.85, "carpool {carpool} vs {separate}");
    }

    #[test]
    fn airtime_monotone_in_payload() {
        let mut prev = 0.0;
        for bytes in [100, 300, 800, 1500] {
            let t = data_frame_airtime(bytes, Mcs::QPSK_1_2);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn ack_airtime_is_tens_of_microseconds() {
        let t = ack_airtime();
        assert!((30e-6..80e-6).contains(&t), "{t}");
    }

    #[test]
    fn rts_with_ahdr_is_longer() {
        assert!(rts_airtime(true) > rts_airtime(false));
        assert!(cts_airtime() < rts_airtime(false));
    }

    #[test]
    fn paper_example_1500b_at_54mbps() {
        // ~222 µs payload + PLCP (Section 3 of the paper).
        let t = data_frame_airtime(1500, Mcs::QAM64_3_4);
        assert!((220e-6..260e-6).contains(&t), "{t}");
    }
}
