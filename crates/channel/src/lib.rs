#![warn(missing_docs)]
//! # carpool-channel — complex-baseband wireless channel models
//!
//! The Carpool paper evaluates its PHY on USRP radios in a 10m x 10m
//! office. This crate is the software substitute: it degrades a baseband
//! sample stream with the impairments that matter to the paper's
//! mechanisms —
//!
//! * [`noise`] — AWGN at a target SNR (the x-axis of Fig. 11/12 via the
//!   USRP power-magnitude calibration in [`link`]),
//! * [`fading`] — multipath Rayleigh fading with Gauss–Markov temporal
//!   evolution parameterised by *coherence time* (the cause of the BER
//!   bias in Fig. 3 and the target of real-time channel estimation),
//! * [`cfo`] — residual carrier frequency offset (the *inherent phase
//!   offset* the differential side channel is designed around),
//! * [`jakes`] — Clarke/Jakes sum-of-sinusoids fading with the physical
//!   `J0(2 pi f_d tau)` autocorrelation, as an alternative temporal
//!   model.
//!
//! [`link::LinkChannel`] composes all three behind a builder.
//!
//! # Examples
//!
//! ```
//! use carpool_channel::link::LinkChannel;
//! use carpool_phy::math::Complex64;
//!
//! let mut link = LinkChannel::builder()
//!     .snr_db(25.0)
//!     .static_fading()
//!     .cfo_hz(150.0)
//!     .seed(7)
//!     .build();
//! let tx = vec![Complex64::ONE; 160];
//! let rx = link.transmit(&tx);
//! assert_eq!(rx.len(), tx.len());
//! ```

pub mod cfo;
pub mod fading;
pub(crate) mod jakes;
pub mod link;
pub mod noise;

pub use cfo::ResidualCfo;
pub use fading::{DelayProfile, FadingChannel};
pub use jakes::{bessel_j0, JakesFading};
pub use link::{power_magnitude_to_snr_db, LinkChannel, LinkChannelBuilder};
pub use noise::Awgn;
