//! Residual carrier frequency offset (CFO).
//!
//! After coarse correction from the preamble, real receivers retain a
//! small residual frequency error that rotates the constellation at a
//! constant rate — the *inherent phase offset* that the paper's side
//! channel must coexist with (Section 5.2). This stage applies a pure
//! phase ramp `e^{j 2 pi df t}` to the sample stream.

use carpool_phy::math::Complex64;

/// Residual CFO stage with persistent phase across calls.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualCfo {
    freq_hz: f64,
    sample_rate: f64,
    phase: f64,
}

impl ResidualCfo {
    /// Creates a CFO of `freq_hz` at the given sample rate.
    ///
    /// Typical residual offsets after preamble correction are tens to a
    /// few hundred Hz; 100 Hz at 20 Msample/s rotates ~0.0018° per
    /// sample, i.e. ~0.14° per OFDM symbol — small between consecutive
    /// symbols, exactly the regime the differential side channel assumes.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0`.
    pub fn new(freq_hz: f64, sample_rate: f64) -> ResidualCfo {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        ResidualCfo {
            freq_hz,
            sample_rate,
            phase: 0.0,
        }
    }

    /// The configured offset in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Phase advance per sample in radians.
    pub fn phase_per_sample(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.freq_hz / self.sample_rate
    }

    /// Applies the rotation in place, advancing internal phase.
    pub fn apply(&mut self, samples: &mut [Complex64]) {
        let step = self.phase_per_sample();
        for s in samples.iter_mut() {
            *s = s.rotate(self.phase);
            self.phase = carpool_phy::math::wrap_angle(self.phase + step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_offset_is_identity() {
        let mut cfo = ResidualCfo::new(0.0, 20e6);
        let mut buf: Vec<Complex64> = (0..10).map(|k| Complex64::new(k as f64, 1.0)).collect();
        let before = buf.clone();
        cfo.apply(&mut buf);
        assert_eq!(buf, before);
    }

    #[test]
    fn rotation_rate_matches_frequency() {
        let fs = 20e6;
        let f = 1000.0;
        let mut cfo = ResidualCfo::new(f, fs);
        let n = 20_000; // one full period at 1 kHz / 20 MHz
        let mut buf = vec![Complex64::ONE; n + 1];
        cfo.apply(&mut buf);
        // After a full period the rotation returns to start.
        assert!((buf[n] - buf[0]).abs() < 1e-6);
        // Quarter period: 90 degrees.
        let q = n / 4;
        let angle = buf[q].arg();
        assert!(
            (angle - std::f64::consts::FRAC_PI_2).abs() < 1e-6,
            "angle {angle}"
        );
    }

    #[test]
    fn phase_persists_across_calls() {
        let mut cfo = ResidualCfo::new(500.0, 20e6);
        let mut a = vec![Complex64::ONE; 100];
        let mut b = vec![Complex64::ONE; 100];
        cfo.apply(&mut a);
        cfo.apply(&mut b);
        // The first sample of the second buffer continues where the
        // first ended (one step later).
        let step = cfo.phase_per_sample();
        let expected = a[99].arg() + step;
        assert!((b[0].arg() - expected).abs() < 1e-9);
    }

    #[test]
    fn magnitude_is_preserved() {
        let mut cfo = ResidualCfo::new(123.0, 20e6);
        let mut buf: Vec<Complex64> = (0..50).map(|k| Complex64::new(k as f64, -2.0)).collect();
        let mags: Vec<f64> = buf.iter().map(|s| s.abs()).collect();
        cfo.apply(&mut buf);
        for (s, m) in buf.iter().zip(mags) {
            assert!((s.abs() - m).abs() < 1e-9);
        }
    }
}
