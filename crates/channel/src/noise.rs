//! Gaussian noise generation and the AWGN channel.
//!
//! `rand` (the only external dependency) provides uniform variates; the
//! normal distribution is derived with the Box–Muller transform so the
//! crate needs no `rand_distr`.

use carpool_phy::math::{db_to_lin, mean_power, Complex64};
use rand::Rng;

/// Draws one standard normal variate via Box–Muller.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a circularly-symmetric complex Gaussian with variance
/// `variance` (total over both components).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex64 {
    let s = (variance / 2.0).sqrt();
    Complex64::new(standard_normal(rng) * s, standard_normal(rng) * s)
}

/// Additive white Gaussian noise at a fixed SNR.
///
/// The noise power is `signal_power / 10^(snr_db/10)`, where the signal
/// power is measured from each processed buffer — so the configured SNR
/// is met exactly in expectation regardless of the transmit scaling.
#[derive(Debug, Clone)]
pub struct Awgn {
    snr_db: f64,
}

impl Awgn {
    /// Creates an AWGN stage targeting `snr_db` decibels.
    pub fn new(snr_db: f64) -> Awgn {
        Awgn { snr_db }
    }

    /// Target signal-to-noise ratio in dB.
    pub fn snr_db(&self) -> f64 {
        self.snr_db
    }

    /// Adds noise to `samples` in place, scaled to the measured signal
    /// power of the buffer.
    pub fn apply<R: Rng + ?Sized>(&self, samples: &mut [Complex64], rng: &mut R) {
        let signal_power = mean_power(samples);
        if signal_power == 0.0 {
            return;
        }
        let noise_power = signal_power / db_to_lin(self.snr_db);
        for s in samples.iter_mut() {
            *s += complex_gaussian(rng, noise_power);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn complex_gaussian_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let var = 0.25;
        let p: f64 = (0..n)
            .map(|_| complex_gaussian(&mut rng, var).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - var).abs() < 0.01, "power {p}");
    }

    #[test]
    fn awgn_meets_target_snr() {
        let mut rng = StdRng::seed_from_u64(11);
        let clean: Vec<Complex64> = (0..50_000)
            .map(|k| Complex64::cis(k as f64 * 0.01).scale(0.3))
            .collect();
        for snr in [0.0, 10.0, 20.0] {
            let mut noisy = clean.clone();
            Awgn::new(snr).apply(&mut noisy, &mut rng);
            let noise_power: f64 = noisy
                .iter()
                .zip(&clean)
                .map(|(a, b)| (*a - *b).norm_sqr())
                .sum::<f64>()
                / clean.len() as f64;
            let measured = 10.0 * (mean_power(&clean) / noise_power).log10();
            assert!(
                (measured - snr).abs() < 0.3,
                "snr {snr}: measured {measured}"
            );
        }
    }

    #[test]
    fn awgn_on_silence_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![Complex64::ZERO; 64];
        Awgn::new(10.0).apply(&mut buf, &mut rng);
        assert!(buf.iter().all(|s| *s == Complex64::ZERO));
    }

    #[test]
    fn awgn_is_reproducible_with_seed() {
        let clean: Vec<Complex64> = (0..100).map(|k| Complex64::new(k as f64, 0.0)).collect();
        let mut a = clean.clone();
        let mut b = clean.clone();
        Awgn::new(15.0).apply(&mut a, &mut StdRng::seed_from_u64(42));
        Awgn::new(15.0).apply(&mut b, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
