//! Multipath Rayleigh fading with first-order Gauss–Markov time evolution.
//!
//! The channel is a tapped delay line whose taps are circularly-symmetric
//! complex Gaussians (Rayleigh envelopes) with an exponential power delay
//! profile. Temporal variation — the effect behind the paper's *BER
//! bias* (Fig. 3) — follows a first-order Gauss–Markov process: every
//! `update_interval` samples each tap evolves as
//!
//! ```text
//! h <- rho * h + sqrt(1 - rho^2) * CN(0, p_tap)
//! ```
//!
//! with `rho` chosen so the tap autocorrelation decays to 1/2 after one
//! *coherence time*. Coherence times of tens of microseconds to hundreds
//! of milliseconds (the range the paper cites from Vutukuru et al.) are
//! expressed in samples at the 20 Msample/s baseband rate.

use crate::noise::complex_gaussian;
use carpool_phy::math::Complex64;
use rand::Rng;

/// Baseband sample rate assumed by the simulator (20 MHz channel).
pub const SAMPLE_RATE: f64 = 20e6;

/// Power delay profile for the tapped delay line.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayProfile {
    powers: Vec<f64>,
}

impl DelayProfile {
    /// A single-tap (frequency-flat) profile.
    pub fn flat() -> DelayProfile {
        DelayProfile { powers: vec![1.0] }
    }

    /// An exponentially decaying profile with `taps` taps and per-tap
    /// decay `decay` (e.g. 0.5 halves the power each tap). Powers are
    /// normalised to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `taps == 0` or `decay <= 0`.
    pub fn exponential(taps: usize, decay: f64) -> DelayProfile {
        assert!(taps > 0, "need at least one tap");
        assert!(decay > 0.0, "decay must be positive");
        let mut powers: Vec<f64> = (0..taps).map(|k| decay.powi(k as i32)).collect();
        let total: f64 = powers.iter().sum();
        for p in &mut powers {
            *p /= total;
        }
        DelayProfile { powers }
    }

    /// A custom profile; powers are normalised to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `powers` is empty, contains a non-positive value, or
    /// sums to zero.
    pub fn custom(powers: Vec<f64>) -> DelayProfile {
        assert!(!powers.is_empty(), "need at least one tap");
        assert!(powers.iter().all(|&p| p > 0.0), "powers must be positive");
        let total: f64 = powers.iter().sum();
        DelayProfile {
            powers: powers.into_iter().map(|p| p / total).collect(),
        }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// `true` if the profile is a single tap.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// Normalised tap powers.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }
}

/// Time-varying multipath fading channel (Rayleigh or Rician).
///
/// Each tap is the sum of a fixed line-of-sight component (zero for
/// Rayleigh) and a scattered component that evolves by the Gauss–Markov
/// recursion. A Rician K-factor concentrates the power in the fixed
/// component of the first tap, modelling the strong direct path of the
/// paper's office testbed where deep fades are rare.
#[derive(Debug, Clone)]
pub struct FadingChannel {
    los: Vec<Complex64>,
    scattered: Vec<Complex64>,
    scatter_powers: Vec<f64>,
    taps: Vec<Complex64>,
    rho: f64,
    update_interval: usize,
    samples_until_update: usize,
}

impl FadingChannel {
    /// Creates a channel with fresh random taps.
    ///
    /// * `profile` — power delay profile.
    /// * `coherence_time_s` — time for the tap autocorrelation to decay
    ///   to 1/2; `f64::INFINITY` freezes the channel (block fading).
    /// * `update_interval` — samples between tap updates (80 = one OFDM
    ///   symbol is a good default).
    ///
    /// # Panics
    ///
    /// Panics if `coherence_time_s <= 0` or `update_interval == 0`.
    pub fn new<R: Rng + ?Sized>(
        profile: DelayProfile,
        coherence_time_s: f64,
        update_interval: usize,
        rng: &mut R,
    ) -> FadingChannel {
        FadingChannel::new_rician(profile, 0.0, coherence_time_s, update_interval, rng)
    }

    /// Creates a Rician channel: the first tap carries a fixed
    /// line-of-sight component holding `k_factor / (k_factor + 1)` of
    /// its power (`k_factor = 0` degenerates to Rayleigh). Typical
    /// indoor LOS links have K of 5–20 (7–13 dB).
    ///
    /// # Panics
    ///
    /// Panics if `k_factor < 0`, `coherence_time_s <= 0` or
    /// `update_interval == 0`.
    pub fn new_rician<R: Rng + ?Sized>(
        profile: DelayProfile,
        k_factor: f64,
        coherence_time_s: f64,
        update_interval: usize,
        rng: &mut R,
    ) -> FadingChannel {
        assert!(k_factor >= 0.0, "K-factor must be nonnegative");
        assert!(coherence_time_s > 0.0, "coherence time must be positive");
        assert!(update_interval > 0, "update interval must be positive");
        let mut los = vec![Complex64::ZERO; profile.len()];
        let mut scatter_powers: Vec<f64> = profile.powers().to_vec();
        if k_factor > 0.0 {
            let p0 = scatter_powers[0];
            let los_power = p0 * k_factor / (k_factor + 1.0);
            scatter_powers[0] = p0 / (k_factor + 1.0);
            let phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            los[0] = Complex64::from_polar(los_power.sqrt(), phase);
        }
        let scattered: Vec<Complex64> = scatter_powers
            .iter()
            .map(|&p| complex_gaussian(rng, p))
            .collect();
        let taps: Vec<Complex64> = los.iter().zip(&scattered).map(|(l, sc)| *l + *sc).collect();
        let rho = if coherence_time_s.is_infinite() {
            1.0
        } else {
            let updates_per_coherence = coherence_time_s * SAMPLE_RATE / update_interval as f64;
            // rho^updates_per_coherence = 1/2
            0.5f64.powf(1.0 / updates_per_coherence.max(1e-9))
        };
        drop(profile);
        FadingChannel {
            los,
            scattered,
            scatter_powers,
            taps,
            rho,
            update_interval,
            samples_until_update: update_interval,
        }
    }

    /// The Gauss–Markov memory coefficient in use.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Current tap values (for tests and analysis).
    pub fn taps(&self) -> &[Complex64] {
        &self.taps
    }

    fn evolve<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.rho >= 1.0 {
            return;
        }
        let innovation = (1.0 - self.rho * self.rho).sqrt();
        for ((sc, &p), (tap, los)) in self
            .scattered
            .iter_mut()
            .zip(&self.scatter_powers)
            .zip(self.taps.iter_mut().zip(&self.los))
        {
            let fresh = complex_gaussian(rng, p);
            *sc = sc.scale(self.rho) + fresh.scale(innovation);
            *tap = *los + *sc;
        }
    }

    /// Convolves `input` with the (evolving) tap vector.
    ///
    /// The output has the same length as the input; the convolution tail
    /// beyond the input length is truncated (the cyclic prefix of OFDM
    /// symbols absorbs inter-symbol leakage as long as the profile is
    /// shorter than the CP).
    pub fn process<R: Rng + ?Sized>(&mut self, input: &[Complex64], rng: &mut R) -> Vec<Complex64> {
        let l = self.taps.len();
        let mut out = vec![Complex64::ZERO; input.len()];
        for (n, slot) in out.iter_mut().enumerate() {
            self.samples_until_update -= 1;
            if self.samples_until_update == 0 {
                self.evolve(rng);
                self.samples_until_update = self.update_interval;
            }
            let mut acc = Complex64::ZERO;
            for (k, tap) in self.taps.iter().enumerate().take(l.min(n + 1)) {
                acc += *tap * input[n - k];
            }
            *slot = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flat_profile_is_single_tap() {
        let p = DelayProfile::flat();
        assert_eq!(p.len(), 1);
        assert_eq!(p.powers(), &[1.0]);
    }

    #[test]
    fn exponential_profile_normalises() {
        let p = DelayProfile::exponential(8, 0.5);
        assert_eq!(p.len(), 8);
        let total: f64 = p.powers().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p.powers()[0] > p.powers()[7]);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_profile_rejected() {
        DelayProfile::exponential(0, 0.5);
    }

    #[test]
    fn static_channel_is_pure_convolution() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = FadingChannel::new(DelayProfile::flat(), f64::INFINITY, 80, &mut rng);
        let h = ch.taps()[0];
        let input: Vec<Complex64> = (0..100).map(|k| Complex64::new(k as f64, 0.5)).collect();
        let out = ch.process(&input, &mut rng);
        for (o, i) in out.iter().zip(&input) {
            assert!((*o - *i * h).abs() < 1e-12);
        }
    }

    #[test]
    fn infinite_coherence_freezes_taps() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ch = FadingChannel::new(
            DelayProfile::exponential(4, 0.5),
            f64::INFINITY,
            10,
            &mut rng,
        );
        let before = ch.taps().to_vec();
        let input = vec![Complex64::ONE; 1000];
        ch.process(&input, &mut rng);
        assert_eq!(ch.taps(), &before[..]);
        assert!((ch.rho() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finite_coherence_evolves_taps() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut ch = FadingChannel::new(DelayProfile::flat(), 1e-3, 80, &mut rng);
        let before = ch.taps().to_vec();
        let input = vec![Complex64::ONE; 8000];
        ch.process(&input, &mut rng);
        assert_ne!(ch.taps(), &before[..]);
        assert!(ch.rho() < 1.0);
    }

    #[test]
    fn rho_halves_correlation_at_coherence_time() {
        let update = 80usize;
        let coherence = 500e-6;
        let mut rng = StdRng::seed_from_u64(1);
        let ch = FadingChannel::new(DelayProfile::flat(), coherence, update, &mut rng);
        let updates_per_coherence = coherence * SAMPLE_RATE / update as f64;
        let decay = ch.rho().powf(updates_per_coherence);
        assert!((decay - 0.5).abs() < 1e-9, "decay {decay}");
    }

    #[test]
    fn average_channel_power_is_unit() {
        // Over many channel realisations the mean output power equals
        // the input power (profile normalised to 1).
        let mut rng = StdRng::seed_from_u64(21);
        let input = vec![Complex64::ONE; 256];
        let mut total = 0.0;
        let reps = 3000;
        for _ in 0..reps {
            let mut ch = FadingChannel::new(
                DelayProfile::exponential(4, 0.5),
                f64::INFINITY,
                80,
                &mut rng,
            );
            let out = ch.process(&input, &mut rng);
            total += carpool_phy::math::mean_power(&out[8..]); // skip transient
        }
        let avg = total / reps as f64;
        assert!((avg - 1.0).abs() < 0.1, "avg power {avg}");
    }

    #[test]
    fn evolution_preserves_tap_power_statistics() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut ch = FadingChannel::new(DelayProfile::flat(), 50e-6, 16, &mut rng);
        let input = vec![Complex64::ONE; 16];
        let mut acc = 0.0;
        let reps = 20_000;
        for _ in 0..reps {
            ch.process(&input, &mut rng);
            acc += ch.taps()[0].norm_sqr();
        }
        let avg = acc / reps as f64;
        // The Gauss-Markov tap process is strongly autocorrelated at a
        // 50 us coherence time, so the sample-mean variance stays high
        // even at 20k reps; 0.1 matches the sibling power test above.
        assert!((avg - 1.0).abs() < 0.1, "avg tap power {avg}");
    }
}
