//! Composite link model: fading → CFO → AWGN, with the USRP power
//! calibration used by the paper's experiments.
//!
//! The paper sweeps the USRP transmit "power magnitude" from 0.0125 to
//! 0.2 (fraction of the XCVR2450's 20 dBm maximum). The simulator maps
//! that knob to receive SNR with [`power_magnitude_to_snr_db`]: doubling
//! the magnitude adds 3 dB (it is an amplitude-squared power scale), and
//! the anchor point is calibrated so the standard PHY's BER curves land
//! in the ranges reported in the paper's Fig. 11/12.

use crate::cfo::ResidualCfo;
use crate::fading::{DelayProfile, FadingChannel, SAMPLE_RATE};
use crate::noise::Awgn;
use carpool_phy::math::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SNR (dB) corresponding to the paper's lowest power magnitude 0.0125.
///
/// Chosen so that at magnitude 0.0125 QAM64 is heavily errored while
/// BPSK is nearly clean, and at 0.2 all modulations decode well — the
/// qualitative regime of the paper's Fig. 11.
pub(crate) const SNR_AT_MIN_POWER_DB: f64 = 14.0;
/// The paper's minimum power magnitude setting.
pub(crate) const MIN_POWER_MAGNITUDE: f64 = 0.0125;

/// Maps a USRP power magnitude (0.0125–0.2 in the paper) to receive SNR.
///
/// # Panics
///
/// Panics if `magnitude` is not positive.
///
/// # Examples
///
/// ```
/// use carpool_channel::link::power_magnitude_to_snr_db;
/// let low = power_magnitude_to_snr_db(0.0125);
/// let high = power_magnitude_to_snr_db(0.2);
/// assert!((high - low - 12.04).abs() < 0.01); // 16x power = ~12 dB
/// ```
pub fn power_magnitude_to_snr_db(magnitude: f64) -> f64 {
    assert!(magnitude > 0.0, "power magnitude must be positive");
    SNR_AT_MIN_POWER_DB + 10.0 * (magnitude / MIN_POWER_MAGNITUDE).log10()
}

/// A complete link: time-varying multipath fading, residual CFO and AWGN.
///
/// Build with [`LinkChannel::builder`]; process whole frames with
/// [`LinkChannel::transmit`].
#[derive(Debug)]
pub struct LinkChannel {
    fading: Option<FadingChannel>,
    cfo: Option<ResidualCfo>,
    awgn: Option<Awgn>,
    rng: StdRng,
    obs: carpool_obs::Obs,
}

impl LinkChannel {
    /// Starts building a link channel.
    pub fn builder() -> LinkChannelBuilder {
        LinkChannelBuilder::default()
    }

    /// Attaches an observability handle; `transmit` then reports frame
    /// and sample counts plus a `channel.transmit` timing span.
    pub fn with_obs(mut self, obs: carpool_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Passes a frame of baseband samples through the link.
    pub fn transmit(&mut self, samples: &[Complex64]) -> Vec<Complex64> {
        let _span = self.obs.span(carpool_obs::names::CHANNEL_TRANSMIT);
        let mut buf = match &mut self.fading {
            Some(f) => f.process(samples, &mut self.rng),
            None => samples.to_vec(), // lint:allow(hot-alloc): per-frame waveform copy for in-place channel application
        };
        if let Some(cfo) = &mut self.cfo {
            cfo.apply(&mut buf);
        }
        if let Some(awgn) = &self.awgn {
            awgn.apply(&mut buf, &mut self.rng);
        }
        if self.obs.enabled() {
            self.obs.counter("channel.frames", 1);
            self.obs.counter("channel.samples", samples.len() as u64);
        }
        buf
    }
}

/// Builder for [`LinkChannel`].
#[derive(Debug, Clone)]
pub struct LinkChannelBuilder {
    snr_db: Option<f64>,
    profile: DelayProfile,
    coherence_time_s: Option<f64>,
    rician_k: f64,
    update_interval: usize,
    cfo_hz: f64,
    seed: u64,
}

impl Default for LinkChannelBuilder {
    fn default() -> Self {
        LinkChannelBuilder {
            snr_db: None,
            profile: DelayProfile::flat(),
            coherence_time_s: None,
            rician_k: 0.0,
            update_interval: 80,
            cfo_hz: 0.0,
            seed: 0,
        }
    }
}

impl LinkChannelBuilder {
    /// Sets AWGN at the given SNR. Without this call the link is
    /// noiseless.
    pub fn snr_db(&mut self, snr_db: f64) -> &mut Self {
        self.snr_db = Some(snr_db);
        self
    }

    /// Sets AWGN from a USRP-style power magnitude (see
    /// [`power_magnitude_to_snr_db`]).
    pub fn power_magnitude(&mut self, magnitude: f64) -> &mut Self {
        self.snr_db = Some(power_magnitude_to_snr_db(magnitude));
        self
    }

    /// Sets the multipath power delay profile (default: flat single tap).
    pub fn profile(&mut self, profile: DelayProfile) -> &mut Self {
        self.profile = profile;
        self
    }

    /// Enables Rayleigh fading with the given coherence time in seconds.
    /// Without this call the channel, if faded at all, is static.
    pub fn coherence_time(&mut self, seconds: f64) -> &mut Self {
        self.coherence_time_s = Some(seconds);
        self
    }

    /// Enables *static* Rayleigh fading (a random draw per link that
    /// never evolves).
    pub fn static_fading(&mut self) -> &mut Self {
        self.coherence_time_s = Some(f64::INFINITY);
        self
    }

    /// Rician K-factor of the first tap (default 0 = Rayleigh). Indoor
    /// line-of-sight links like the paper's office testbed are well
    /// modelled by K of 5-20.
    pub fn rician_k(&mut self, k: f64) -> &mut Self {
        self.rician_k = k;
        self
    }

    /// Samples between fading updates (default 80 = one OFDM symbol).
    pub fn update_interval(&mut self, samples: usize) -> &mut Self {
        self.update_interval = samples;
        self
    }

    /// Residual carrier frequency offset in Hz (default 0).
    pub fn cfo_hz(&mut self, hz: f64) -> &mut Self {
        self.cfo_hz = hz;
        self
    }

    /// RNG seed for reproducibility (default 0).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Builds the channel.
    pub fn build(&self) -> LinkChannel {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let fading = self.coherence_time_s.map(|ct| {
            FadingChannel::new_rician(
                self.profile.clone(),
                self.rician_k,
                ct,
                self.update_interval,
                &mut rng,
            )
        });
        let cfo = if self.cfo_hz != 0.0 {
            Some(ResidualCfo::new(self.cfo_hz, SAMPLE_RATE))
        } else {
            None
        };
        let awgn = self.snr_db.map(Awgn::new);
        LinkChannel {
            fading,
            cfo,
            awgn,
            rng,
            obs: carpool_obs::Obs::noop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carpool_phy::math::mean_power;

    fn tone(n: usize) -> Vec<Complex64> {
        (0..n).map(|k| Complex64::cis(k as f64 * 0.05)).collect()
    }

    #[test]
    fn noiseless_identity_link() {
        let mut link = LinkChannel::builder().build();
        let input = tone(500);
        assert_eq!(link.transmit(&input), input);
    }

    #[test]
    fn awgn_only_link_perturbs() {
        let mut link = LinkChannel::builder().snr_db(10.0).seed(4).build();
        let input = tone(500);
        let out = link.transmit(&input);
        assert_ne!(out, input);
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn power_mapping_is_3db_per_doubling() {
        let a = power_magnitude_to_snr_db(0.05);
        let b = power_magnitude_to_snr_db(0.1);
        assert!((b - a - 10.0 * 2f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_output() {
        let input = tone(300);
        let mut a = LinkChannel::builder()
            .snr_db(12.0)
            .static_fading()
            .cfo_hz(200.0)
            .seed(77)
            .build();
        let mut b = LinkChannel::builder()
            .snr_db(12.0)
            .static_fading()
            .cfo_hz(200.0)
            .seed(77)
            .build();
        assert_eq!(a.transmit(&input), b.transmit(&input));
    }

    #[test]
    fn different_seeds_differ() {
        let input = tone(300);
        let mut a = LinkChannel::builder().static_fading().seed(1).build();
        let mut b = LinkChannel::builder().static_fading().seed(2).build();
        assert_ne!(a.transmit(&input), b.transmit(&input));
    }

    #[test]
    fn fading_preserves_length_and_finite_power() {
        let mut link = LinkChannel::builder()
            .profile(DelayProfile::exponential(6, 0.6))
            .coherence_time(1e-3)
            .snr_db(25.0)
            .seed(8)
            .build();
        let input = tone(2000);
        let out = link.transmit(&input);
        assert_eq!(out.len(), input.len());
        assert!(mean_power(&out).is_finite());
        assert!(out.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn obs_counts_frames_and_samples() {
        use carpool_obs::{MemoryRecorder, Obs};
        use std::sync::Arc;

        let recorder = Arc::new(MemoryRecorder::new());
        let mut link = LinkChannel::builder()
            .snr_db(20.0)
            .seed(3)
            .build()
            .with_obs(Obs::with_recorder(recorder.clone()));
        link.transmit(&tone(400));
        link.transmit(&tone(100));
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("channel.frames"), 2);
        assert_eq!(snap.counter("channel.samples"), 500);
        let span = snap
            .histogram("span.channel.transmit")
            .expect("span histogram");
        assert_eq!(span.count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_power_magnitude_rejected() {
        power_magnitude_to_snr_db(0.0);
    }
}
