//! carpool-par: deterministic multi-core execution for trial loops.
//!
//! The figure/table benches replay independent Monte-Carlo trials whose
//! RNG streams are keyed by item index (`seed + i`), so they are
//! embarrassingly parallel *by construction*. This crate provides the
//! minimal std-only machinery to exploit that:
//!
//! - [`par_map_indexed`] — a scoped worker pool (`std::thread::scope`)
//!   that maps `f(i, &items[i])` over a slice and returns results in
//!   item order. Work is claimed from a shared atomic cursor, but the
//!   *output* is keyed purely by index, so 1-thread and N-thread runs
//!   produce identical bytes.
//! - [`par_map_indexed_scratch`] — the same pool with a per-worker
//!   scratch workspace built once per thread, so decode buffers are
//!   reused across every frame a worker claims instead of reallocated
//!   per item.
//! - [`par_map_reduce`] — the same map followed by a serial, in-index-
//!   order fold: the deterministic reduction used to merge per-trial
//!   tallies (and per-worker observability shards) exactly.
//!
//! # Determinism contract
//!
//! Callers must key any randomness by the item index (never by thread
//! identity or scheduling order), and must not share mutable state
//! between items. Under that contract the output of every function in
//! this crate is a pure function of `(items, f)` — the thread count only
//! changes wall-clock time.
//!
//! Observability rides the same contract: workers that record events or
//! flight-recorder trace records do so into *private* per-item shards,
//! which the caller merges serially in item order afterwards (see
//! `CarpoolLink::deliver_all` and `FlightRecorder::absorb`). That keeps
//! every trace export byte-identical at any thread count.
//!
//! # Thread count
//!
//! [`thread_count`] resolves, in order: a process-wide programmatic
//! override ([`set_thread_override`], used by the CLI `--threads` flag),
//! the `CARPOOL_THREADS` environment variable, and finally
//! `std::thread::available_parallelism()`. A count of 1 (or a
//! single-item input) takes a serial fallback path with no thread spawns.
//!
//! Worker panics never hang or tear down the process: both the pooled
//! and the serial path report them as [`ParError::WorkerPanic`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread;

/// Errors surfaced by the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParError {
    /// A worker panicked while mapping an item. The panic payload is
    /// reported through the standard panic hook (stderr); the pool
    /// converts it into this error instead of propagating or hanging.
    WorkerPanic,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::WorkerPanic => write!(f, "a parallel worker panicked"),
        }
    }
}

impl std::error::Error for ParError {}

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide thread-count override.
/// Takes precedence over `CARPOOL_THREADS` and auto-detection; a value
/// of `Some(0)` is treated as `None`.
pub fn set_thread_override(threads: Option<usize>) {
    // ordering: standalone counter-style cell; no other memory is published
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the worker-thread count: programmatic override, then the
/// `CARPOOL_THREADS` environment variable, then
/// `available_parallelism()` (1 if even that is unavailable).
pub fn thread_count() -> usize {
    // ordering: standalone counter-style cell; stale reads only pick an
    // old thread count, never tear data
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("CARPOOL_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f(i, &items[i])` over `items` on [`thread_count`] scoped worker
/// threads, returning the results in item order.
///
/// Workers claim indices from a shared atomic cursor, so scheduling is
/// dynamic, but each result slot is keyed by its item index: the output
/// is byte-identical across any thread count (see the crate-level
/// determinism contract).
///
/// # Errors
///
/// Returns [`ParError::WorkerPanic`] if `f` panics on any item (on the
/// serial path too, for a uniform contract).
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_scratch(items, || (), |(), i, t| f(i, t))
}

/// [`par_map_indexed`] with a per-worker scratch workspace: each worker
/// thread calls `make_scratch()` exactly once and threads the value
/// through every item it claims, so expensive reusable buffers (e.g. a
/// PHY receive scratch) are built per *worker*, not per item.
///
/// The determinism contract gains one clause: `f`'s *result* must not
/// depend on the scratch's history — scratch is for buffer reuse, never
/// for carrying state between items (which items share a worker is a
/// scheduling accident).
///
/// # Errors
///
/// Returns [`ParError::WorkerPanic`] if `make_scratch` or `f` panics.
pub fn par_map_indexed_scratch<T, R, S, G, F>(
    items: &[T],
    make_scratch: G,
    f: F,
) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 {
        return serial_map(items, &make_scratch, &f);
    }

    let cursor = AtomicUsize::new(0);
    let shards: Vec<Result<Vec<(usize, R)>, ParError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = make_scratch();
                    let mut shard: Vec<(usize, R)> = Vec::new(); // lint:allow(hot-alloc): per-batch pool plumbing, amortized over the trial batch
                    loop {
                        // ordering: work-claim counter only; results are
                        // published by the scope join, not by this atomic
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        shard.push((i, f(&mut scratch, i, &items[i]))); // lint:allow(hot-alloc): per-batch pool plumbing, amortized over the trial batch
                    }
                    shard
                })
            })
            .collect(); // lint:allow(hot-alloc): per-batch pool plumbing, amortized over the trial batch
                        // Joining every handle (instead of letting the scope implicitly
                        // wait) converts worker panics into Err values here rather than
                        // re-raising them when the scope closes.
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| ParError::WorkerPanic))
            .collect() // lint:allow(hot-alloc): per-batch pool plumbing, amortized over the trial batch
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len()); // lint:allow(hot-alloc): per-batch pool plumbing, amortized over the trial batch
    slots.resize_with(items.len(), || None);
    for shard in shards {
        for (i, r) in shard? {
            slots[i] = Some(r);
        }
    }
    let mut out = Vec::with_capacity(items.len()); // lint:allow(hot-alloc): per-batch pool plumbing, amortized over the trial batch
    for slot in slots {
        match slot {
            Some(r) => out.push(r),
            // A slot can only stay empty if its owner died; the join
            // above reports that, so this is a defensive second net.
            None => return Err(ParError::WorkerPanic),
        }
    }
    Ok(out)
}

/// Runs `num_shards` stateful shards through `epochs` barrier-
/// synchronized steps with deterministic cross-shard message exchange —
/// the primitive behind the sharded MAC event engine.
///
/// Each shard `s` gets a state from `build(s)`. Every epoch, every
/// shard receives the messages routed to it (`route(&msg) == s`) that
/// were emitted in the *previous* epoch, steps via
/// `step(&mut state, epoch, inbox, outbox)`, and publishes its outbox
/// for the next epoch. Messages emitted in the final epoch are
/// discarded. After the last epoch each state is converted by
/// `finish`, and the results are returned in shard order.
///
/// # Determinism contract
///
/// The inbox a shard observes is assembled by scanning source shards in
/// ascending index order, preserving each source's emission order — a
/// pure function of `(build, step, route)`, independent of thread count
/// and scheduling. Shards are distributed to workers by stride
/// (worker `w` owns shards `w, w + W, ...`), and each worker steps its
/// shards in ascending order, so per-shard trajectories never depend on
/// the worker layout either. Messages cross shard boundaries *only*
/// through the outbox; `step` must not share mutable state between
/// shards through other channels.
///
/// Epoch 0's inbox is always empty.
///
/// # Errors
///
/// Returns [`ParError::WorkerPanic`] if `build`, `step`, `route`, or
/// `finish` panics in any worker. Panics never hang the barrier: a
/// failing worker keeps participating in the epoch barrier until every
/// worker has observed the failure, then all exit together.
pub fn run_sharded<S, M, R, B, T, Rt, Fi>(
    num_shards: usize,
    epochs: usize,
    build: B,
    step: T,
    route: Rt,
    finish: Fi,
) -> Result<Vec<R>, ParError>
where
    S: Send,
    M: Clone + Send,
    R: Send,
    B: Fn(usize) -> S + Sync,
    T: Fn(&mut S, usize, &[M], &mut Vec<M>) + Sync,
    Rt: Fn(&M) -> usize + Sync,
    Fi: Fn(S) -> R + Sync,
{
    if num_shards == 0 {
        return Ok(Vec::new()); // lint:allow(hot-alloc): empty Vec never allocates
    }
    let workers = thread_count().min(num_shards).max(1);

    // Double-buffered per-source mailboxes: epoch `e` reads the buffer
    // written during epoch `e - 1` and writes the other one, so one
    // barrier per epoch is enough (reads and writes always touch
    // disjoint buffers).
    let mailboxes: Vec<Vec<Mutex<Vec<M>>>> = (0..2)
        // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
        .map(|_| (0..num_shards).map(|_| Mutex::new(Vec::new())).collect())
        .collect(); // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
    let barrier = Barrier::new(workers);
    // Earliest epoch at which any worker failed (MAX = no failure).
    // The tag matters: a fast worker that passed barrier `e` may panic
    // in epoch `e + 1` *while a slow worker is still waking from
    // barrier `e`* — an untagged flag would make the slow worker exit
    // one epoch early and leave every later barrier one short
    // (deadlock). Exiting only when `failed_at <= epoch` guarantees
    // every worker participates in exactly the same set of barriers:
    // all of 0..=failed_at.
    let failed_at = AtomicUsize::new(usize::MAX);

    let worker = |w: usize| -> Result<Vec<(usize, R)>, ParError> {
        let built: Result<Vec<(usize, S, Vec<M>)>, ParError> =
            catch_unwind(AssertUnwindSafe(|| {
                (w..num_shards)
                    .step_by(workers)
                    // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
                    .map(|s| (s, build(s), Vec::new()))
                    .collect() // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
            }))
            .map_err(|_| ParError::WorkerPanic);
        let mut local = match built {
            Ok(local) => local,
            Err(e) => {
                // ordering: AcqRel — the failure tag must be visible to
                // every peer once it passes the epoch barrier
                failed_at.fetch_min(0, Ordering::AcqRel);
                // Join the epoch-0 barrier once so no peer blocks on a
                // missing worker; every worker observes the epoch-0
                // failure right after that barrier and exits, so
                // waiting further epochs would deadlock against
                // already-gone peers.
                if epochs > 0 {
                    barrier.wait();
                }
                return Err(e);
            }
        };
        let mut inbox: Vec<M> = Vec::new(); // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
        for epoch in 0..epochs {
            let read = &mailboxes[epoch % 2];
            let write = &mailboxes[(epoch + 1) % 2];
            let ok = catch_unwind(AssertUnwindSafe(|| {
                for (s, state, out) in local.iter_mut() {
                    inbox.clear();
                    for src in read.iter() {
                        let guard = src
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        for m in guard.iter() {
                            if route(m) == *s {
                                inbox.push(m.clone()); // lint:allow(hot-alloc): reused inbox, amortized over epochs
                            }
                        }
                    }
                    out.clear();
                    step(state, epoch, &inbox, out);
                    let mut slot = write[*s]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot.clear();
                    slot.extend(out.iter().cloned()); // lint:allow(hot-alloc): reused mailbox, amortized over epochs
                }
            }))
            .is_ok();
            if !ok {
                // ordering: AcqRel — the failure tag must be visible to
                // every peer once it passes the epoch barrier
                failed_at.fetch_min(epoch, Ordering::AcqRel);
            }
            barrier.wait();
            // A failure tagged `epoch` was stored before its worker
            // arrived at barrier `epoch`, so after that barrier it is
            // visible to everyone; a failure tagged later than `epoch`
            // must be ignored for now — the panicking worker still
            // waits on the barriers in between.
            // ordering: Acquire — pairs with the failing worker's
            // AcqRel fetch_min; the barrier already orders it, Acquire
            // keeps the edge explicit
            if failed_at.load(Ordering::Acquire) <= epoch {
                return Err(ParError::WorkerPanic);
            }
        }
        catch_unwind(AssertUnwindSafe(|| {
            local
                .drain(..)
                .map(|(s, state, _)| (s, finish(state)))
                .collect() // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
        }))
        .map_err(|_| ParError::WorkerPanic)
    };

    let per_worker: Vec<Result<Vec<(usize, R)>, ParError>> = if workers == 1 {
        vec![worker(0)] // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || worker(w)))
                .collect(); // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Err(ParError::WorkerPanic)))
                .collect() // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
        })
    };

    let mut slots: Vec<Option<R>> = Vec::with_capacity(num_shards); // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
    slots.resize_with(num_shards, || None);
    for worker_result in per_worker {
        for (s, r) in worker_result? {
            slots[s] = Some(r);
        }
    }
    let mut out = Vec::with_capacity(num_shards); // lint:allow(hot-alloc): per-run pool plumbing, amortized over the scenario
    for slot in slots {
        match slot {
            Some(r) => out.push(r),
            None => return Err(ParError::WorkerPanic),
        }
    }
    Ok(out)
}

/// [`par_map_indexed`] followed by a serial fold of the mapped results
/// in item order — the deterministic reduction for merging per-trial
/// tallies. `fold` runs on the calling thread only.
///
/// # Errors
///
/// Returns [`ParError::WorkerPanic`] if `map` panics on any item.
pub fn par_map_reduce<T, R, A, F, G>(items: &[T], map: F, init: A, fold: G) -> Result<A, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    let mapped = par_map_indexed(items, map)?;
    Ok(mapped.into_iter().fold(init, fold))
}

/// Single-threaded path: same in-order semantics, same panic-to-error
/// contract, same one-scratch-per-worker discipline, no thread spawns.
fn serial_map<T, R, S, G, F>(items: &[T], make_scratch: &G, f: &F) -> Result<Vec<R>, ParError>
where
    G: Fn() -> S,
    F: Fn(&mut S, usize, &T) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        let mut scratch = make_scratch();
        items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect() // lint:allow(hot-alloc): per-batch pool plumbing, amortized over the trial batch
    }))
    .map_err(|_| ParError::WorkerPanic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-wide thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(threads: usize, body: impl FnOnce() -> R) -> R {
        let _guard = OVERRIDE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_thread_override(Some(threads));
        let out = body();
        set_thread_override(None);
        out
    }

    /// An index-keyed xorshift, the same discipline the benches use.
    fn trial(i: usize) -> u64 {
        let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    }

    #[test]
    fn output_is_in_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = with_threads(4, || {
            par_map_indexed(&items, |i, &x| (i, trial(x))).unwrap()
        });
        for (k, &(i, v)) in out.iter().enumerate() {
            assert_eq!(i, k);
            assert_eq!(v, trial(k));
        }
    }

    #[test]
    fn one_thread_and_many_threads_agree_exactly() {
        let items: Vec<usize> = (0..100).collect();
        let serial = with_threads(1, || par_map_indexed(&items, |_, &x| trial(x)).unwrap());
        for threads in [2, 3, 4, 8] {
            let parallel = with_threads(threads, || {
                par_map_indexed(&items, |_, &x| trial(x)).unwrap()
            });
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: [u8; 0] = [];
        assert_eq!(
            par_map_indexed(&empty, |_, &x| x).unwrap(),
            Vec::<u8>::new()
        );
        assert_eq!(
            par_map_indexed(&[7u8], |i, &x| (i, x)).unwrap(),
            vec![(0, 7)]
        );
    }

    #[test]
    fn scratch_pool_matches_plain_pool_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let plain = with_threads(1, || par_map_indexed(&items, |_, &x| trial(x)).unwrap());
        for threads in [1, 2, 4, 8] {
            let scratched = with_threads(threads, || {
                par_map_indexed_scratch(
                    &items,
                    || Vec::<u64>::with_capacity(8),
                    |buf, _, &x| {
                        // Reuse the buffer the way a decode scratch is
                        // reused: clear, fill, read back.
                        buf.clear();
                        buf.push(trial(x));
                        buf[0]
                    },
                )
                .unwrap()
            });
            assert_eq!(plain, scratched, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_is_built_once_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        let builds = AtomicUsize::new(0);
        with_threads(4, || {
            par_map_indexed_scratch(
                &items,
                || {
                    // ordering: standalone test counter
                    builds.fetch_add(1, Ordering::Relaxed);
                },
                |(), i, _| i,
            )
            .unwrap()
        });
        // ordering: standalone test counter
        assert_eq!(builds.load(Ordering::Relaxed), 4);
        builds.store(0, Ordering::Relaxed);
        with_threads(1, || {
            par_map_indexed_scratch(
                &items,
                || builds.fetch_add(1, Ordering::Relaxed),
                |_, i, _| i,
            )
            .unwrap()
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scratch_factory_panic_becomes_error() {
        let items: Vec<usize> = (0..8).collect();
        for threads in [1, 4] {
            let err = with_threads(threads, || {
                par_map_indexed_scratch(&items, || -> () { panic!("boom") }, |(), i, _| i)
                    .unwrap_err()
            });
            assert_eq!(err, ParError::WorkerPanic, "threads = {threads}");
        }
    }

    #[test]
    fn reduce_folds_in_index_order() {
        let items: Vec<usize> = (0..50).collect();
        let concat = with_threads(4, || {
            par_map_reduce(
                &items,
                |i, _| i.to_string(),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc.push(',');
                    acc
                },
            )
            .unwrap()
        });
        let expected: String = (0..50).map(|i| format!("{i},")).collect();
        assert_eq!(concat, expected);
    }

    #[test]
    fn worker_panic_becomes_error() {
        let items: Vec<usize> = (0..64).collect();
        let err = with_threads(4, || {
            par_map_indexed(&items, |i, _| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
            .unwrap_err()
        });
        assert_eq!(err, ParError::WorkerPanic);
        assert_eq!(err.to_string(), "a parallel worker panicked");
    }

    #[test]
    fn serial_panic_becomes_error_too() {
        let items = [1u8];
        let err = with_threads(1, || {
            par_map_indexed(&items, |_, _| -> u8 { panic!("boom") }).unwrap_err()
        });
        assert_eq!(err, ParError::WorkerPanic);
    }

    /// Ring diffusion: each shard holds a value, sends it to both
    /// neighbours each epoch, and accumulates a hash of what it hears —
    /// order-sensitive on purpose, so any inbox-order wobble shows up.
    fn diffuse(num_shards: usize, epochs: usize) -> Vec<u64> {
        run_sharded(
            num_shards,
            epochs,
            trial,
            |state: &mut u64, _epoch, inbox: &[(usize, u64)], outbox| {
                for &(_, v) in inbox {
                    *state = state.rotate_left(7).wrapping_mul(31).wrapping_add(v);
                }
                let s = (*state % num_shards as u64) as usize;
                outbox.push(((s + 1) % num_shards, *state));
                outbox.push(((s + num_shards - 1) % num_shards, *state));
            },
            |m: &(usize, u64)| m.0,
            |state| state,
        )
        .unwrap()
    }

    #[test]
    fn sharded_results_are_thread_count_invariant() {
        let reference = with_threads(1, || diffuse(7, 5));
        for threads in [2, 3, 4, 8, 16] {
            let got = with_threads(threads, || diffuse(7, 5));
            assert_eq!(reference, got, "threads = {threads}");
        }
    }

    #[test]
    fn sharded_inbox_scans_sources_in_ascending_order() {
        // Every shard messages shard 0 each epoch; shard 0 records the
        // exact arrival order it observed.
        for threads in [1, 4] {
            let out = with_threads(threads, || {
                run_sharded(
                    5,
                    2,
                    |s| Vec::<usize>::new().tap_push(s),
                    |state: &mut Vec<usize>, _epoch, inbox: &[(usize, usize)], outbox| {
                        let me = state[0];
                        if me == 0 {
                            state.extend(inbox.iter().map(|m| m.1));
                        }
                        outbox.push((0, me));
                    },
                    |m: &(usize, usize)| m.0,
                    |state| state,
                )
                .unwrap()
            });
            // Epoch 1's inbox at shard 0: sources 0..5 in ascending order.
            assert_eq!(out[0], vec![0, 0, 1, 2, 3, 4], "threads = {threads}");
        }
    }

    #[test]
    fn sharded_epoch_zero_inbox_is_empty_and_last_outbox_is_dropped() {
        let heard = with_threads(2, || {
            run_sharded(
                3,
                1,
                |_s| 0usize,
                |state: &mut usize, _epoch, inbox: &[(usize, u8)], outbox| {
                    *state += inbox.len();
                    outbox.push(((*state + 1) % 3, 1));
                },
                |m: &(usize, u8)| m.0,
                |state| state,
            )
            .unwrap()
        });
        assert_eq!(heard, vec![0, 0, 0]);
    }

    #[test]
    fn sharded_worker_panic_is_reported_not_hung() {
        for threads in [1, 4] {
            let err = with_threads(threads, || {
                run_sharded(
                    6,
                    4,
                    |s| s,
                    |state: &mut usize, epoch, _inbox: &[(usize, u8)], _outbox| {
                        if *state == 3 && epoch == 2 {
                            panic!("boom");
                        }
                    },
                    |m: &(usize, u8)| m.0,
                    |state| state,
                )
                .unwrap_err()
            });
            assert_eq!(err, ParError::WorkerPanic, "threads = {threads}");
        }
    }

    #[test]
    fn sharded_build_panic_is_reported_not_hung() {
        let err = with_threads(4, || {
            run_sharded(
                6,
                3,
                |s| {
                    if s == 5 {
                        panic!("boom");
                    }
                    s
                },
                |_state: &mut usize, _epoch, _inbox: &[(usize, u8)], _outbox| {},
                |m: &(usize, u8)| m.0,
                |state| state,
            )
            .unwrap_err()
        });
        assert_eq!(err, ParError::WorkerPanic);
    }

    #[test]
    fn sharded_zero_shards_is_empty() {
        let out: Vec<u8> = run_sharded(
            0,
            3,
            |_s| 0u8,
            |_state: &mut u8, _epoch, _inbox: &[(usize, u8)], _outbox| {},
            |m: &(usize, u8)| m.0,
            |state| state,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    trait TapPush {
        fn tap_push(self, v: usize) -> Self;
    }

    impl TapPush for Vec<usize> {
        fn tap_push(mut self, v: usize) -> Self {
            self.push(v);
            self
        }
    }

    #[test]
    fn override_beats_env_and_zero_clears_it() {
        let _guard = OVERRIDE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_thread_override(Some(3));
        assert_eq!(thread_count(), 3);
        set_thread_override(Some(0));
        assert!(thread_count() >= 1);
        set_thread_override(None);
        assert!(thread_count() >= 1);
    }
}
