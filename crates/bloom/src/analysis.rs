//! Analytical and Monte-Carlo false-positive analysis of the A-HDR.
//!
//! Reproduces the derivation in paper Section 4.1: with `N` receivers and
//! `h` hashes per set, a given hash set false-positives with ratio
//! `r_FP = (1 - (1 - 1/48)^{hN})^h ≈ (1 - e^{-hN/48})^h`, minimised at
//! `h = (48/N) ln 2`. For N = 4..8 and h = 4 the ratio spans 0.31%–5.59%.

use crate::{AggregationHeader, BLOOM_BITS};
use rand::Rng;

/// Exact single-set false positive ratio for `hashes` hash functions and
/// `receivers` inserted addresses.
///
/// # Panics
///
/// Panics if `hashes` is zero.
pub fn false_positive_ratio(hashes: usize, receivers: usize) -> f64 {
    assert!(hashes > 0, "need at least one hash");
    let m = BLOOM_BITS as f64;
    let fill = 1.0 - (1.0 - 1.0 / m).powi((hashes * receivers) as i32);
    fill.powi(hashes as i32)
}

/// The approximate form used in the paper: `(1 - e^{-hN/48})^h`.
#[cfg(test)]
fn false_positive_ratio_approx(hashes: usize, receivers: usize) -> f64 {
    let m = BLOOM_BITS as f64;
    let fill = 1.0 - (-(hashes as f64) * receivers as f64 / m).exp();
    fill.powi(hashes as i32)
}

/// The optimal (real-valued) hash count `h = (48/N) ln 2`.
///
/// # Panics
///
/// Panics if `receivers` is zero.
pub fn optimal_hash_count(receivers: usize) -> f64 {
    assert!(receivers > 0, "need at least one receiver");
    BLOOM_BITS as f64 / receivers as f64 * std::f64::consts::LN_2
}

/// False positive ratio at the *optimal* hash count for `receivers`:
/// `r_FP = 0.5^{(48/N) ln 2}` — the quantity behind the paper's quoted
/// "0.31% to 5.59%" range for N = 4..8.
pub fn optimal_false_positive_ratio(receivers: usize) -> f64 {
    0.5f64.powf(optimal_hash_count(receivers))
}

/// Relative header overhead of the Bloom A-HDR versus listing `n`
/// 48-bit MAC addresses explicitly (the paper quotes 12.5% for n = 8).
pub fn ahdr_overhead_vs_explicit(n: usize) -> f64 {
    BLOOM_BITS as f64 / (48.0 * n as f64)
}

/// Monte-Carlo estimate of the per-set false positive ratio: builds
/// headers for `receivers` random addresses and probes them with fresh
/// random addresses.
pub fn measure_false_positive_ratio<R: Rng + ?Sized>(
    hashes: usize,
    receivers: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    measure_false_positive_ratio_obs(hashes, receivers, trials, rng, &carpool_obs::Obs::noop())
}

/// Like [`measure_false_positive_ratio`], but reports each probe to the
/// observability handle: `bloom.probes` / `bloom.false_hits` counters and
/// one [`carpool_obs::Event::AhdrCheck`] per probe (the outsider is never
/// aboard, so `expected` is always `Some(false)`), wrapped in a
/// `bloom.fp_measure` timing span.
pub fn measure_false_positive_ratio_obs<R: Rng + ?Sized>(
    hashes: usize,
    receivers: usize,
    trials: usize,
    rng: &mut R,
    obs: &carpool_obs::Obs,
) -> f64 {
    let _span = obs.span("bloom.fp_measure");
    let mut false_hits = 0usize;
    let mut probes = 0usize;
    for trial in 0..trials {
        let addrs: Vec<[u8; 6]> = (0..receivers).map(|_| rng.gen()).collect();
        // The receiver count was validated by the caller; a rejected header
        // would only skip the trial rather than abort the measurement.
        let Ok(hdr) = AggregationHeader::for_receivers(&addrs, hashes) else {
            continue;
        };
        let outsider: [u8; 6] = rng.gen();
        let station = outsider.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64);
        for i in 0..receivers {
            probes += 1;
            let hit = hdr.query(&outsider, i);
            if hit {
                false_hits += 1;
            }
            if obs.enabled() {
                obs.emit(
                    trial as f64,
                    carpool_obs::Event::AhdrCheck {
                        station,
                        matched: hit,
                        expected: Some(false),
                    },
                );
            }
        }
    }
    if obs.enabled() {
        obs.counter("bloom.probes", probes as u64);
        obs.counter("bloom.false_hits", false_hits as u64);
    }
    false_hits as f64 / probes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn obs_variant_matches_plain_and_counts_probes() {
        use carpool_obs::{MemoryRecorder, Obs};
        use std::sync::Arc;

        let recorder = Arc::new(MemoryRecorder::new());
        let obs = Obs::with_recorder(recorder.clone());
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let plain = measure_false_positive_ratio(4, 6, 500, &mut a);
        let traced = measure_false_positive_ratio_obs(4, 6, 500, &mut b, &obs);
        assert_eq!(plain, traced);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("bloom.probes"), 500 * 6);
        let hits = snap.counter("bloom.false_hits");
        assert_eq!(hits as f64 / (500.0 * 6.0), traced);
    }

    #[test]
    fn paper_quoted_range_for_4_to_8_receivers() {
        // Paper Section 4.1: "If the number of receivers is 4-8, the
        // false positive ratio ranges from 0.31% to 5.59%" — evaluated at
        // the optimal h for each N.
        let low = optimal_false_positive_ratio(4);
        let high = optimal_false_positive_ratio(8);
        assert!((low - 0.0031).abs() < 0.0003, "low {low}");
        assert!((high - 0.0559).abs() < 0.0005, "high {high}");
    }

    #[test]
    fn exact_and_approx_agree() {
        for n in 1..=8 {
            for h in 1..=8 {
                let e = false_positive_ratio(h, n);
                let a = false_positive_ratio_approx(h, n);
                assert!((e - a).abs() < 0.01, "h={h} n={n}: {e} vs {a}");
            }
        }
    }

    #[test]
    fn optimal_h_for_8_receivers_is_about_4() {
        // (48/8) ln 2 = 4.16 — the paper rounds to h = 4.
        let h = optimal_hash_count(8);
        assert!((h - 4.16).abs() < 0.01, "h {h}");
    }

    #[test]
    fn optimum_is_a_minimum() {
        for n in [4usize, 6, 8] {
            let h_opt = optimal_hash_count(n).round() as usize;
            let at = false_positive_ratio(h_opt, n);
            assert!(at <= false_positive_ratio(h_opt.saturating_sub(2).max(1), n));
            assert!(at <= false_positive_ratio(h_opt + 2, n));
        }
    }

    #[test]
    fn overhead_is_one_eighth_for_8_receivers() {
        assert!((ahdr_overhead_vs_explicit(8) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn measured_matches_analytical() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [4usize, 8] {
            let analytic = false_positive_ratio(4, n);
            let measured = measure_false_positive_ratio(4, n, 20_000, &mut rng);
            assert!(
                (measured - analytic).abs() < analytic * 0.35 + 0.002,
                "n={n}: measured {measured} analytic {analytic}"
            );
        }
    }

    #[test]
    fn ratio_grows_with_receivers() {
        let mut prev = 0.0;
        for n in 1..=8 {
            let r = false_positive_ratio(4, n);
            assert!(r > prev);
            prev = r;
        }
    }
}
