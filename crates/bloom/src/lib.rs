#![warn(missing_docs)]
//! # carpool-bloom — the coded Bloom filter aggregation header (A-HDR)
//!
//! Carpool indicates the receiver of every subframe with a 48-bit *coded
//! Bloom filter* carried in two BPSK-1/2 OFDM symbols right after the
//! preamble (paper Section 4.1). Position information is encoded in the
//! *choice of hash set*: subframe `i` inserts its receiver's MAC address
//! with the `i`-th family of `h` hash functions. A station checks each
//! hash set in turn; any all-ones match marks a candidate subframe.
//!
//! Bloom filters have no false negatives, so a station never misses its
//! subframe; false positives merely cost the energy of decoding an
//! irrelevant subframe (paper Section 8). With the optimal
//! `h = (48/N) ln 2` and N = 4..8 receivers the false positive ratio is
//! 0.31%–5.59%; the paper fixes `h = 4` for up to 8 receivers.
//!
//! # Examples
//!
//! ```
//! use carpool_bloom::AggregationHeader;
//!
//! let sta_a = [0x02, 0, 0, 0, 0, 0xAA];
//! let sta_b = [0x02, 0, 0, 0, 0, 0xBB];
//! let mut hdr = AggregationHeader::new(4);
//! hdr.insert(&sta_a, 0);
//! hdr.insert(&sta_b, 1);
//! assert!(hdr.query(&sta_b, 1));
//! assert_eq!(hdr.matched_indices(&sta_a, 2), vec![0]);
//! ```

pub mod analysis;

/// Width of the A-HDR Bloom filter in bits: two BPSK OFDM symbols at
/// coding rate 1/2 carry 2 x 48 / 2 = 48 information bits.
pub const BLOOM_BITS: usize = 48;

/// Maximum number of receivers the paper's implementation aggregates.
pub const MAX_RECEIVERS: usize = 8;

/// The paper's fixed hash count for up to [`MAX_RECEIVERS`] receivers.
pub const DEFAULT_HASHES: usize = 4;

/// Errors from A-HDR construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BloomError {
    /// The subframe index exceeds the supported receiver count.
    IndexOutOfRange {
        /// Offending subframe index.
        index: usize,
    },
    /// A bit buffer of the wrong length was supplied.
    WrongLength {
        /// Bits provided.
        actual: usize,
    },
    /// Hash count outside 1..=BLOOM_BITS.
    BadHashCount {
        /// Offending hash count.
        hashes: usize,
    },
}

impl std::fmt::Display for BloomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BloomError::IndexOutOfRange { index } => {
                write!(f, "subframe index {index} out of range")
            }
            BloomError::WrongLength { actual } => {
                write!(f, "expected {BLOOM_BITS} bits, got {actual}")
            }
            BloomError::BadHashCount { hashes } => {
                write!(f, "hash count {hashes} outside 1..={BLOOM_BITS}")
            }
        }
    }
}

impl std::error::Error for BloomError {}

/// 64-bit FNV-1a over a byte slice, salted for hash-family separation.
fn fnv1a(data: &[u8], salt: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // Final avalanche (splitmix64 tail) for good low-bit behaviour.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Bit position selected by function `fn_index` of hash set `set_index`.
fn position(item: &[u8], set_index: usize, fn_index: usize) -> usize {
    let salt = ((set_index as u64) << 32) | fn_index as u64;
    (fnv1a(item, salt) % BLOOM_BITS as u64) as usize
}

/// The 48-bit coded Bloom filter of a Carpool aggregation header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AggregationHeader {
    bits: u64,
    hashes: usize,
}

impl AggregationHeader {
    /// Creates an empty header using `hashes` hash functions per set.
    ///
    /// The paper derives the optimum `h = (48/N) ln 2` and uses
    /// [`DEFAULT_HASHES`] = 4 for its 8-receiver limit.
    ///
    /// # Panics
    ///
    /// Panics if `hashes` is zero or greater than [`BLOOM_BITS`].
    pub fn new(hashes: usize) -> AggregationHeader {
        assert!(
            (1..=BLOOM_BITS).contains(&hashes),
            "hash count {hashes} outside 1..={BLOOM_BITS}"
        );
        AggregationHeader { bits: 0, hashes }
    }

    /// Creates an empty header with the paper's default `h = 4`.
    pub fn with_default_hashes() -> AggregationHeader {
        AggregationHeader::new(DEFAULT_HASHES)
    }

    /// Builds the header for an ordered list of receiver addresses, one
    /// subframe per receiver.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IndexOutOfRange`] if more than
    /// [`MAX_RECEIVERS`] receivers are supplied.
    pub fn for_receivers<T: AsRef<[u8]>>(
        receivers: &[T],
        hashes: usize,
    ) -> Result<AggregationHeader, BloomError> {
        if receivers.len() > MAX_RECEIVERS {
            return Err(BloomError::IndexOutOfRange {
                index: receivers.len() - 1,
            });
        }
        if !(1..=BLOOM_BITS).contains(&hashes) {
            return Err(BloomError::BadHashCount { hashes });
        }
        let mut hdr = AggregationHeader::new(hashes);
        for (i, r) in receivers.iter().enumerate() {
            hdr.insert(r.as_ref(), i);
        }
        Ok(hdr)
    }

    /// Number of hash functions per hash set.
    pub fn hashes(&self) -> usize {
        self.hashes
    }

    /// Raw 48-bit filter value.
    pub fn raw(&self) -> u64 {
        self.bits
    }

    /// Number of set bits (useful for load diagnostics).
    pub fn popcount(&self) -> u32 {
        self.bits.count_ones()
    }

    /// The set of filter bits hash set `subframe_index` probes for
    /// `item` — exactly the bits [`AggregationHeader::insert`] would
    /// set and [`AggregationHeader::query`] tests. Exposed so trace
    /// tooling can record *which* Bloom positions drove a membership
    /// decision, not just the boolean verdict.
    pub fn probe_mask(&self, item: &[u8], subframe_index: usize) -> u64 {
        (0..self.hashes).fold(0u64, |mask, f| {
            mask | (1u64 << position(item, subframe_index, f))
        })
    }

    /// Inserts `item` as the receiver of subframe `subframe_index`.
    ///
    /// # Panics
    ///
    /// Panics if `subframe_index >= MAX_RECEIVERS`.
    pub fn insert(&mut self, item: &[u8], subframe_index: usize) {
        assert!(
            subframe_index < MAX_RECEIVERS,
            "subframe index {subframe_index} out of range"
        );
        self.bits |= self.probe_mask(item, subframe_index);
    }

    /// Checks whether `item` may be the receiver of `subframe_index`.
    ///
    /// No false negatives: if the item was inserted at this index, the
    /// result is always `true`.
    pub fn query(&self, item: &[u8], subframe_index: usize) -> bool {
        let mask = self.probe_mask(item, subframe_index);
        self.bits & mask == mask
    }

    /// All subframe indices (0..`num_subframes`) that match `item` —
    /// the receiver decodes *all* of these (paper: "each receiver
    /// decodes all matched subframes" to never miss its own).
    pub fn matched_indices(&self, item: &[u8], num_subframes: usize) -> Vec<usize> {
        (0..num_subframes.min(MAX_RECEIVERS))
            .filter(|&i| self.query(item, i))
            .collect() // lint:allow(hot-alloc): per-header encode/decode buffer, bounded by group size
    }

    /// Serialises to [`BLOOM_BITS`] bits (LSB of the raw value first),
    /// ready for a BPSK-1/2 header section.
    pub fn to_bits(&self) -> Vec<u8> {
        (0..BLOOM_BITS)
            .map(|k| ((self.bits >> k) & 1) as u8)
            .collect() // lint:allow(hot-alloc): per-header encode/decode buffer, bounded by group size
    }

    /// Parses a header from [`BLOOM_BITS`] bits.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::WrongLength`] for any other bit count and
    /// [`BloomError::BadHashCount`] for an invalid `hashes`.
    pub fn from_bits(bits: &[u8], hashes: usize) -> Result<AggregationHeader, BloomError> {
        if bits.len() != BLOOM_BITS {
            return Err(BloomError::WrongLength { actual: bits.len() });
        }
        if !(1..=BLOOM_BITS).contains(&hashes) {
            return Err(BloomError::BadHashCount { hashes });
        }
        let mut raw = 0u64;
        for (k, &b) in bits.iter().enumerate() {
            if b > 1 {
                return Err(BloomError::WrongLength { actual: bits.len() });
            }
            raw |= (b as u64) << k;
        }
        Ok(AggregationHeader { bits: raw, hashes })
    }
}

impl std::fmt::Display for AggregationHeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A-HDR[{:012x}, h={}]", self.bits, self.hashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> [u8; 6] {
        [0x02, 0x11, 0x22, 0x33, 0x44, last]
    }

    #[test]
    fn probe_mask_agrees_with_insert_and_query() {
        let mut hdr = AggregationHeader::with_default_hashes();
        let mask = hdr.probe_mask(&mac(1), 0);
        // h hash functions probe at most h distinct 48-bit positions.
        assert!(mask.count_ones() as usize <= hdr.hashes());
        assert!(mask != 0 && mask < 1u64 << BLOOM_BITS);
        hdr.insert(&mac(1), 0);
        // Insert sets exactly the probed bits, and query demands all of them.
        assert_eq!(hdr.raw(), mask);
        assert!(hdr.query(&mac(1), 0));
        // Same item, different hash set: an independent mask.
        assert_ne!(hdr.probe_mask(&mac(1), 1), mask);
    }

    #[test]
    fn no_false_negatives_ever() {
        for n in 1..=MAX_RECEIVERS {
            let receivers: Vec<[u8; 6]> = (0..n as u8).map(mac).collect();
            let hdr = AggregationHeader::for_receivers(&receivers, 4).unwrap();
            for (i, r) in receivers.iter().enumerate() {
                assert!(hdr.query(r, i), "n={n} receiver {i} missed");
                assert!(hdr.matched_indices(r, n).contains(&i));
            }
        }
    }

    #[test]
    fn wrong_index_usually_rejects() {
        let receivers: Vec<[u8; 6]> = (0..4u8).map(mac).collect();
        let hdr = AggregationHeader::for_receivers(&receivers, 4).unwrap();
        // A receiver inserted at index 0 should (almost surely) not match
        // at a far index with these few insertions.
        let misses = (4..8).filter(|&i| !hdr.query(&mac(0), i)).count();
        assert!(misses >= 3, "only {misses} rejections");
    }

    #[test]
    fn uninvolved_station_usually_drops_frame() {
        let receivers: Vec<[u8; 6]> = (0..6u8).map(mac).collect();
        let hdr = AggregationHeader::for_receivers(&receivers, 4).unwrap();
        let mut dropped = 0;
        let trials = 200;
        for k in 0..trials {
            let outsider = [0xAA, 0xBB, k as u8, (k >> 8) as u8, 0x01, 0x02];
            if hdr.matched_indices(&outsider, 6).is_empty() {
                dropped += 1;
            }
        }
        // With 6 receivers the per-set FP ratio is a few percent; over 6
        // sets most outsiders still match nowhere.
        assert!(dropped > trials / 2, "dropped {dropped}/{trials}");
    }

    #[test]
    fn bits_round_trip() {
        let receivers: Vec<[u8; 6]> = (0..5u8).map(mac).collect();
        let hdr = AggregationHeader::for_receivers(&receivers, 4).unwrap();
        let bits = hdr.to_bits();
        assert_eq!(bits.len(), BLOOM_BITS);
        let parsed = AggregationHeader::from_bits(&bits, 4).unwrap();
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn from_bits_validates() {
        assert!(matches!(
            AggregationHeader::from_bits(&[0; 47], 4),
            Err(BloomError::WrongLength { actual: 47 })
        ));
        assert!(matches!(
            AggregationHeader::from_bits(&[0; 48], 0),
            Err(BloomError::BadHashCount { hashes: 0 })
        ));
        assert!(matches!(
            AggregationHeader::from_bits(&[2; 48], 4),
            Err(BloomError::WrongLength { .. })
        ));
    }

    #[test]
    fn too_many_receivers_rejected() {
        let receivers: Vec<[u8; 6]> = (0..9u8).map(mac).collect();
        assert!(matches!(
            AggregationHeader::for_receivers(&receivers, 4),
            Err(BloomError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut hdr = AggregationHeader::new(4);
        hdr.insert(&mac(1), 2);
        let snapshot = hdr;
        hdr.insert(&mac(1), 2);
        assert_eq!(hdr, snapshot);
    }

    #[test]
    fn popcount_bounded_by_insertions() {
        let mut hdr = AggregationHeader::new(4);
        hdr.insert(&mac(1), 0);
        assert!(hdr.popcount() <= 4);
        hdr.insert(&mac(2), 1);
        assert!(hdr.popcount() <= 8);
    }

    #[test]
    fn hash_positions_are_reasonably_uniform() {
        // Chi-square-ish sanity: over many items the 48 positions should
        // all be hit.
        let mut counts = [0usize; BLOOM_BITS];
        for k in 0..3000u32 {
            let item = k.to_le_bytes();
            for set in 0..8 {
                for f in 0..4 {
                    counts[position(&item, set, f)] += 1;
                }
            }
        }
        let total: usize = counts.iter().sum();
        let mean = total as f64 / BLOOM_BITS as f64;
        for (pos, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > mean * 0.7 && (c as f64) < mean * 1.3,
                "position {pos}: {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn different_sets_give_different_positions() {
        // Positional encoding only works if hash sets differ.
        let item = mac(7);
        let sets: Vec<Vec<usize>> = (0..8)
            .map(|s| (0..4).map(|f| position(&item, s, f)).collect())
            .collect();
        let distinct: std::collections::HashSet<&Vec<usize>> = sets.iter().collect();
        assert!(distinct.len() >= 7, "hash sets collide too much");
    }

    #[test]
    fn display_is_nonempty() {
        let hdr = AggregationHeader::with_default_hashes();
        assert!(!hdr.to_string().is_empty());
    }

    #[test]
    fn error_display() {
        assert!(BloomError::IndexOutOfRange { index: 9 }
            .to_string()
            .contains('9'));
        assert!(BloomError::WrongLength { actual: 3 }
            .to_string()
            .contains("48"));
    }
}
