//! Property-based tests for the coded Bloom filter A-HDR.

use carpool_bloom::{AggregationHeader, BLOOM_BITS, MAX_RECEIVERS};
use proptest::prelude::*;

fn addresses(max: usize) -> impl Strategy<Value = Vec<[u8; 6]>> {
    prop::collection::vec(any::<[u8; 6]>(), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn never_a_false_negative(addrs in addresses(MAX_RECEIVERS), hashes in 1usize..=8) {
        let hdr = AggregationHeader::for_receivers(&addrs, hashes).expect("receiver count ok");
        for (i, a) in addrs.iter().enumerate() {
            prop_assert!(hdr.query(a, i), "receiver {} missed", i);
            prop_assert!(hdr.matched_indices(a, addrs.len()).contains(&i));
        }
    }

    #[test]
    fn bits_round_trip(addrs in addresses(MAX_RECEIVERS), hashes in 1usize..=8) {
        let hdr = AggregationHeader::for_receivers(&addrs, hashes).expect("receiver count ok");
        let bits = hdr.to_bits();
        prop_assert_eq!(bits.len(), BLOOM_BITS);
        let parsed = AggregationHeader::from_bits(&bits, hashes).expect("valid bits");
        prop_assert_eq!(parsed, hdr);
    }

    #[test]
    fn insertion_is_monotone(addrs in addresses(MAX_RECEIVERS)) {
        // Adding receivers never clears bits.
        let mut hdr = AggregationHeader::new(4);
        let mut prev = hdr.raw();
        for (i, a) in addrs.iter().enumerate() {
            hdr.insert(a, i);
            prop_assert_eq!(hdr.raw() & prev, prev, "bits cleared at step {}", i);
            prev = hdr.raw();
        }
    }

    #[test]
    fn insertion_order_of_distinct_indices_is_irrelevant(
        a in any::<[u8; 6]>(),
        b in any::<[u8; 6]>(),
    ) {
        let mut h1 = AggregationHeader::new(4);
        h1.insert(&a, 0);
        h1.insert(&b, 1);
        let mut h2 = AggregationHeader::new(4);
        h2.insert(&b, 1);
        h2.insert(&a, 0);
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn popcount_bounded_by_insertions(addrs in addresses(MAX_RECEIVERS), hashes in 1usize..=6) {
        let hdr = AggregationHeader::for_receivers(&addrs, hashes).expect("receiver count ok");
        prop_assert!(hdr.popcount() as usize <= hashes * addrs.len());
        prop_assert!(hdr.popcount() >= 1);
    }

    #[test]
    fn matched_indices_subset_of_queries(
        addrs in addresses(MAX_RECEIVERS),
        probe in any::<[u8; 6]>(),
    ) {
        let hdr = AggregationHeader::for_receivers(&addrs, 4).expect("receiver count ok");
        for i in hdr.matched_indices(&probe, addrs.len()) {
            prop_assert!(hdr.query(&probe, i));
        }
    }
}
