//! Cross-crate call graph over parsed workspace items.
//!
//! [`CallGraph::build`] turns the [`FnItem`](crate::items::FnItem)s of
//! every workspace file into nodes and resolves each recorded
//! [`CallRef`](crate::items::CallRef) to candidate callees. Resolution
//! is deliberately an over-approximation — when a call is ambiguous
//! (same-named methods on different types, glob imports) every
//! candidate gets an edge, so reachability queries err on the side of
//! flagging. Calls into `std` or external crates resolve to nothing
//! and drop out.
//!
//! Resolution tiers for a bare `name(...)` call, first hit wins:
//!
//! 1. a free fn of the same module,
//! 2. the target of a `use` binding of that name,
//! 3. a free fn behind a glob import,
//! 4. any free fn of the same crate (covers `mod`-local paths).
//!
//! Qualified `a::b::name(...)` calls expand `crate`/`self`/`super` and
//! import aliases, then suffix-match against fully-qualified node
//! paths. `Type::name(...)` and `.name(...)` match associated fns by
//! self type (or every self type, for method calls — the receiver's
//! type is unknown without inference).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{FileRecord, Section};

/// One function node in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the build input.
    pub file: usize,
    /// Index of the fn within that file's `items.fns`.
    pub item: usize,
    /// Fully qualified display path, e.g.
    /// `carpool_phy::convolutional::Decoder::decode`.
    pub qualified: String,
    /// Whether the fn (or its whole file section) is test-only code.
    pub in_test: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, in (file, item) order.
    pub nodes: Vec<FnNode>,
    /// Adjacency: caller node → callee node → line of the first call.
    pub edges: BTreeMap<usize, BTreeMap<usize, usize>>,
}

/// Per-node path segments used for suffix matching.
struct NodeKey {
    /// `module` segments + optional self type + fn name.
    segments: Vec<String>,
    /// Crate alias (underscored package name).
    crate_alias: String,
    /// Module path of the defining file.
    module: String,
    /// Self type, when the fn is an associated item.
    self_ty: Option<String>,
}

impl CallGraph {
    /// Builds the graph over all parsed files.
    pub fn build(files: &[FileRecord]) -> CallGraph {
        let mut graph = CallGraph::default();
        let mut keys: Vec<NodeKey> = Vec::new();
        // Free fns and methods indexed by name for fast candidate sets.
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut assoc_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();

        for (file_idx, file) in files.iter().enumerate() {
            let alias = file.crate_name.replace('-', "_");
            let section_test = !matches!(file.section, Section::Src);
            for (fn_idx, item) in file.items.fns.iter().enumerate() {
                let mut segments: Vec<String> =
                    file.module.split("::").map(str::to_string).collect();
                if let Some(ty) = &item.self_ty {
                    segments.push(ty.clone());
                }
                segments.push(item.name.clone());
                let node = graph.nodes.len();
                graph.nodes.push(FnNode {
                    file: file_idx,
                    item: fn_idx,
                    qualified: segments.join("::"),
                    in_test: item.in_test || section_test,
                });
                keys.push(NodeKey {
                    segments,
                    crate_alias: alias.clone(),
                    module: file.module.clone(),
                    self_ty: item.self_ty.clone(),
                });
                match &item.self_ty {
                    Some(_) => assoc_by_name
                        .entry(item.name.clone())
                        .or_default()
                        .push(node),
                    None => free_by_name
                        .entry(item.name.clone())
                        .or_default()
                        .push(node),
                }
            }
        }

        for (file_idx, file) in files.iter().enumerate() {
            let alias = file.crate_name.replace('-', "_");
            let module_segs: Vec<String> = file.module.split("::").map(str::to_string).collect();
            // Import bindings of this file: local name → expanded path.
            let mut imports: BTreeMap<&str, Vec<String>> = BTreeMap::new();
            let mut globs: Vec<Vec<String>> = Vec::new();
            for u in &file.items.uses {
                let expanded = expand_path(&u.segments, &alias, &module_segs);
                if u.glob {
                    globs.push(expanded);
                } else if !u.name.is_empty() {
                    imports.insert(u.name.as_str(), expanded);
                }
            }

            let node_base: usize = graph
                .nodes
                .iter()
                .position(|n| n.file == file_idx)
                .unwrap_or(graph.nodes.len());
            for (fn_idx, item) in file.items.fns.iter().enumerate() {
                let caller = node_base + fn_idx;
                let caller_self_ty = keys.get(caller).and_then(|k| k.self_ty.clone());
                for call in &item.calls {
                    let callees = resolve_call(
                        &call.segments,
                        call.method,
                        &keys,
                        &free_by_name,
                        &assoc_by_name,
                        &alias,
                        &module_segs,
                        caller_self_ty.as_deref(),
                        &imports,
                        &globs,
                    );
                    for callee in callees {
                        if callee == caller {
                            continue; // recursion adds nothing to reachability
                        }
                        graph
                            .edges
                            .entry(caller)
                            .or_default()
                            .entry(callee)
                            .or_insert(call.line);
                    }
                }
            }
        }
        graph
    }

    /// Total number of call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeMap::len).sum()
    }

    /// Nodes whose qualified path ends with `spec` (a `::`-separated
    /// suffix, e.g. `Simulator::run_replications` or
    /// `carpool_bench::run_phy`). Test-only nodes never match.
    pub fn match_root(&self, spec: &str) -> Vec<usize> {
        let want: Vec<&str> = spec.split("::").collect();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.in_test)
            .filter(|(_, n)| {
                let have: Vec<&str> = n.qualified.split("::").collect();
                have.len() >= want.len() && have[have.len() - want.len()..] == want[..]
            })
            .map(|(at, _)| at)
            .collect()
    }

    /// BFS over the graph from `roots`; returns, for every reachable
    /// node, its BFS parent (`None` for roots). Deterministic: roots
    /// and neighbors are visited in ascending node order.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let sorted: BTreeSet<usize> = roots.iter().copied().collect();
        for &root in &sorted {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(root) {
                e.insert(None);
                queue.push_back(root);
            }
        }
        while let Some(node) = queue.pop_front() {
            if let Some(next) = self.edges.get(&node) {
                for &callee in next.keys() {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                        e.insert(Some(node));
                        queue.push_back(callee);
                    }
                }
            }
        }
        parent
    }

    /// Root-to-`node` call chain as qualified names, following BFS
    /// parents.
    pub fn chain(&self, node: usize, parents: &BTreeMap<usize, Option<usize>>) -> Vec<String> {
        let mut path = Vec::new();
        let mut at = Some(node);
        let mut guard = 0usize;
        while let Some(n) = at {
            if guard > self.nodes.len() {
                break; // cycle guard; parents should be acyclic
            }
            guard += 1;
            path.push(self.nodes.get(n).map(|k| k.qualified.clone()));
            at = parents.get(&n).copied().flatten();
        }
        path.reverse();
        path.into_iter().flatten().collect()
    }

    /// Deterministic text dump of every edge (`--graph`). Edges are
    /// emitted sorted by (caller name, callee name, file, line) — not
    /// node index, which depends on file discovery order — so the dump
    /// is stable across scan strategies and diffs cleanly.
    pub fn render(&self, files: &[FileRecord]) -> String {
        let mut rows: Vec<(&str, &str, &str, usize)> = Vec::with_capacity(self.edge_count());
        for (&caller, callees) in &self.edges {
            for (&callee, &line) in callees {
                let from = self.nodes.get(caller).map_or("?", |n| n.qualified.as_str());
                let to = self.nodes.get(callee).map_or("?", |n| n.qualified.as_str());
                let file = self
                    .nodes
                    .get(caller)
                    .and_then(|n| files.get(n.file))
                    .map_or("?", |f| f.path.as_str());
                rows.push((from, to, file, line));
            }
        }
        rows.sort_unstable();
        let mut out = String::new();
        out.push_str("# carpool-lint call graph (caller -> callee @ file:line)\n");
        for (from, to, file, line) in rows {
            out.push_str(from);
            out.push_str(" -> ");
            out.push_str(to);
            out.push_str("  @ ");
            out.push_str(file);
            out.push(':');
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }
}

/// Expands `crate`/`self`/`super` path heads against the caller's crate
/// and module.
fn expand_path(segments: &[String], crate_alias: &str, module_segs: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    match segments.first().map(String::as_str) {
        Some("crate") => {
            out.push(crate_alias.to_string());
            out.extend(segments[1..].iter().cloned());
        }
        Some("self") => {
            out.extend(module_segs.iter().cloned());
            out.extend(segments[1..].iter().cloned());
        }
        Some("super") => {
            let take = module_segs.len().saturating_sub(1);
            out.extend(module_segs[..take].iter().cloned());
            out.extend(segments[1..].iter().cloned());
        }
        _ => out.extend(segments.iter().cloned()),
    }
    out
}

/// Whether `key`'s fully qualified segments end with `suffix`.
fn suffix_matches(key: &NodeKey, suffix: &[String]) -> bool {
    let have = &key.segments;
    have.len() >= suffix.len() && have[have.len() - suffix.len()..] == suffix[..]
}

/// Resolves one call to candidate node indices (possibly empty).
#[allow(clippy::too_many_arguments)]
fn resolve_call(
    segments: &[String],
    method: bool,
    keys: &[NodeKey],
    free_by_name: &BTreeMap<String, Vec<usize>>,
    assoc_by_name: &BTreeMap<String, Vec<usize>>,
    crate_alias: &str,
    module_segs: &[String],
    caller_self_ty: Option<&str>,
    imports: &BTreeMap<&str, Vec<String>>,
    globs: &[Vec<String>],
) -> Vec<usize> {
    let Some(name) = segments.last() else {
        return Vec::new();
    };
    if method {
        // `.name(...)`: without type inference every same-named
        // associated fn is a candidate.
        return assoc_by_name.get(name).cloned().unwrap_or_default();
    }
    if segments.len() == 1 {
        let module = module_segs.join("::");
        // Tier 1: same-module free fn.
        let same_module: Vec<usize> = free_by_name
            .get(name)
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&n| keys[n].module == module)
                    .collect()
            })
            .unwrap_or_default();
        if !same_module.is_empty() {
            return same_module;
        }
        // Tier 2: `use` binding of this exact name.
        if let Some(path) = imports.get(name.as_str()) {
            let free = free_by_name
                .get(name)
                .map(|nodes| {
                    nodes
                        .iter()
                        .copied()
                        .filter(|&n| suffix_matches(&keys[n], path))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            if !free.is_empty() {
                return free;
            }
            // `use Type::assoc_fn` style bindings.
            let assoc = assoc_by_name
                .get(name)
                .map(|nodes| {
                    nodes
                        .iter()
                        .copied()
                        .filter(|&n| suffix_matches(&keys[n], path))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            if !assoc.is_empty() {
                return assoc;
            }
        }
        // Tier 3: glob imports.
        let mut via_glob = Vec::new();
        for glob in globs {
            let mut want = glob.clone();
            want.push(name.clone());
            if let Some(nodes) = free_by_name.get(name) {
                via_glob.extend(
                    nodes
                        .iter()
                        .copied()
                        .filter(|&n| suffix_matches(&keys[n], &want)),
                );
            }
        }
        if !via_glob.is_empty() {
            via_glob.sort_unstable();
            via_glob.dedup();
            return via_glob;
        }
        // Tier 4: any free fn of the same crate (`mod`-local paths and
        // sibling modules without an explicit import).
        return free_by_name
            .get(name)
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&n| keys[n].crate_alias == crate_alias)
                    .collect()
            })
            .unwrap_or_default();
    }

    // Qualified path: expand the head, then decide type- vs
    // module-qualified by the case of the next-to-last segment.
    let head_expanded: Vec<String> = {
        let via_import = segments
            .first()
            .and_then(|first| imports.get(first.as_str()))
            .map(|bound| {
                let mut v = bound.clone();
                v.extend(segments[1..].iter().cloned());
                v
            });
        match via_import {
            Some(v) => v,
            None => expand_path(segments, crate_alias, module_segs),
        }
    };
    let qualifier = head_expanded
        .get(head_expanded.len().wrapping_sub(2))
        .cloned()
        .unwrap_or_default();
    let type_qualified = qualifier == "Self"
        || qualifier
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase());
    if type_qualified {
        let want_ty: &str = if qualifier == "Self" {
            caller_self_ty.unwrap_or("Self")
        } else {
            &qualifier
        };
        return assoc_by_name
            .get(name)
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&n| keys[n].self_ty.as_deref() == Some(want_ty))
                    .collect()
            })
            .unwrap_or_default();
    }
    free_by_name
        .get(name)
        .map(|nodes| {
            nodes
                .iter()
                .copied()
                .filter(|&n| suffix_matches(&keys[n], &head_expanded))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileRecord;
    use crate::rules::classify;

    fn record(path: &str, crate_name: &str, src: &str) -> FileRecord {
        FileRecord::parse(path, crate_name, Section::Src, classify(crate_name), src)
    }

    fn node_of(graph: &CallGraph, qualified: &str) -> Option<usize> {
        graph.nodes.iter().position(|n| n.qualified == qualified)
    }

    fn has_edge(graph: &CallGraph, from: &str, to: &str) -> bool {
        let (Some(f), Some(t)) = (node_of(graph, from), node_of(graph, to)) else {
            return false;
        };
        graph.edges.get(&f).is_some_and(|m| m.contains_key(&t))
    }

    #[test]
    fn same_module_and_cross_module_calls_resolve() {
        let files = vec![
            record(
                "crates/phy/src/fft.rs",
                "carpool-phy",
                "pub fn fft() { butterfly(); }\nfn butterfly() {}\n",
            ),
            record(
                "crates/phy/src/rx.rs",
                "carpool-phy",
                "use crate::fft::fft;\npub fn receive() { fft(); }\n",
            ),
        ];
        let graph = CallGraph::build(&files);
        assert!(has_edge(
            &graph,
            "carpool_phy::fft::fft",
            "carpool_phy::fft::butterfly"
        ));
        assert!(has_edge(
            &graph,
            "carpool_phy::rx::receive",
            "carpool_phy::fft::fft"
        ));
    }

    #[test]
    fn cross_crate_qualified_calls_resolve() {
        let files = vec![
            record(
                "crates/phy/src/lib.rs",
                "carpool-phy",
                "pub fn transmit() {}\n",
            ),
            record(
                "crates/bench/src/lib.rs",
                "carpool-bench",
                "pub fn run_phy() { carpool_phy::transmit(); }\n",
            ),
        ];
        let graph = CallGraph::build(&files);
        assert!(has_edge(
            &graph,
            "carpool_bench::run_phy",
            "carpool_phy::transmit"
        ));
    }

    #[test]
    fn method_calls_resolve_by_name_across_types() {
        let files = vec![record(
            "crates/mac/src/sim.rs",
            "carpool-mac",
            "struct Sim;\nimpl Sim {\n    pub fn run(&self) { self.step(); }\n    fn step(&self) {}\n}\n",
        )];
        let graph = CallGraph::build(&files);
        assert!(has_edge(
            &graph,
            "carpool_mac::sim::Sim::run",
            "carpool_mac::sim::Sim::step"
        ));
    }

    #[test]
    fn self_qualified_assoc_calls_resolve_to_the_impl_type() {
        let files = vec![record(
            "crates/frame/src/sig.rs",
            "carpool-frame",
            "struct Sig;\nimpl Sig {\n    fn new() -> Sig { Sig }\n    pub fn build() -> Sig { Self::new() }\n}\n",
        )];
        let graph = CallGraph::build(&files);
        assert!(has_edge(
            &graph,
            "carpool_frame::sig::Sig::build",
            "carpool_frame::sig::Sig::new"
        ));
    }

    #[test]
    fn reachability_and_chains_follow_parents() {
        let files = vec![record(
            "crates/phy/src/a.rs",
            "carpool-phy",
            "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\npub fn island() {}\n",
        )];
        let graph = CallGraph::build(&files);
        let roots = graph.match_root("a::root");
        assert_eq!(roots.len(), 1);
        let parents = graph.reachable(&roots);
        let leaf = node_of(&graph, "carpool_phy::a::leaf");
        assert!(leaf.is_some_and(|n| parents.contains_key(&n)));
        let island = node_of(&graph, "carpool_phy::a::island");
        assert!(island.is_some_and(|n| !parents.contains_key(&n)));
        let chain = leaf.map(|n| graph.chain(n, &parents)).unwrap_or_default();
        assert_eq!(
            chain,
            [
                "carpool_phy::a::root",
                "carpool_phy::a::mid",
                "carpool_phy::a::leaf"
            ]
        );
    }

    #[test]
    fn std_calls_resolve_to_nothing() {
        let files = vec![record(
            "crates/phy/src/a.rs",
            "carpool-phy",
            "pub fn f() { let v: Vec<u8> = Vec::new(); v.len(); }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn test_only_fns_never_match_roots() {
        let files = vec![record(
            "crates/bench/src/lib.rs",
            "carpool-bench",
            "#[cfg(test)]\nmod tests {\n    fn run_phy() {}\n}\npub fn run_phy() {}\n",
        )];
        let graph = CallGraph::build(&files);
        let roots = graph.match_root("carpool_bench::run_phy");
        assert_eq!(roots.len(), 1);
        assert!(!graph.nodes[roots[0]].in_test);
    }
}
