//! carpool-lint — a zero-dependency static analysis gate for the
//! Carpool workspace.
//!
//! The compiler cannot see the project invariants this workspace
//! depends on: the PHY pipeline must stay panic-free and deterministic
//! under any channel realization, the crate layering keeps the MAC
//! simulator trace-reproducible, and all operator-facing output goes
//! through `carpool-obs`. This crate enforces them statically:
//!
//! | rule | meaning |
//! |------|---------|
//! | L001 | no `unwrap()/expect()/panic!/unreachable!` in non-test code |
//! | L002 | no `println!`-family output in library crates |
//! | L003 | lower-layer crates never depend on mac/carpool/cli/bench |
//! | L004 | numeric `as` casts in `phy`/`mac` need an inline waiver |
//! | L005 | no wall-clock reads in simulation crates |
//! | L006 | `pub` items in library crate roots carry `///` docs |
//!
//! Existing violations are recorded in a checked-in
//! `lint-baseline.json` ratchet: new violations fail the gate, and
//! baseline counts may only decrease. Waive a finding inline with
//! `// lint:allow(<key>): <reason>`; see [`rules::Rule::waiver_key`].
//!
//! Run as `cargo run -p carpool-lint`, or `carpool lint` from the CLI;
//! `scripts/check.sh` runs it as its third stage.

pub mod baseline;
pub mod manifest;
pub mod rules;
pub mod scanner;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use baseline::{Baseline, BaselineError};
use rules::{Diagnostic, Rule};

/// Default baseline file name, resolved relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Errors surfaced by the lint runner.
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
    /// The baseline file exists but cannot be used.
    Baseline(PathBuf, BaselineError),
    /// The workspace root does not look like the Carpool workspace.
    NotAWorkspace(PathBuf),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::Baseline(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::NotAWorkspace(path) => write!(
                f,
                "{} does not look like the carpool workspace \
                 (expected Cargo.toml and crates/)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Result of scanning the whole workspace, before baseline comparison.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Every violation found, in deterministic (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates scanned.
    pub crates_scanned: usize,
}

/// Outcome of comparing a scan against the baseline ratchet.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Violations not covered by the baseline — these fail the gate.
    pub new_violations: Vec<Diagnostic>,
    /// Baseline entries whose counts are now too high (progress was
    /// made): `(rule, file, baseline, actual)`. A stale baseline fails
    /// the gate until re-ratcheted with `--write-baseline`.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl RatchetReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.new_violations.is_empty() && self.stale.is_empty()
    }
}

/// Scans the workspace rooted at `root` and returns all diagnostics.
///
/// # Errors
///
/// Returns [`LintError`] when `root` is not the workspace or a source
/// file cannot be read.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, LintError> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let mut report = ScanReport::default();

    let mut crate_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    let mut entries: Vec<PathBuf> = read_dir_sorted(&root.join("crates"))?;
    entries.retain(|p| p.join("Cargo.toml").is_file());
    crate_dirs.extend(entries);

    for dir in crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest_text = read_file(&manifest_path)?;
        let manifest = manifest::parse_manifest(&manifest_text);
        let class = rules::classify(&manifest.name);
        report.crates_scanned += 1;

        report.diagnostics.extend(rules::check_manifest_layering(
            class,
            &relative(root, &manifest_path),
            &manifest.dependencies,
        ));

        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_root_file = crate_root_of(&src);
        for file in rs_files_under(&src)? {
            let text = read_file(&file)?;
            let lines = scanner::scan_source(&text);
            let rel = relative(root, &file);
            let is_root = Some(file.as_path()) == crate_root_file.as_deref();
            report
                .diagnostics
                .extend(rules::check_lines(class, is_root, &rel, &lines));
            report.files_scanned += 1;
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// The crate root file under `src/` (`lib.rs`, else `main.rs`).
fn crate_root_of(src: &Path) -> Option<PathBuf> {
    let lib = src.join("lib.rs");
    if lib.is_file() {
        return Some(lib);
    }
    let main = src.join("main.rs");
    main.is_file().then_some(main)
}

/// Compares a scan against the baseline.
pub fn ratchet(report: &ScanReport, baseline: &Baseline) -> RatchetReport {
    // Count per (rule, file).
    let mut actual: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in &report.diagnostics {
        *actual
            .entry((d.rule.id().to_string(), d.file.clone()))
            .or_default() += 1;
    }

    let mut out = RatchetReport::default();
    // New violations: any (rule, file) where actual > baseline. The
    // diagnostics listed are the whole file's worth for that rule so
    // the developer sees every candidate line.
    for ((rule, file), &count) in &actual {
        let allowed = baseline.count(rule, file);
        if count > allowed {
            out.new_violations.extend(
                report
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule.id() == rule && &d.file == file)
                    .cloned(),
            );
        }
    }
    // Stale entries: baseline says more than reality (including files
    // that no longer violate at all, or no longer exist).
    for (rule, files) in &baseline.counts {
        for (file, &allowed) in files {
            let count = actual
                .get(&(rule.clone(), file.clone()))
                .copied()
                .unwrap_or(0);
            if count < allowed {
                out.stale.push((rule.clone(), file.clone(), allowed, count));
            }
        }
    }
    out
}

/// Builds the baseline that exactly covers `report`.
pub fn baseline_from_scan(report: &ScanReport) -> Baseline {
    let mut b = Baseline::default();
    for d in &report.diagnostics {
        *b.counts
            .entry(d.rule.id().to_string())
            .or_default()
            .entry(d.file.clone())
            .or_default() += 1;
    }
    b
}

/// Per-rule totals of a scan.
pub fn per_rule_totals(report: &ScanReport) -> BTreeMap<&'static str, usize> {
    let mut totals: BTreeMap<&'static str, usize> = BTreeMap::new();
    for rule in Rule::ALL {
        totals.insert(rule.id(), 0);
    }
    for d in &report.diagnostics {
        *totals.entry(d.rule.id()).or_default() += 1;
    }
    totals
}

/// Renders the machine-readable report (`--json`).
pub fn render_json(report: &ScanReport, verdict: &RatchetReport, baseline: &Baseline) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"carpool-lint/v1\",\n");
    let _ = writeln!(
        out,
        "  \"files_scanned\": {},\n  \"crates_scanned\": {},",
        report.files_scanned, report.crates_scanned
    );
    out.push_str("  \"per_rule_totals\": {");
    let totals = per_rule_totals(report);
    let mut first = true;
    for (rule, total) in &totals {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{rule}\": {total}");
    }
    out.push_str("\n  },\n");
    let _ = writeln!(
        out,
        "  \"baselined_total\": {},",
        Rule::ALL
            .iter()
            .map(|r| baseline.rule_total(r.id()))
            .sum::<usize>()
    );
    let _ = writeln!(out, "  \"ok\": {},", verdict.ok());
    out.push_str("  \"new_violations\": [");
    for (k, d) in verdict.new_violations.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": {}, \"line\": {}, \"message\": {}}}",
            d.rule.id(),
            baseline::json_string(&d.file),
            d.line,
            baseline::json_string(&d.message)
        );
    }
    out.push_str("\n  ],\n  \"stale_baseline\": [");
    for (k, (rule, file, allowed, actual)) in verdict.stale.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{rule}\", \"file\": {}, \"baseline\": {allowed}, \
             \"actual\": {actual}}}",
            baseline::json_string(file),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the human-readable report.
pub fn render_human(report: &ScanReport, verdict: &RatchetReport, baseline: &Baseline) -> String {
    let mut out = String::new();
    for d in &verdict.new_violations {
        let _ = writeln!(out, "{d}");
    }
    for (rule, file, allowed, actual) in &verdict.stale {
        let _ = writeln!(
            out,
            "stale baseline: {rule} {file} records {allowed} but only {actual} remain \
             — run with --write-baseline to ratchet down"
        );
    }
    let totals = per_rule_totals(report);
    let baselined: usize = Rule::ALL.iter().map(|r| baseline.rule_total(r.id())).sum();
    let _ = writeln!(
        out,
        "carpool-lint: {} files in {} crates, {} findings ({} baselined), {} new, {} stale",
        report.files_scanned,
        report.crates_scanned,
        totals.values().sum::<usize>(),
        baselined,
        verdict.new_violations.len(),
        verdict.stale.len()
    );
    for rule in Rule::ALL {
        let _ = writeln!(
            out,
            "  {}: {:<4} {}",
            rule.id(),
            totals.get(rule.id()).copied().unwrap_or(0),
            rule.summary()
        );
    }
    out
}

/// Loads the baseline at `path`; a missing file is an empty baseline.
///
/// # Errors
///
/// Returns [`LintError::Baseline`] when the file exists but is
/// malformed, and [`LintError::Io`] on read failures.
pub fn load_baseline(path: &Path) -> Result<Baseline, LintError> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            Baseline::from_json(&text).map_err(|e| LintError::Baseline(path.to_path_buf(), e))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(LintError::Io(path.to_path_buf(), e)),
    }
}

/// Parsed command line shared by `carpool-lint` and `carpool lint`.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Workspace root (defaults to the nearest ancestor with
    /// `Cargo.toml` + `crates/`).
    pub root: Option<PathBuf>,
    /// Emit the JSON report instead of human text.
    pub json: bool,
    /// Rewrite the baseline to match the current scan (ratchet down).
    pub write_baseline: bool,
    /// Allow `--write-baseline` to *increase* counts (escape hatch).
    pub force: bool,
}

impl LintOptions {
    /// Parses `--json`, `--write-baseline`, `--force`, `--root <dir>`.
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<LintOptions, String> {
        let mut opts = LintOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--json" => opts.json = true,
                "--write-baseline" => opts.write_baseline = true,
                "--force" => opts.force = true,
                "--root" => {
                    let dir = iter.next().ok_or("--root needs a directory")?;
                    opts.root = Some(PathBuf::from(dir));
                }
                other => {
                    return Err(format!(
                        "unknown lint option '{other}' \
                         (expected --json, --write-baseline, --force, --root <dir>)"
                    ));
                }
            }
        }
        Ok(opts)
    }
}

/// Finds the workspace root: the given override, else the nearest
/// ancestor of the current directory containing `Cargo.toml` and
/// `crates/`.
pub fn find_root(explicit: Option<&Path>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root.to_path_buf());
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Full gate run driven by [`LintOptions`]; prints to stdout/stderr and
/// returns the process exit code (0 ok, 1 violations/stale, 2 errors).
pub fn run(opts: &LintOptions) -> i32 {
    let Some(root) = find_root(opts.root.as_deref()) else {
        eprintln!("carpool-lint: cannot find the workspace root (try --root <dir>)");
        return 2;
    };
    let baseline_path = root.join(BASELINE_FILE);
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("carpool-lint: {e}");
            return 2;
        }
    };

    if opts.write_baseline {
        return write_baseline(&report, &baseline_path, opts.force);
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("carpool-lint: {e}");
            return 2;
        }
    };
    let verdict = ratchet(&report, &baseline);
    if opts.json {
        print!("{}", render_json(&report, &verdict, &baseline));
    } else {
        print!("{}", render_human(&report, &verdict, &baseline));
    }
    i32::from(!verdict.ok())
}

fn write_baseline(report: &ScanReport, path: &Path, force: bool) -> i32 {
    let fresh = baseline_from_scan(report);
    // Initial creation has nothing to ratchet against.
    match path.is_file().then(|| load_baseline(path)).transpose() {
        Ok(None) => {}
        Ok(Some(existing)) => {
            // The ratchet only turns one way: refuse silent increases.
            let mut grew = Vec::new();
            for (rule, files) in &fresh.counts {
                for (file, &count) in files {
                    let prior = existing.count(rule, file);
                    if count > prior {
                        grew.push(format!("{rule} {file}: {prior} -> {count}"));
                    }
                }
            }
            if !grew.is_empty() && !force {
                eprintln!(
                    "carpool-lint: refusing to grow the baseline (fix the new findings, \
                     waive them inline, or pass --force):"
                );
                for g in grew {
                    eprintln!("  {g}");
                }
                return 1;
            }
        }
        Err(e) => {
            eprintln!("carpool-lint: warning: replacing unreadable baseline ({e})");
        }
    }
    match std::fs::write(path, fresh.to_json()) {
        Ok(()) => {
            println!(
                "carpool-lint: baseline written to {} ({} findings)",
                path.display(),
                report.diagnostics.len()
            );
            0
        }
        Err(e) => {
            eprintln!("carpool-lint: cannot write {}: {e}", path.display());
            2
        }
    }
}

fn read_file(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e))
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rs_files_under(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for path in read_dir_sorted(&current)? {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
