//! carpool-lint — a zero-dependency static analysis gate for the
//! Carpool workspace.
//!
//! The compiler cannot see the project invariants this workspace
//! depends on: the PHY pipeline must stay panic-free and deterministic
//! under any channel realization, the crate layering keeps the MAC
//! simulator trace-reproducible, and all operator-facing output goes
//! through `carpool-obs`. This crate enforces them statically:
//!
//! | rule | meaning |
//! |------|---------|
//! | L001 | no `unwrap()/expect()/panic!/unreachable!` in non-test code |
//! | L002 | no `println!`-family output in library crates |
//! | L003 | lower-layer crates never depend on mac/carpool/cli/bench |
//! | L004 | numeric `as` casts in `phy`/`mac` need an inline waiver |
//! | L005 | no wall-clock reads in simulation crates |
//! | L006 | `pub` items in library crate roots carry `///` docs |
//! | L007 | no panic site reachable from the hot-path roots (call graph) |
//! | L008 | no `HashMap`/`HashSet` where outputs must be byte-identical |
//! | L009 | every atomic `Ordering::` in `par` carries a justification |
//! | L010 | no dead public API in library crates |
//! | L011 | no allocation reachable from the hot-path roots |
//! | L012 | `lint:budget(i32: ±N)` fns provably cannot wrap i32 |
//! | L013 | no arithmetic/calls mixing unit suffixes (`_s`, `_db`, …) |
//! | L014 | no nondeterminism source reaches byte-identical outputs |
//! | L015 | shard-protocol discipline in worker pools and scratch fns |
//!
//! L001–L006 and L009 are line rules over the comment/string-aware
//! scanner; L007, L008 and L010–L015 are interprocedural: [`items`]
//! parses `fn`/`impl`/`use` items per file, [`callgraph`] resolves
//! calls into a cross-crate graph, and [`interproc`] walks it. L011,
//! L012 and L013 are additionally *flow-aware*: [`dataflow`] classifies
//! statement effects and runs an interval abstract interpretation over
//! the [`ranges`] lattice. L014 is a determinism-*taint* pass
//! ([`taint`]): it marks nondeterminism sources and walks the call
//! graph to prove none is reachable from the byte-identical crates.
//! L015 checks the shard-protocol obligations of `carpool-par`'s
//! history-independence contract structurally. `--explain <rule>`
//! prints the full rationale for any rule; `--graph` dumps the call
//! graph; `--sarif <path>` exports SARIF 2.1.0 for CI and editors.
//!
//! The driver is incremental and parallel: file reading and parsing fan
//! through `carpool-par::par_map_indexed`, and a schema-versioned
//! content-hash cache ([`cache`], `.lint-cache.json`) replays unchanged
//! results so warm runs stay sub-second — byte-identical to a cold
//! `--no-cache` run by construction.
//!
//! Existing violations are recorded in a checked-in
//! `lint-baseline.json` ratchet: new violations fail the gate, and
//! baseline counts may only decrease. Waive a finding inline with
//! `// lint:allow(<key>): <reason>`; see [`rules::Rule::waiver_key`].
//!
//! Run as `cargo run -p carpool-lint`, or `carpool lint` from the CLI;
//! `scripts/check.sh` runs it as its third stage. Exit codes: 0 clean,
//! 1 gate failure (new violations or stale baseline), 2 internal
//! analyzer error.

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod interproc;
pub mod items;
pub mod manifest;
pub mod ranges;
pub mod rules;
pub mod sarif;
pub mod scanner;
pub mod taint;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use baseline::{Baseline, BaselineError};
use callgraph::CallGraph;
use interproc::HotPathStats;
use items::{FileRecord, Section};
use rules::{Diagnostic, Rule};

/// Default baseline file name, resolved relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Errors surfaced by the lint runner.
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
    /// The baseline file exists but cannot be used.
    Baseline(PathBuf, BaselineError),
    /// The workspace root does not look like the Carpool workspace.
    NotAWorkspace(PathBuf),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::Baseline(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::NotAWorkspace(path) => write!(
                f,
                "{} does not look like the carpool workspace \
                 (expected Cargo.toml and crates/)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Knobs for the symbol-aware analysis pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisOptions {
    /// Report hot-path slice indexing as L007 findings instead of only
    /// counting it.
    pub strict_indexing: bool,
    /// Render the call-graph dump into
    /// [`AnalysisStats::graph_dump`].
    pub collect_graph: bool,
}

/// Call-graph statistics from the symbol-aware pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisStats {
    /// Functions parsed across the workspace.
    pub functions: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Hot-path root/reachability/indexing numbers (L007).
    pub hot: HotPathStats,
    /// Flow-aware effect/interval statistics (L011–L013).
    pub flow: interproc::FlowStats,
    /// Determinism-taint statistics (L014).
    pub taint: taint::TaintStats,
    /// Functions checked against the shard-protocol obligations (L015).
    pub shard_fns: usize,
    /// Deterministic text dump of the graph, when requested.
    pub graph_dump: Option<String>,
}

/// Result of scanning the whole workspace, before baseline comparison.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Every violation found, in deterministic (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned (src, tests, benches, examples).
    pub files_scanned: usize,
    /// Number of crates scanned.
    pub crates_scanned: usize,
    /// Per-rule analysis time in milliseconds (`callgraph` is the
    /// shared graph-construction cost).
    pub rule_timings_ms: BTreeMap<String, f64>,
    /// Symbol-aware analysis statistics.
    pub analysis: AnalysisStats,
}

/// Outcome of comparing a scan against the baseline ratchet.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Violations not covered by the baseline — these fail the gate.
    pub new_violations: Vec<Diagnostic>,
    /// Baseline entries whose counts are now too high (progress was
    /// made): `(rule, file, baseline, actual)`. A stale baseline fails
    /// the gate until re-ratcheted with `--write-baseline`.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl RatchetReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.new_violations.is_empty() && self.stale.is_empty()
    }
}

/// Scans the workspace rooted at `root` with default analysis options.
///
/// # Errors
///
/// Returns [`LintError`] when `root` is not the workspace or a source
/// file cannot be read.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, LintError> {
    scan_workspace_opts(root, &AnalysisOptions::default())
}

/// Scans the workspace rooted at `root` and returns all diagnostics:
/// line rules over `src/` files, interprocedural rules over the whole
/// parsed workspace (src + tests + benches + examples as the call and
/// reference corpus).
///
/// # Errors
///
/// Returns [`LintError`] when `root` is not the workspace or a source
/// file cannot be read.
pub fn scan_workspace_opts(root: &Path, aopts: &AnalysisOptions) -> Result<ScanReport, LintError> {
    Ok(scan_workspace_cached(root, aopts, None, false)?.report)
}

/// [`ScanReport`] plus how much of it the cache supplied.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// The scan result (identical whichever path produced it).
    pub report: ScanReport,
    /// The whole report was reconstructed from the cache without
    /// parsing (warm fast path).
    pub warm: bool,
    /// Source files whose line-rule diagnostics were replayed from the
    /// cache instead of rescanned.
    pub reused_files: usize,
}

/// A file queued for the parallel read/parse stages.
struct PendingFile {
    path: PathBuf,
    rel: String,
    crate_name: String,
    manifest_rel: String,
    section: Section,
    class: rules::CrateClass,
    is_root: bool,
}

/// [`scan_workspace_opts`] with the incremental cache: `cache_path`
/// names the cache file (usually [`cache::CACHE_FILE`] under `root`;
/// `None` disables caching entirely), `read_cache` permits reuse of an
/// existing cache (`--no-cache` passes `false` to force a cold scan
/// that still rewrites the cache).
///
/// Cached or not, the returned report is identical: reuse is keyed on
/// the rule-set fingerprint and per-file content hashes, and
/// `--strict-indexing`/`--graph` runs bypass the cache in both
/// directions (their output is mode-dependent).
///
/// # Errors
///
/// Returns [`LintError`] when `root` is not the workspace or a source
/// file cannot be read.
pub fn scan_workspace_cached(
    root: &Path,
    aopts: &AnalysisOptions,
    cache_path: Option<&Path>,
    read_cache: bool,
) -> Result<ScanOutcome, LintError> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let cache_path = cache_path.filter(|_| !aopts.strict_indexing && !aopts.collect_graph);
    let cache = cache_path
        .filter(|_| read_cache)
        .and_then(cache::LintCache::load)
        .filter(|c| c.rules_hash == cache::rules_fingerprint());

    let mut report = ScanReport::default();

    let mut crate_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    let mut entries: Vec<PathBuf> = read_dir_sorted(&root.join("crates"))?;
    entries.retain(|p| p.join("Cargo.toml").is_file());
    crate_dirs.extend(entries);

    // Stage 1 (serial): manifests — classification, layering (L003),
    // and the worklist of source files. Manifest hashes join the file
    // map so a manifest edit invalidates its crate.
    let t_manifest = Instant::now();
    let mut manifest_diags: Vec<Diagnostic> = Vec::new();
    let mut pending: Vec<PendingFile> = Vec::new();
    let mut file_hashes: BTreeMap<String, String> = BTreeMap::new();
    for dir in &crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest_text = read_file(&manifest_path)?;
        let manifest_rel = relative(root, &manifest_path);
        file_hashes.insert(
            manifest_rel.clone(),
            cache::hash_hex(manifest_text.as_bytes()),
        );
        let manifest = manifest::parse_manifest(&manifest_text);
        let class = rules::classify(&manifest.name);
        report.crates_scanned += 1;

        manifest_diags.extend(rules::check_manifest_layering(
            class,
            &manifest_rel,
            &manifest.dependencies,
        ));

        const SECTIONS: [(Section, &str); 4] = [
            (Section::Src, "src"),
            (Section::Tests, "tests"),
            (Section::Benches, "benches"),
            (Section::Examples, "examples"),
        ];
        for (section, dir_name) in SECTIONS {
            let section_dir = dir.join(dir_name);
            if !section_dir.is_dir() {
                continue;
            }
            let crate_root_file = match section {
                Section::Src => crate_root_of(&section_dir),
                _ => None,
            };
            for file in rs_files_under(&section_dir)? {
                let rel = relative(root, &file);
                pending.push(PendingFile {
                    is_root: Some(file.as_path()) == crate_root_file.as_deref(),
                    path: file,
                    rel,
                    crate_name: manifest.name.clone(),
                    manifest_rel: manifest_rel.clone(),
                    section,
                    class,
                });
                report.files_scanned += 1;
            }
        }
    }

    // Stage 2 (parallel): read + hash every file, fanned through
    // carpool-par. Index-keyed results keep everything downstream
    // byte-identical at any thread count.
    let read = carpool_par::par_map_indexed(&pending, |_, p| {
        std::fs::read_to_string(&p.path)
            .map(|text| {
                let hash = cache::hash_hex(text.as_bytes());
                (text, hash)
            })
            .map_err(|e| (p.path.clone(), e))
    })
    // lint:allow(panic): a worker panic is a linter bug; run() catches it and reports exit 2
    .unwrap_or_else(|e| panic!("parallel file read failed: {e}"));
    let mut texts: Vec<String> = Vec::with_capacity(read.len());
    for (p, item) in pending.iter().zip(read) {
        let (text, hash) = item.map_err(|(path, e)| LintError::Io(path, e))?;
        file_hashes.insert(p.rel.clone(), hash);
        texts.push(text);
    }
    let manifest_ms = t_manifest.elapsed().as_secs_f64() * 1e3;

    // Warm fast path: same rule set, same bytes — the cached report is
    // the report. No parsing, no analysis.
    if let Some(c) = &cache {
        if c.files == file_hashes {
            if let Some(cached) = &c.report {
                return Ok(ScanOutcome {
                    report: cached.to_report(),
                    warm: true,
                    reused_files: pending.len(),
                });
            }
        }
    }

    // Stage 3 (parallel): parse changed and unchanged files alike (the
    // call graph is a whole-workspace artifact).
    let inputs: Vec<(&PendingFile, &str)> = pending
        .iter()
        .zip(texts.iter().map(String::as_str))
        .collect();
    let records: Vec<FileRecord> = carpool_par::par_map_indexed(&inputs, |_, (p, text)| {
        FileRecord::parse(&p.rel, &p.crate_name, p.section, p.class, text)
    })
    // lint:allow(panic): a worker panic is a linter bug; run() catches it and reports exit 2
    .unwrap_or_else(|e| panic!("parallel parse failed: {e}"));

    // A file's line-rule results can be replayed only when both its
    // bytes and its crate's manifest (the classification source) are
    // unchanged.
    let reusable: Vec<bool> = pending
        .iter()
        .map(|p| {
            cache.as_ref().is_some_and(|c| {
                c.files.get(&p.rel) == file_hashes.get(&p.rel)
                    && c.files.get(&p.manifest_rel) == file_hashes.get(&p.manifest_rel)
            })
        })
        .collect();

    // Line rules, timed per rule, over changed src files only; cached
    // diagnostics replay for the rest. Manifest layering is part of
    // L003. Grouping per file keeps tie order identical to a cold scan
    // (the final sort is stable and keys on file first).
    let mut line_diags_by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    let mut reused_files = 0usize;
    for (idx, rec) in records.iter().enumerate() {
        if matches!(rec.section, Section::Src) && reusable[idx] {
            reused_files += 1;
            if let Some(diags) = cache.as_ref().and_then(|c| c.line_diags.get(&rec.path)) {
                line_diags_by_file.insert(rec.path.clone(), diags.clone());
            }
        }
    }
    for rule in Rule::ALL {
        if matches!(
            rule,
            Rule::L007
                | Rule::L008
                | Rule::L010
                | Rule::L011
                | Rule::L012
                | Rule::L013
                | Rule::L014
                | Rule::L015
        ) {
            continue;
        }
        let t = Instant::now();
        for (idx, rec) in records.iter().enumerate() {
            if !matches!(rec.section, Section::Src) || reusable[idx] {
                continue;
            }
            let diags = rules::check_line_rule(
                rule,
                rec.class,
                pending[idx].is_root,
                &rec.path,
                &rec.lines,
            );
            if !diags.is_empty() {
                line_diags_by_file
                    .entry(rec.path.clone())
                    .or_default()
                    .extend(diags);
            }
        }
        let mut ms = t.elapsed().as_secs_f64() * 1e3;
        if rule == Rule::L003 {
            report.diagnostics.append(&mut manifest_diags);
            ms += manifest_ms;
        }
        report.rule_timings_ms.insert(rule.id().to_string(), ms);
    }
    for diags in line_diags_by_file.values() {
        report.diagnostics.extend(diags.iter().cloned());
    }

    // Interprocedural pass: graph construction, then L007/L008/L010.
    let t = Instant::now();
    let graph = CallGraph::build(&records);
    report.analysis.functions = graph.nodes.len();
    report.analysis.call_edges = graph.edge_count();
    report
        .rule_timings_ms
        .insert("callgraph".to_string(), t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let (d7, hot) = interproc::check_l007(&records, &graph, aopts.strict_indexing);
    report.diagnostics.extend(d7);
    report.analysis.hot = hot;
    report
        .rule_timings_ms
        .insert(Rule::L007.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    report.diagnostics.extend(interproc::check_l008(&records));
    report
        .rule_timings_ms
        .insert(Rule::L008.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    report.diagnostics.extend(interproc::check_l010(&records));
    report
        .rule_timings_ms
        .insert(Rule::L010.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    // Flow-aware pass: effect classification feeds the stats; the
    // three rules ride the same primitives.
    let t = Instant::now();
    let effects = interproc::flow_effects(&records);
    report.analysis.flow.alloc_sites = effects.allocs;
    report.analysis.flow.f64_arith_lines = effects.f64_arith;
    report.analysis.flow.widening_ops = effects.widening;
    report.analysis.flow.narrowing_casts = effects.narrowing;
    let (d11, hot_allocs) = interproc::check_l011(&records, &graph);
    report.diagnostics.extend(d11);
    report.analysis.flow.hot_alloc_sites = hot_allocs;
    report
        .rule_timings_ms
        .insert(Rule::L011.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let (d12, budget_fns, ops_checked) = interproc::check_l012(&records);
    report.diagnostics.extend(d12);
    report.analysis.flow.budget_fns = budget_fns;
    report.analysis.flow.budget_ops_checked = ops_checked;
    report
        .rule_timings_ms
        .insert(Rule::L012.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let (d13, unit_params) = interproc::check_l013(&records);
    report.diagnostics.extend(d13);
    report.analysis.flow.unit_params = unit_params;
    report
        .rule_timings_ms
        .insert(Rule::L013.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    // Determinism-taint pass: nondeterminism sources vs the
    // byte-identical crates' reachability cone.
    let t = Instant::now();
    let (d14, taint_stats) = taint::check_l014(&records, &graph);
    report.diagnostics.extend(d14);
    report.analysis.taint = taint_stats;
    report
        .rule_timings_ms
        .insert(Rule::L014.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    // Shard-protocol discipline over the worker-pool obligations.
    let t = Instant::now();
    let (d15, shard_fns) = interproc::check_l015(&records);
    report.diagnostics.extend(d15);
    report.analysis.shard_fns = shard_fns;
    report
        .rule_timings_ms
        .insert(Rule::L015.id().to_string(), t.elapsed().as_secs_f64() * 1e3);

    if aopts.collect_graph {
        report.analysis.graph_dump = Some(graph.render(&records));
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    // Refresh the cache best-effort: current hashes, per-file line-rule
    // results (fresh and replayed alike), and the full report for the
    // next run's fast path.
    if let Some(path) = cache_path {
        cache::LintCache {
            rules_hash: cache::rules_fingerprint(),
            files: file_hashes,
            line_diags: line_diags_by_file,
            report: Some(cache::CachedReport::from_report(&report)),
        }
        .store(path);
    }
    Ok(ScanOutcome {
        report,
        warm: false,
        reused_files,
    })
}

/// The crate root file under `src/` (`lib.rs`, else `main.rs`).
fn crate_root_of(src: &Path) -> Option<PathBuf> {
    let lib = src.join("lib.rs");
    if lib.is_file() {
        return Some(lib);
    }
    let main = src.join("main.rs");
    main.is_file().then_some(main)
}

/// Compares a scan against the baseline.
pub fn ratchet(report: &ScanReport, baseline: &Baseline) -> RatchetReport {
    // Count per (rule, file).
    let mut actual: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in &report.diagnostics {
        *actual
            .entry((d.rule.id().to_string(), d.file.clone()))
            .or_default() += 1;
    }

    let mut out = RatchetReport::default();
    // New violations: any (rule, file) where actual > baseline. The
    // diagnostics listed are the whole file's worth for that rule so
    // the developer sees every candidate line.
    for ((rule, file), &count) in &actual {
        let allowed = baseline.count(rule, file);
        if count > allowed {
            out.new_violations.extend(
                report
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule.id() == rule && &d.file == file)
                    .cloned(),
            );
        }
    }
    // Stale entries: baseline says more than reality (including files
    // that no longer violate at all, or no longer exist).
    for (rule, files) in &baseline.counts {
        for (file, &allowed) in files {
            let count = actual
                .get(&(rule.clone(), file.clone()))
                .copied()
                .unwrap_or(0);
            if count < allowed {
                out.stale.push((rule.clone(), file.clone(), allowed, count));
            }
        }
    }
    out
}

/// Builds the baseline that exactly covers `report`, including the
/// per-rule timings observed during the scan.
pub fn baseline_from_scan(report: &ScanReport) -> Baseline {
    let mut b = Baseline::default();
    for d in &report.diagnostics {
        *b.counts
            .entry(d.rule.id().to_string())
            .or_default()
            .entry(d.file.clone())
            .or_default() += 1;
    }
    b.timings_ms = report.rule_timings_ms.clone();
    b
}

/// Per-rule totals of a scan.
pub fn per_rule_totals(report: &ScanReport) -> BTreeMap<&'static str, usize> {
    let mut totals: BTreeMap<&'static str, usize> = BTreeMap::new();
    for rule in Rule::ALL {
        totals.insert(rule.id(), 0);
    }
    for d in &report.diagnostics {
        *totals.entry(d.rule.id()).or_default() += 1;
    }
    totals
}

/// Per-run metadata rendered into reports (wall-clock + budget).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMeta {
    /// Total analysis wall-clock in milliseconds.
    pub elapsed_ms: f64,
    /// Non-fatal runtime budget, when set (`--budget-ms`).
    pub budget_ms: Option<u64>,
}

impl RunMeta {
    /// Whether the run exceeded its budget (always false without one).
    pub fn over_budget(&self) -> bool {
        self.budget_ms.is_some_and(|b| self.elapsed_ms > b as f64)
    }
}

/// Renders the machine-readable report (`--json`).
pub fn render_json(
    report: &ScanReport,
    verdict: &RatchetReport,
    baseline: &Baseline,
    meta: &RunMeta,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"carpool-lint/v2\",\n");
    let _ = writeln!(
        out,
        "  \"files_scanned\": {},\n  \"crates_scanned\": {},",
        report.files_scanned, report.crates_scanned
    );
    out.push_str("  \"per_rule_totals\": {");
    let totals = per_rule_totals(report);
    let mut first = true;
    for (rule, total) in &totals {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{rule}\": {total}");
    }
    out.push_str("\n  },\n  \"rule_timings_ms\": {");
    let mut first = true;
    for (rule, ms) in &report.rule_timings_ms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: {ms:.3}", baseline::json_string(rule));
    }
    out.push_str("\n  },\n  \"analysis\": {\n");
    let _ = writeln!(
        out,
        "    \"functions\": {},\n    \"call_edges\": {},",
        report.analysis.functions, report.analysis.call_edges
    );
    out.push_str("    \"hot_roots_matched\": [");
    for (k, spec) in report.analysis.hot.roots_matched.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        out.push_str(&baseline::json_string(spec));
    }
    out.push_str("],\n");
    let _ = writeln!(
        out,
        "    \"hot_root_fns\": {},\n    \"hot_reachable_fns\": {},\n    \
         \"hot_indexing_sites\": {},",
        report.analysis.hot.root_nodes,
        report.analysis.hot.reachable_fns,
        report.analysis.hot.indexing_sites
    );
    let flow = &report.analysis.flow;
    let _ = writeln!(
        out,
        "    \"flow\": {{\n      \"alloc_sites\": {},\n      \"hot_alloc_sites\": {},\n      \
         \"budget_fns\": {},\n      \"budget_ops_checked\": {},\n      \
         \"f64_arith_lines\": {},\n      \"widening_ops\": {},\n      \
         \"narrowing_casts\": {},\n      \"unit_params\": {}\n    }},",
        flow.alloc_sites,
        flow.hot_alloc_sites,
        flow.budget_fns,
        flow.budget_ops_checked,
        flow.f64_arith_lines,
        flow.widening_ops,
        flow.narrowing_casts,
        flow.unit_params
    );
    let taint = &report.analysis.taint;
    let _ = writeln!(
        out,
        "    \"taint\": {{\n      \"det_fns\": {},\n      \"det_reachable_fns\": {},\n      \
         \"det_sources\": {}\n    }},\n    \"shard_fns\": {}",
        taint.det_fns, taint.det_reachable_fns, taint.det_sources, report.analysis.shard_fns
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"elapsed_ms\": {:.3},", meta.elapsed_ms);
    if let Some(budget) = meta.budget_ms {
        let _ = writeln!(
            out,
            "  \"budget_ms\": {budget},\n  \"budget_exceeded\": {},",
            meta.over_budget()
        );
    }
    let _ = writeln!(
        out,
        "  \"baselined_total\": {},",
        Rule::ALL
            .iter()
            .map(|r| baseline.rule_total(r.id()))
            .sum::<usize>()
    );
    let _ = writeln!(out, "  \"ok\": {},", verdict.ok());
    out.push_str("  \"new_violations\": [");
    for (k, d) in verdict.new_violations.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": {}, \"line\": {}, \"message\": {}}}",
            d.rule.id(),
            baseline::json_string(&d.file),
            d.line,
            baseline::json_string(&d.message)
        );
    }
    out.push_str("\n  ],\n  \"stale_baseline\": [");
    for (k, (rule, file, allowed, actual)) in verdict.stale.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{rule}\", \"file\": {}, \"baseline\": {allowed}, \
             \"actual\": {actual}}}",
            baseline::json_string(file),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the human-readable report.
pub fn render_human(
    report: &ScanReport,
    verdict: &RatchetReport,
    baseline: &Baseline,
    meta: &RunMeta,
) -> String {
    let mut out = String::new();
    for d in &verdict.new_violations {
        let _ = writeln!(out, "{d}");
    }
    for (rule, file, allowed, actual) in &verdict.stale {
        let _ = writeln!(
            out,
            "stale baseline: {rule} {file} records {allowed} but only {actual} remain \
             — run with --write-baseline to ratchet down"
        );
    }
    let totals = per_rule_totals(report);
    let baselined: usize = Rule::ALL.iter().map(|r| baseline.rule_total(r.id())).sum();
    let _ = writeln!(
        out,
        "carpool-lint: {} files in {} crates, {} findings ({} baselined), {} new, {} stale",
        report.files_scanned,
        report.crates_scanned,
        totals.values().sum::<usize>(),
        baselined,
        verdict.new_violations.len(),
        verdict.stale.len()
    );
    for rule in Rule::ALL {
        let _ = writeln!(
            out,
            "  {}: {:<4} {}",
            rule.id(),
            totals.get(rule.id()).copied().unwrap_or(0),
            rule.summary()
        );
    }
    let _ = writeln!(
        out,
        "  call graph: {} fns, {} edges; hot paths: {} roots ({} specs), {} reachable fns, \
         {} indexing sites",
        report.analysis.functions,
        report.analysis.call_edges,
        report.analysis.hot.root_nodes,
        report.analysis.hot.roots_matched.len(),
        report.analysis.hot.reachable_fns,
        report.analysis.hot.indexing_sites
    );
    let flow = &report.analysis.flow;
    let _ = writeln!(
        out,
        "  flow: {} alloc sites ({} hot), {} budget fns ({} ops proved), \
         {} unit-suffixed params",
        flow.alloc_sites,
        flow.hot_alloc_sites,
        flow.budget_fns,
        flow.budget_ops_checked,
        flow.unit_params
    );
    let taint = &report.analysis.taint;
    let _ = writeln!(
        out,
        "  taint: {} det-crate fns, {} fns in their cone, {} nondeterminism sources; \
         shard protocol: {} fns checked",
        taint.det_fns, taint.det_reachable_fns, taint.det_sources, report.analysis.shard_fns
    );
    if meta.over_budget() {
        let _ = writeln!(
            out,
            "  warning: analysis took {:.0} ms, over the {} ms budget (non-fatal) — \
             see rule_timings_ms in --json",
            meta.elapsed_ms,
            meta.budget_ms.unwrap_or(0)
        );
    }
    out
}

/// Loads the baseline at `path`; a missing file is an empty baseline.
///
/// # Errors
///
/// Returns [`LintError::Baseline`] when the file exists but is
/// malformed, and [`LintError::Io`] on read failures.
pub fn load_baseline(path: &Path) -> Result<Baseline, LintError> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            Baseline::from_json(&text).map_err(|e| LintError::Baseline(path.to_path_buf(), e))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(LintError::Io(path.to_path_buf(), e)),
    }
}

/// Parsed command line shared by `carpool-lint` and `carpool lint`.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Workspace root (defaults to the nearest ancestor with
    /// `Cargo.toml` + `crates/`).
    pub root: Option<PathBuf>,
    /// Emit the JSON report instead of human text.
    pub json: bool,
    /// Rewrite the baseline to match the current scan (ratchet down).
    pub write_baseline: bool,
    /// Allow `--write-baseline` to *increase* counts (escape hatch).
    pub force: bool,
    /// Print the long-form rationale of one rule and exit.
    pub explain: Option<String>,
    /// Dump the call graph instead of linting.
    pub graph: bool,
    /// Non-fatal runtime budget in milliseconds.
    pub budget_ms: Option<u64>,
    /// Report hot-path indexing as L007 findings (off by default).
    pub strict_indexing: bool,
    /// Also write a SARIF 2.1.0 report to this path.
    pub sarif: Option<PathBuf>,
    /// Ignore the incremental cache (force a cold scan; the cache is
    /// still rewritten afterwards).
    pub no_cache: bool,
}

impl LintOptions {
    /// Parses `--json`, `--write-baseline`, `--force`, `--root <dir>`,
    /// `--explain <rule>`, `--graph`, `--budget-ms <n>`,
    /// `--strict-indexing`, `--sarif <path>`, `--no-cache`.
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<LintOptions, String> {
        let mut opts = LintOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--json" => opts.json = true,
                "--write-baseline" => opts.write_baseline = true,
                "--force" => opts.force = true,
                "--graph" => opts.graph = true,
                "--strict-indexing" => opts.strict_indexing = true,
                "--no-cache" => opts.no_cache = true,
                "--root" => {
                    let dir = iter.next().ok_or("--root needs a directory")?;
                    opts.root = Some(PathBuf::from(dir));
                }
                "--explain" => {
                    let rule = iter.next().ok_or("--explain needs a rule id (e.g. L007)")?;
                    opts.explain = Some(rule);
                }
                "--sarif" => {
                    let path = iter.next().ok_or("--sarif needs an output path")?;
                    opts.sarif = Some(PathBuf::from(path));
                }
                "--budget-ms" => {
                    let value = iter.next().ok_or("--budget-ms needs a number")?;
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("--budget-ms: '{value}' is not a number"))?;
                    opts.budget_ms = Some(ms);
                }
                other => {
                    return Err(format!(
                        "unknown lint option '{other}' \
                         (expected --json, --write-baseline, --force, --root <dir>, \
                         --explain <rule>, --graph, --budget-ms <n>, --strict-indexing, \
                         --sarif <path>, --no-cache)"
                    ));
                }
            }
        }
        Ok(opts)
    }
}

/// Finds the workspace root: the given override, else the nearest
/// ancestor of the current directory containing `Cargo.toml` and
/// `crates/`.
pub fn find_root(explicit: Option<&Path>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root.to_path_buf());
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Full gate run driven by [`LintOptions`]; prints to stdout/stderr and
/// returns the process exit code.
///
/// Exit-code contract (tested in `tests/exit_codes.rs`):
/// * `0` — clean gate (or informational modes: `--explain`, `--graph`,
///   a successful `--write-baseline`),
/// * `1` — gate failure: new violations vs the baseline, a stale
///   baseline, or a refused baseline growth,
/// * `2` — internal analyzer error: unusable workspace root, unreadable
///   sources, malformed baseline, or an analyzer panic (caught here so
///   a linter bug is never reported as a lint verdict).
pub fn run(opts: &LintOptions) -> i32 {
    if let Some(id) = &opts.explain {
        return match Rule::from_id(id) {
            Some(rule) => {
                println!("{}", rule.explain());
                0
            }
            None => {
                eprintln!("carpool-lint: unknown rule '{id}' (expected L001..L015)");
                2
            }
        };
    }
    let Some(root) = find_root(opts.root.as_deref()) else {
        eprintln!("carpool-lint: cannot find the workspace root (try --root <dir>)");
        return 2;
    };
    let started = Instant::now();
    let baseline_path = root.join(BASELINE_FILE);
    let aopts = AnalysisOptions {
        strict_indexing: opts.strict_indexing,
        collect_graph: opts.graph,
    };
    let cache_file = root.join(cache::CACHE_FILE);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scan_workspace_cached(&root, &aopts, Some(&cache_file), !opts.no_cache)
    }));
    let report = match outcome {
        Ok(Ok(o)) => o.report,
        Ok(Err(e)) => {
            eprintln!("carpool-lint: {e}");
            return 2;
        }
        Err(payload) => {
            eprintln!(
                "carpool-lint: internal analyzer error: {}",
                panic_message(payload.as_ref())
            );
            return 2;
        }
    };

    if opts.graph {
        print!("{}", report.analysis.graph_dump.clone().unwrap_or_default());
        return 0;
    }
    if opts.write_baseline {
        return write_baseline(&report, &baseline_path, opts.force);
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("carpool-lint: {e}");
            return 2;
        }
    };
    let verdict = ratchet(&report, &baseline);
    let meta = RunMeta {
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        budget_ms: opts.budget_ms,
    };
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, sarif::render_sarif(&report, &verdict)) {
            eprintln!("carpool-lint: cannot write {}: {e}", path.display());
            return 2;
        }
    }
    if opts.json {
        print!("{}", render_json(&report, &verdict, &baseline, &meta));
    } else {
        print!("{}", render_human(&report, &verdict, &baseline, &meta));
    }
    i32::from(!verdict.ok())
}

/// Best-effort panic payload text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "unknown panic payload"
    }
}

fn write_baseline(report: &ScanReport, path: &Path, force: bool) -> i32 {
    let fresh = baseline_from_scan(report);
    // Initial creation has nothing to ratchet against.
    match path.is_file().then(|| load_baseline(path)).transpose() {
        Ok(None) => {}
        Ok(Some(existing)) => {
            // The ratchet only turns one way: refuse silent increases.
            let mut grew = Vec::new();
            for (rule, files) in &fresh.counts {
                for (file, &count) in files {
                    let prior = existing.count(rule, file);
                    if count > prior {
                        grew.push(format!("{rule} {file}: {prior} -> {count}"));
                    }
                }
            }
            if !grew.is_empty() && !force {
                eprintln!(
                    "carpool-lint: refusing to grow the baseline (fix the new findings, \
                     waive them inline, or pass --force):"
                );
                for g in grew {
                    eprintln!("  {g}");
                }
                return 1;
            }
        }
        Err(e) => {
            eprintln!("carpool-lint: warning: replacing unreadable baseline ({e})");
        }
    }
    match std::fs::write(path, fresh.to_json()) {
        Ok(()) => {
            println!(
                "carpool-lint: baseline written to {} ({} findings)",
                path.display(),
                report.diagnostics.len()
            );
            0
        }
        Err(e) => {
            eprintln!("carpool-lint: cannot write {}: {e}", path.display());
            2
        }
    }
}

fn read_file(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e))
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rs_files_under(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for path in read_dir_sorted(&current)? {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
