//! Flow-aware intraprocedural analysis over parsed function bodies.
//!
//! Two passes share this module:
//!
//! * **Effect classification** — each statement of a function body is
//!   scanned for allocation effects (L011), f64 arithmetic, and
//!   widening/narrowing integer conversions, with loop-nesting
//!   tracked so "allocates per iteration" is distinguishable from
//!   one-time setup.
//! * **Interval abstract interpretation** (L012) — integer locals are
//!   tracked through the [`crate::ranges::Interval`] lattice. Input
//!   bounds come from `// lint:budget(i32: ...)` annotations; the
//!   interpreter then proves that no *non-saturating* `+ - * <<` (or
//!   negation) over budgeted data can leave the `i32` range. Values the
//!   analysis cannot see (calls, indexing, fields) become unbounded
//!   top values; an annotated name re-bound from such a source is
//!   re-seeded to its declared interval, which is how loop patterns
//!   like `for &(la, lb) in lattice` pick their bounds back up.
//!
//! The analysis is deliberately modest: it never panics, degrades to
//! "unknown" on shapes it cannot parse, and only reports on data that
//! is *tracked* — i.e. transitively tainted by a budget annotation —
//! so un-annotated functions are silent by construction.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{FileRecord, FnItem};
use crate::ranges::Interval;
use crate::scanner::SourceLine;

// ---------------------------------------------------------------------
// Effect classification
// ---------------------------------------------------------------------

/// Allocation tokens L011 looks for: `(token, only flagged in loops)`.
/// `.push` is amortized-O(1) and only a hot-path problem when it can
/// grow per iteration; the others allocate on every call.
const ALLOC_TOKENS: [(&str, bool); 7] = [
    ("Vec::new", false),
    ("Vec::with_capacity", false),
    (".push(", true),
    ("Box::new", false),
    ("format!", false),
    (".clone()", false),
    (".to_vec()", false),
];

/// `.collect` is matched separately so both `.collect()` and
/// `.collect::<T>()` forms hit.
const COLLECT_TOKEN: &str = ".collect";

/// One allocation effect inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// 1-based source line.
    pub line: usize,
    /// The allocation token found (display form).
    pub what: &'static str,
    /// Whether the site is inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// Statement-effect counts over one function body (report statistics).
#[derive(Debug, Clone, Copy, Default)]
pub struct EffectCounts {
    /// Allocation effects found (loop-gated tokens counted only when
    /// they sit inside a loop).
    pub allocs: usize,
    /// Lines performing f64 arithmetic.
    pub f64_arith: usize,
    /// Widening integer conversions (`i64::from(...)`-style).
    pub widening: usize,
    /// Potentially narrowing `as <int>` casts.
    pub narrowing: usize,
}

impl EffectCounts {
    /// Accumulates another function's counts.
    pub fn absorb(&mut self, other: EffectCounts) {
        self.allocs += other.allocs;
        self.f64_arith += other.f64_arith;
        self.widening += other.widening;
        self.narrowing += other.narrowing;
    }
}

/// Marks, for every line index of `lines`, whether it is inside a
/// `for`/`while`/`loop` body (brace-tracked across lines).
fn loop_mask(lines: &[SourceLine], from_line: usize, to_line: usize) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    // Stack of open braces; `true` entries are loop bodies.
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    for (idx, line) in lines.iter().enumerate() {
        if line.number < from_line || line.number > to_line {
            continue;
        }
        mask[idx] = stack.iter().any(|&l| l);
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if is_ident_start(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if matches!(word.as_str(), "for" | "while" | "loop") {
                    pending_loop = true;
                }
                continue;
            }
            match c {
                '{' => {
                    stack.push(pending_loop);
                    pending_loop = false;
                    // A loop body covers lines after its opening brace.
                    mask[idx] = mask[idx] || stack.iter().any(|&l| l);
                }
                '}' => {
                    stack.pop();
                    pending_loop = false;
                }
                ';' => pending_loop = false,
                _ => {}
            }
            i += 1;
        }
    }
    mask
}

/// Whether a fn name marks a setup-time path by convention:
/// constructors and builders run at scenario construction, not in the
/// steady-state loop, so their allocations are L011-exempt.
pub fn is_setup_fn(name: &str) -> bool {
    name == "new"
        || name == "default"
        || name.starts_with("new_")
        || name.starts_with("with_")
        || name.starts_with("build")
        || name.starts_with("from_")
}

/// Finds the allocation effects inside one function body.
///
/// `push`-in-loop sites are suppressed when the body pre-sizes
/// capacity (`with_capacity` / `.reserve(`) before the loop — the push
/// is then amortized O(1) with no reallocation, which is the very
/// pattern the hot-path kernels use (the `with_capacity` call itself
/// still reports, so the one-time allocation stays visible).
pub fn alloc_sites(file: &FileRecord, item: &FnItem) -> Vec<AllocSite> {
    let mut out = Vec::new();
    if item.body_start == 0 {
        return out;
    }
    let mask = loop_mask(&file.lines, item.body_start, item.body_end);
    let mut capacity_seen = false;
    for (idx, line) in file.lines.iter().enumerate() {
        if line.number < item.body_start || line.number > item.body_end || line.in_test {
            continue;
        }
        if line.code.contains("with_capacity") || line.code.contains(".reserve(") {
            capacity_seen = true;
        }
        let in_loop = mask[idx];
        for (token, loop_only) in ALLOC_TOKENS {
            if !line.code.contains(token) || (loop_only && !in_loop) {
                continue;
            }
            if token == ".push(" && capacity_seen {
                continue;
            }
            out.push(AllocSite {
                line: line.number,
                what: token.trim_start_matches('.').trim_end_matches('('),
                in_loop,
            });
        }
        if line.code.contains(COLLECT_TOKEN) {
            out.push(AllocSite {
                line: line.number,
                what: "collect",
                in_loop,
            });
        }
    }
    out
}

/// Classifies statement effects over one function body.
pub fn classify_effects(file: &FileRecord, item: &FnItem) -> EffectCounts {
    let mut counts = EffectCounts {
        allocs: alloc_sites(file, item).len(),
        ..EffectCounts::default()
    };
    for line in &file.lines {
        if line.number < item.body_start || line.number > item.body_end || line.in_test {
            continue;
        }
        if has_f64_arith(&line.code) {
            counts.f64_arith += 1;
        }
        counts.widening += widening_conversions(&line.code);
        counts.narrowing += narrowing_casts(&line.code);
    }
    counts
}

/// Whether a line mixes a float literal (or f64 path) with arithmetic.
fn has_f64_arith(code: &str) -> bool {
    let floaty = code.contains("f64") || code.contains("f32") || has_float_literal(code);
    floaty && code.contains(['+', '-', '*', '/'])
}

/// Whether the line contains a `<digits>.<digits>` float literal.
fn has_float_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    for at in 1..bytes.len().saturating_sub(1) {
        if bytes[at] == b'.' && bytes[at - 1].is_ascii_digit() && bytes[at + 1].is_ascii_digit() {
            return true;
        }
    }
    false
}

/// Counts widening `iN::from(` / `uN::from(` conversion calls.
fn widening_conversions(code: &str) -> usize {
    const WIDENING: [&str; 8] = [
        "i16::from(",
        "i32::from(",
        "i64::from(",
        "i128::from(",
        "u16::from(",
        "u32::from(",
        "u64::from(",
        "u128::from(",
    ];
    WIDENING.iter().map(|t| code.matches(t).count()).sum()
}

/// Counts `as <int>` casts (potential narrowings; L004 audits intent).
fn narrowing_casts(code: &str) -> usize {
    const INT_TYPES: [&str; 12] = [
        "u8", "u16", "u32", "u64", "usize", "u128", "i8", "i16", "i32", "i64", "isize", "i128",
    ];
    let mut count = 0usize;
    let mut from = 0usize;
    while let Some(at) = code[from..].find(" as ") {
        let at = from + at;
        from = at + 4;
        let after = code[at + 4..].trim_start();
        if INT_TYPES
            .iter()
            .any(|ty| crate::rules::token_at(after, 0, ty))
        {
            count += 1;
        }
    }
    count
}

// ---------------------------------------------------------------------
// Budget annotations and fn signatures
// ---------------------------------------------------------------------

/// One parsed `// lint:budget(i32: ...)` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Names the bound applies to; empty means "every parameter".
    pub names: Vec<String>,
    /// Symmetric magnitude bound: values lie in `[-bound, bound]`.
    pub bound: i128,
    /// Line the annotation sits on.
    pub line: usize,
}

/// Extracts the budget annotations attached to `item`: on the
/// declaration line's comment, or on comment/attribute lines directly
/// above it (the same attachment walk doc comments use).
pub fn budget_specs(file: &FileRecord, item: &FnItem) -> Vec<BudgetSpec> {
    let mut specs = Vec::new();
    let Some(decl_idx) = item.decl_line.checked_sub(1) else {
        return specs;
    };
    let mut collect = |idx: usize| {
        if let Some(line) = file.lines.get(idx) {
            for (names, bound) in parse_budget_comment(&line.comment) {
                specs.push(BudgetSpec {
                    names,
                    bound,
                    line: line.number,
                });
            }
        }
    };
    collect(decl_idx);
    let mut k = decl_idx;
    while k > 0 {
        k -= 1;
        let Some(line) = file.lines.get(k) else { break };
        let code = line.code.trim();
        let attr_like = code.starts_with("#[") || code.ends_with(']');
        if !code.is_empty() && !attr_like {
            break;
        }
        if code.is_empty() && line.comment.is_empty() {
            break;
        }
        collect(k);
    }
    specs.sort_by_key(|s| s.line);
    specs
}

/// Parses every `lint:budget(i32: [names in] ±N)` occurrence in one
/// comment. `N` may be decimal or `2^k`; the `±` is optional and also
/// accepted as `+-`.
fn parse_budget_comment(comment: &str) -> Vec<(Vec<String>, i128)> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:budget(") {
        rest = &rest[at + "lint:budget(".len()..];
        let Some(close) = rest.find(')') else { break };
        let body = &rest[..close];
        rest = &rest[close + 1..];
        let Some(spec) = body.trim().strip_prefix("i32") else {
            continue;
        };
        let Some(spec) = spec.trim_start().strip_prefix(':') else {
            continue;
        };
        let spec = spec.trim();
        let (names_text, bound_text) = match find_word(spec, "in") {
            Some(at) => (&spec[..at], &spec[at + 2..]),
            None => ("", spec),
        };
        let Some(bound) = parse_bound(bound_text) else {
            continue;
        };
        let names: Vec<String> = names_text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        out.push((names, bound));
    }
    out
}

/// Finds a word-bounded occurrence of `word` in `text`.
fn find_word(text: &str, word: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(at) = text[from..].find(word) {
        let at = from + at;
        from = at + 1;
        if crate::rules::token_at(text, at, word) {
            return Some(at);
        }
    }
    None
}

/// Parses `±N`, `+-N`, `N`, or `2^k` into a magnitude.
fn parse_bound(text: &str) -> Option<i128> {
    let t = text
        .trim()
        .trim_start_matches('±')
        .trim_start_matches("+/-")
        .trim_start_matches("+-")
        .trim();
    if let Some((base, exp)) = t.split_once('^') {
        let base: i128 = base.trim().parse().ok()?;
        let exp: u32 = exp.trim().parse().ok()?;
        if base != 2 || exp > 100 {
            return None;
        }
        return Some(1i128 << exp);
    }
    t.replace('_', "").parse().ok()
}

/// The signature text of `item`: the declaration line through the line
/// the body opens on (or just the declaration line for bodiless fns),
/// comments and strings already blanked.
pub fn signature_text(file: &FileRecord, item: &FnItem) -> String {
    let end = if item.body_start >= item.decl_line {
        item.body_start.max(item.decl_line)
    } else {
        item.decl_line
    };
    let mut out = String::new();
    for line in &file.lines {
        if line.number >= item.decl_line && line.number <= end {
            out.push_str(&line.code);
            out.push(' ');
        }
    }
    out
}

/// Parameter names of `item`, in declaration order, extracted from the
/// signature's parenthesized parameter list. `self` receivers are
/// skipped, so positions line up with method-call arguments. Tuple
/// patterns contribute each of their binding names at that position.
pub fn param_names(file: &FileRecord, item: &FnItem) -> Vec<Vec<String>> {
    let sig = signature_text(file, item);
    let Some(fn_at) = find_word(&sig, "fn") else {
        return Vec::new();
    };
    let after = &sig[fn_at..];
    let Some(open_rel) = after.find('(') else {
        return Vec::new();
    };
    let chars: Vec<char> = after[open_rel..].chars().collect();
    // Balanced parameter list, respecting nested () [] <> groups.
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut end = chars.len();
    for (k, &c) in chars.iter().enumerate() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            _ => {}
        }
    }
    let inner: String = chars[1..end.min(chars.len())].iter().collect();
    let _ = angle;
    let mut params: Vec<Vec<String>> = Vec::new();
    for part in split_args(&inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // The binding pattern sits before the `:` (generic bounds live
        // inside the type side, which we discard).
        let pat = part.split(':').next().unwrap_or(part);
        let names: Vec<String> = idents_of(pat)
            .into_iter()
            .filter(|n| !matches!(n.as_str(), "mut" | "ref" | "self" | "_"))
            .collect();
        if idents_of(pat).iter().any(|n| n == "self") {
            continue;
        }
        if !names.is_empty() {
            params.push(names);
        }
    }
    params
}

/// Splits an argument/parameter list on top-level commas (respecting
/// `()`, `[]`, `{}`, and `<>` nesting).
pub fn split_args(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    for (at, c) in text.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '<' => angle += 1,
            // `->` is not a closing angle.
            '>' if !text[..at].ends_with('-') => angle = (angle - 1).max(0),
            ',' if depth == 0 && angle == 0 => {
                parts.push(&text[start..at]);
                start = at + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// All identifiers in a text fragment, in order.
pub fn idents_of(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if is_ident_start(chars[i]) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            out.push(chars[start..i].iter().collect());
        } else {
            i += 1;
        }
    }
    out
}

const fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

const fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

// ---------------------------------------------------------------------
// Statement splitting
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum StmtKind {
    /// A `;`-terminated (or block-tail) statement.
    Simple,
    /// A block-opening head (`for ... {`, `if ... {`, `... => {`).
    Open { is_loop: bool },
    /// A block close.
    Close,
}

#[derive(Debug, Clone)]
struct Stmt {
    kind: StmtKind,
    line: usize,
    text: String,
}

/// Splits the body lines of a fn into a flat statement stream. `;`,
/// `{` and `}` inside `()`/`[]` groups (array types, closure bodies in
/// arguments) do not split.
fn split_stmts(lines: &[SourceLine], from_line: usize, to_line: usize) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut acc = String::new();
    let mut acc_line = 0usize;
    let mut group = 0usize;
    for line in lines {
        if line.number < from_line || line.number > to_line || line.in_test {
            continue;
        }
        for c in line.code.chars() {
            if acc.trim().is_empty() && !c.is_whitespace() {
                acc_line = line.number;
            }
            match c {
                '(' | '[' => {
                    group += 1;
                    acc.push(c);
                }
                ')' | ']' => {
                    group = group.saturating_sub(1);
                    acc.push(c);
                }
                ';' if group == 0 => {
                    if !acc.trim().is_empty() {
                        stmts.push(Stmt {
                            kind: StmtKind::Simple,
                            line: acc_line,
                            text: std::mem::take(&mut acc),
                        });
                    }
                    acc.clear();
                }
                '{' if group == 0 => {
                    let head = std::mem::take(&mut acc);
                    let is_loop = ["for", "while", "loop"]
                        .iter()
                        .any(|kw| find_word(&head, kw).is_some());
                    stmts.push(Stmt {
                        kind: StmtKind::Open { is_loop },
                        line: if head.trim().is_empty() {
                            line.number
                        } else {
                            acc_line
                        },
                        text: head,
                    });
                }
                '}' if group == 0 => {
                    if !acc.trim().is_empty() {
                        stmts.push(Stmt {
                            kind: StmtKind::Simple,
                            line: acc_line,
                            text: std::mem::take(&mut acc),
                        });
                    }
                    acc.clear();
                    stmts.push(Stmt {
                        kind: StmtKind::Close,
                        line: line.number,
                        text: String::new(),
                    });
                }
                _ => acc.push(c),
            }
        }
        acc.push(' ');
    }
    stmts
}

// ---------------------------------------------------------------------
// Interval interpretation (L012)
// ---------------------------------------------------------------------

/// An abstract value: an interval plus a taint flag marking data
/// derived from a budget annotation. Only tracked data is checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Val {
    iv: Interval,
    tracked: bool,
}

impl Val {
    const UNKNOWN: Val = Val {
        iv: Interval::TOP,
        tracked: false,
    };

    fn exact(v: i128) -> Val {
        Val {
            iv: Interval::exact(v),
            tracked: false,
        }
    }
}

type Env = BTreeMap<String, Val>;

/// One L012 finding inside an annotated fn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetFinding {
    /// 1-based source line of the offending operation.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Outcome of checking one annotated fn.
#[derive(Debug, Clone, Default)]
pub struct BudgetReport {
    /// Violations (wraps possible, or bounds unprovable).
    pub findings: Vec<BudgetFinding>,
    /// Distinct `(line, operator)` sites of non-saturating arithmetic
    /// over budgeted data that were bounds-checked.
    pub ops_checked: usize,
}

struct Interp<'a> {
    seeds: &'a BTreeMap<String, Interval>,
    findings: BTreeSet<(usize, String)>,
    ops_seen: BTreeSet<(usize, &'static str)>,
    collect: bool,
    /// Recursion fuel: malformed nesting degrades to unknown instead
    /// of overflowing the stack.
    fuel: u32,
}

/// Runs the interval interpretation of one annotated fn.
///
/// Each [`BudgetSpec`] seeds its named identifiers (or, with no names,
/// every parameter) to `[-bound, bound]` as *tracked* values. The
/// interpreter then walks the body: non-saturating `+ - * <<` (and
/// negation) over tracked operands must stay inside `i32`; tracked
/// data meeting an unbounded operand is reported as unprovable.
pub fn check_budget_fn(file: &FileRecord, item: &FnItem, specs: &[BudgetSpec]) -> BudgetReport {
    let mut report = BudgetReport::default();
    if item.body_start == 0 || specs.is_empty() {
        return report;
    }
    let mut seeds: BTreeMap<String, Interval> = BTreeMap::new();
    for spec in specs {
        let iv = Interval::symmetric(spec.bound);
        if spec.names.is_empty() {
            for group in param_names(file, item) {
                for name in group {
                    let entry = seeds.entry(name).or_insert(iv);
                    *entry = entry.join(iv);
                }
            }
        } else {
            for name in &spec.names {
                let entry = seeds.entry(name.clone()).or_insert(iv);
                *entry = entry.join(iv);
            }
        }
    }
    let mut env: Env = Env::new();
    for (name, &iv) in &seeds {
        env.insert(name.clone(), Val { iv, tracked: true });
    }
    let stmts = split_stmts(&file.lines, item.body_start, item.body_end);
    let mut interp = Interp {
        seeds: &seeds,
        findings: BTreeSet::new(),
        ops_seen: BTreeSet::new(),
        collect: false,
        fuel: 0,
    };
    // The first Open is the fn header itself; start past it so its
    // matching Close ends the walk.
    let start = stmts
        .iter()
        .position(|s| matches!(s.kind, StmtKind::Open { .. }))
        .map_or(0, |at| at + 1);
    // Pass 1 (probe) stabilizes loop-carried state; pass 2 collects.
    let mut cursor = start;
    interp.run_block(&stmts, &mut cursor, &mut env.clone());
    interp.collect = true;
    let mut cursor = start;
    interp.run_block(&stmts, &mut cursor, &mut env);
    report.ops_checked = interp.ops_seen.len();
    report.findings = interp
        .findings
        .into_iter()
        .map(|(line, message)| BudgetFinding { line, message })
        .collect();
    report
}

impl Interp<'_> {
    /// Executes statements until the block's Close (or the end).
    fn run_block(&mut self, stmts: &[Stmt], cursor: &mut usize, env: &mut Env) {
        while *cursor < stmts.len() {
            let stmt = &stmts[*cursor];
            *cursor += 1;
            match &stmt.kind {
                StmtKind::Close => return,
                StmtKind::Simple => self.exec_stmt(stmt, env),
                StmtKind::Open { is_loop } => {
                    self.exec_head(stmt, env);
                    let body_start = *cursor;
                    if *is_loop {
                        // Probe the body once, widen what changed, probe
                        // again, then run for real on the stable state.
                        let entry = env.clone();
                        let was_collect = self.collect;
                        self.collect = false;
                        for _ in 0..2 {
                            let mut probe = env.clone();
                            let mut c = body_start;
                            self.run_block(stmts, &mut c, &mut probe);
                            // Loop heads re-execute per iteration too.
                            self.exec_head(stmt, &mut probe);
                            for (name, after) in probe {
                                let before = env.get(&name).copied().unwrap_or(Val::UNKNOWN);
                                if env.contains_key(&name) && after != before {
                                    env.insert(
                                        name,
                                        Val {
                                            iv: before.iv.widen(before.iv.join(after.iv)),
                                            tracked: before.tracked || after.tracked,
                                        },
                                    );
                                }
                            }
                        }
                        self.collect = was_collect;
                        let mut body_env = env.clone();
                        self.run_block(stmts, cursor, &mut body_env);
                        // The loop may run zero times: join, not replace.
                        join_env(env, &entry, &body_env);
                    } else {
                        // Conditional block: the body may not execute.
                        let entry = env.clone();
                        let mut body_env = env.clone();
                        self.run_block(stmts, cursor, &mut body_env);
                        join_env(env, &entry, &body_env);
                    }
                }
            }
        }
    }

    /// Processes a block head: loop/`if let` bindings and condition
    /// expressions.
    fn exec_head(&mut self, stmt: &Stmt, env: &mut Env) {
        let text = stmt.text.trim();
        if let Some(after_for) = strip_leading_word(text, "for") {
            if let Some(at) = find_word(after_for, "in") {
                let (pat, expr) = (&after_for[..at], &after_for[at + 2..]);
                self.eval(expr, env, stmt.line);
                self.bind_pattern(pat, Val::UNKNOWN, env);
            }
            return;
        }
        for kw in ["if", "while", "match", "else"] {
            if let Some(rest) = strip_leading_word(text, kw) {
                let rest = strip_leading_word(rest, "if").unwrap_or(rest); // `else if`
                if let Some(after_let) = strip_leading_word(rest.trim_start(), "let") {
                    // `if let PAT = EXPR` / `while let PAT = EXPR`.
                    if let Some(eq) = top_level_assign(after_let) {
                        let (pat, expr) = (&after_let[..eq], &after_let[eq + 1..]);
                        self.eval(expr, env, stmt.line);
                        self.bind_pattern(pat, Val::UNKNOWN, env);
                        return;
                    }
                }
                self.eval(rest, env, stmt.line);
                return;
            }
        }
        if text.contains("=>") {
            // Match arm: bind the pattern names conservatively.
            let pat = text.split("=>").next().unwrap_or("");
            self.bind_pattern(pat, Val::UNKNOWN, env);
            return;
        }
        if let Some(after_let) = strip_leading_word(text, "let") {
            // `let x = <block expr> {` — the tail value is invisible.
            let pat = after_let
                .split('=')
                .next()
                .unwrap_or(after_let)
                .split(':')
                .next()
                .unwrap_or(after_let);
            self.bind_pattern(pat, Val::UNKNOWN, env);
            return;
        }
        self.eval(text, env, stmt.line);
    }

    /// Executes one simple statement.
    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env) {
        let text = stmt.text.trim();
        if let Some(after_let) = strip_leading_word(text, "let") {
            let after_let = strip_leading_word(after_let.trim_start(), "mut").unwrap_or(after_let);
            let Some(eq) = top_level_assign(after_let) else {
                self.bind_pattern(after_let, Val::UNKNOWN, env);
                return;
            };
            let (lhs, rhs) = (&after_let[..eq], &after_let[eq + 1..]);
            let val = self.eval(rhs, env, stmt.line);
            let pat = lhs.split(':').next().unwrap_or(lhs);
            self.bind_pattern(pat, val, env);
            return;
        }
        for kw in ["return", "break"] {
            if let Some(rest) = strip_leading_word(text, kw) {
                self.eval(rest, env, stmt.line);
                return;
            }
        }
        // Compound assignment `x op= rhs` desugars to `x = x op rhs`.
        for (op_text, op) in [
            ("+=", "+"),
            ("-=", "-"),
            ("*=", "*"),
            ("<<=", "<<"),
            (">>=", ">>"),
            ("/=", "/"),
            ("%=", "%"),
            ("|=", "|"),
            ("&=", "&"),
            ("^=", "^"),
        ] {
            if let Some(at) = find_top_level(text, op_text) {
                let (lhs, rhs) = (&text[..at], &text[at + op_text.len()..]);
                let base = self.place_value(lhs, env);
                let rv = self.eval(rhs, env, stmt.line);
                let result = self.apply_binop(op, base, rv, stmt.line);
                self.assign_place(lhs, result, env);
                return;
            }
        }
        if let Some(eq) = top_level_assign(text) {
            let (lhs, rhs) = (&text[..eq], &text[eq + 1..]);
            let val = self.eval(rhs, env, stmt.line);
            self.assign_place(lhs, val, env);
            return;
        }
        self.eval(text, env, stmt.line);
    }

    /// Current abstract value of an assignment target.
    fn place_value(&mut self, lhs: &str, env: &Env) -> Val {
        let lhs = lhs.trim().trim_start_matches('*');
        match env.get(lhs) {
            Some(&v) => v,
            None => Val::UNKNOWN,
        }
    }

    /// Writes to an assignment target; non-trivial places (indexing,
    /// fields) are invisible to the environment.
    fn assign_place(&mut self, lhs: &str, val: Val, env: &mut Env) {
        let lhs = lhs.trim().trim_start_matches('*');
        if idents_of(lhs).len() == 1 && lhs.chars().all(is_ident_char) {
            self.bind_one(lhs, val, env);
        }
    }

    /// Binds every identifier of a pattern. Annotated names bound from
    /// an unanalyzable source re-seed to their declared interval.
    fn bind_pattern(&mut self, pat: &str, val: Val, env: &mut Env) {
        let names = idents_of(pat);
        let distribute = names.len() == 1;
        for name in names {
            if matches!(name.as_str(), "mut" | "ref" | "_" | "box") {
                continue;
            }
            let v = if distribute { val } else { Val::UNKNOWN };
            self.bind_one(&name, v, env);
        }
    }

    fn bind_one(&mut self, name: &str, val: Val, env: &mut Env) {
        let val = if !val.tracked && val.iv.is_top() {
            match self.seeds.get(name) {
                // Re-seed: the annotation is the documented bound for
                // whatever source the analysis could not see.
                Some(&iv) => Val { iv, tracked: true },
                None => val,
            }
        } else {
            val
        };
        env.insert(name.to_string(), val);
    }

    /// Applies one binary operator, checking budgeted non-saturating
    /// arithmetic.
    fn apply_binop(&mut self, op: &str, a: Val, b: Val, line: usize) -> Val {
        let tracked = a.tracked || b.tracked;
        let iv = match op {
            "+" => a.iv.add(b.iv),
            "-" => a.iv.sub(b.iv),
            "*" => a.iv.mul(b.iv),
            "<<" => a.iv.shl(b.iv),
            ">>" => a.iv.shr(b.iv),
            "/" => a.iv.div(b.iv),
            "%" => a.iv.rem(b.iv),
            _ => Interval::TOP,
        };
        let checked: Option<&'static str> = match op {
            "+" => Some("+"),
            "-" => Some("-"),
            "*" => Some("*"),
            "<<" => Some("<<"),
            _ => None,
        };
        if let Some(op_name) = checked {
            if tracked && self.collect {
                self.ops_seen.insert((line, op_name));
                if a.iv.is_top() || b.iv.is_top() {
                    self.findings.insert((
                        line,
                        format!(
                            "cannot bound non-saturating `{op_name}` over budgeted data: \
                             an operand has no derivable interval — annotate its source \
                             with `lint:budget(i32: ...)` or use a saturating op"
                        ),
                    ));
                } else if !iv.fits_i32() {
                    self.findings.insert((
                        line,
                        format!(
                            "non-saturating `{op_name}` on budgeted data can leave i32: \
                             result range {} exceeds [-2^31, 2^31); tighten the declared \
                             budget or use `saturating_{}`",
                            iv.render(),
                            match op_name {
                                "+" => "add",
                                "-" => "sub",
                                "*" => "mul",
                                _ => "shl",
                            }
                        ),
                    ));
                }
            }
        }
        Val { iv, tracked }
    }

    /// Negation with the same wrap check.
    fn apply_neg(&mut self, a: Val, line: usize) -> Val {
        let iv = a.iv.neg();
        if a.tracked && self.collect {
            self.ops_seen.insert((line, "neg"));
            if a.iv.is_top() {
                self.findings.insert((
                    line,
                    "cannot bound negation over budgeted data: the operand has no \
                     derivable interval"
                        .to_string(),
                ));
            } else if !iv.fits_i32() {
                self.findings.insert((
                    line,
                    format!(
                        "negation of budgeted data can leave i32: result range {}",
                        iv.render()
                    ),
                ));
            }
        }
        Val {
            iv,
            tracked: a.tracked,
        }
    }

    /// Evaluates one expression string.
    fn eval(&mut self, text: &str, env: &Env, line: usize) -> Val {
        if self.fuel > 64 {
            return Val::UNKNOWN;
        }
        self.fuel += 1;
        let val = self.eval_inner(text, env, line);
        self.fuel -= 1;
        val
    }

    fn eval_inner(&mut self, text: &str, env: &Env, line: usize) -> Val {
        let tokens = tokenize(text);
        let mut parser = ExprParser {
            tokens: &tokens,
            at: 0,
            env,
            line,
        };
        parser.parse_expr(self, 0)
    }
}

/// Joins `then` into `base` against the `entry` state: a variable ends
/// up as the hull of "block ran" and "block skipped".
fn join_env(base: &mut Env, entry: &Env, after: &Env) {
    let names: BTreeSet<&String> = entry.keys().chain(after.keys()).collect();
    for name in names {
        let a = entry.get(name).copied().unwrap_or(Val::UNKNOWN);
        let b = after.get(name).copied().unwrap_or(Val::UNKNOWN);
        base.insert(
            name.clone(),
            Val {
                iv: a.iv.join(b.iv),
                tracked: a.tracked || b.tracked,
            },
        );
    }
}

/// Strips a leading word-bounded keyword; `None` when absent.
fn strip_leading_word<'t>(text: &'t str, word: &str) -> Option<&'t str> {
    let t = text.trim_start();
    let rest = t.strip_prefix(word)?;
    if rest.chars().next().is_some_and(is_ident_char) {
        return None;
    }
    Some(rest)
}

/// Position of a top-level plain `=` (not `==`, `=>`, `<=`, `>=`, `!=`,
/// or a compound assignment).
fn top_level_assign(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    for at in 0..bytes.len() {
        match bytes[at] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 => {
                let prev = at.checked_sub(1).map(|p| bytes[p]);
                let next = bytes.get(at + 1);
                let compound = matches!(
                    prev,
                    Some(
                        b'=' | b'!'
                            | b'<'
                            | b'>'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
                );
                if !compound && next != Some(&b'=') && next != Some(&b'>') {
                    return Some(at);
                }
            }
            _ => {}
        }
    }
    None
}

/// Position of a top-level occurrence of a multi-char operator.
fn find_top_level(text: &str, op: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let ob = op.as_bytes();
    let mut depth = 0i32;
    let mut at = 0usize;
    while at < bytes.len() {
        match bytes[at] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ => {}
        }
        if depth == 0 && bytes[at..].starts_with(ob) {
            // `<<=` must not be found as `<=`/`=`-family confusions:
            // require the char before to not extend the operator.
            let prev = at.checked_sub(1).map(|p| bytes[p]);
            let extends = matches!(prev, Some(b'<' | b'>' | b'=' | b'!'))
                && (ob[0] == b'<' || ob[0] == b'>' || ob[0] == b'=');
            if !extends {
                return Some(at);
            }
        }
        at += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Expression tokens and parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Int(i128),
    Ident(String),
    Op(&'static str),
    Open(char),
    Close(char),
    Comma,
    Semi,
    Dot,
    PathSep,
    Other,
}

/// Operators, longest first so `<=`/`<<` win over bare `<`.
const OPS: [&str; 23] = [
    "<<=", ">>=", "..=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "->", "=>", "..", "+",
    "-", "*", "/", "%", "&", "|", "<", ">",
];

fn tokenize(text: &str) -> Vec<Tok> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'b' | 'o')) {
                i += 2;
            }
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let lit: String = chars[start..i].iter().collect();
            toks.push(match parse_int_literal(&lit) {
                Some(v) => Tok::Int(v),
                None => Tok::Other,
            });
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect()));
            continue;
        }
        if c == ':' && chars.get(i + 1) == Some(&':') {
            toks.push(Tok::PathSep);
            i += 2;
            continue;
        }
        let rest: String = chars[i..].iter().collect();
        if let Some(op) = OPS.iter().find(|op| rest.starts_with(**op)) {
            toks.push(Tok::Op(op));
            i += op.len();
            continue;
        }
        toks.push(match c {
            '(' | '[' | '{' => Tok::Open(c),
            ')' | ']' | '}' => Tok::Close(c),
            ',' => Tok::Comma,
            ';' => Tok::Semi,
            '.' => Tok::Dot,
            _ => Tok::Other,
        });
        i += 1;
    }
    toks
}

/// Parses a Rust integer literal (dec/hex/bin/oct, `_` separators, type
/// suffix).
fn parse_int_literal(lit: &str) -> Option<i128> {
    let clean: String = lit.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(rest) = clean.strip_prefix("0x").or(clean.strip_prefix("0X"))
    {
        (rest, 16)
    } else if let Some(rest) = clean.strip_prefix("0b") {
        (rest, 2)
    } else if let Some(rest) = clean.strip_prefix("0o") {
        (rest, 8)
    } else {
        (clean.as_str(), 10)
    };
    // Strip a type suffix (`123i64`, `0xFFu32`).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let suffix = &digits[end..];
    const SUFFIXES: [&str; 13] = [
        "", "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
    ];
    if !SUFFIXES.contains(&suffix) {
        return None;
    }
    i128::from_str_radix(&digits[..end], radix).ok()
}

/// Integer-type range constants the evaluator knows (`i32::MAX`, ...).
fn type_const(ty: &str, name: &str) -> Option<i128> {
    let (lo, hi): (i128, i128) = match ty {
        "i8" => (i128::from(i8::MIN), i128::from(i8::MAX)),
        "i16" => (i128::from(i16::MIN), i128::from(i16::MAX)),
        "i32" => (i128::from(i32::MIN), i128::from(i32::MAX)),
        "i64" => (i128::from(i64::MIN), i128::from(i64::MAX)),
        "u8" => (0, i128::from(u8::MAX)),
        "u16" => (0, i128::from(u16::MAX)),
        "u32" => (0, i128::from(u32::MAX)),
        "u64" => (0, i128::from(u64::MAX)),
        _ => return None,
    };
    match name {
        "MIN" => Some(lo),
        "MAX" => Some(hi),
        _ => None,
    }
}

struct ExprParser<'t, 'e> {
    tokens: &'t [Tok],
    at: usize,
    env: &'e Env,
    line: usize,
}

impl ExprParser<'_, '_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.at)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.tokens.get(self.at);
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    /// Precedence-climbing expression parser. Levels (loosest first):
    /// ranges/logic/comparison (result unknown), bitops, shifts,
    /// additive, multiplicative, `as` casts, unary, postfix, primary.
    fn parse_expr(&mut self, interp: &mut Interp<'_>, min_level: u8) -> Val {
        let mut lhs = self.parse_unary(interp);
        while let Some(Tok::Op(op)) = self.peek() {
            let op = *op;
            let level = match op {
                "*" | "/" | "%" => 6,
                "+" | "-" => 5,
                "<<" | ">>" => 4,
                "&" => 3,
                "|" => 3,
                // `->`/`=>` and turbofish are tokenized before bare
                // `<`/`>` reach operator position, so these are
                // comparisons — a bool result carries no budget taint.
                "==" | "!=" | "<=" | ">=" | "<" | ">" => 2,
                ".." | "..=" => 1,
                "&&" | "||" => 1,
                _ => return lhs, // `->`, `=>`, compound assigns: stop.
            };
            if level < min_level {
                break;
            }
            self.at += 1;
            let rhs = self.parse_expr(interp, level + 1);
            lhs = match level {
                4..=6 => interp.apply_binop(op, lhs, rhs, self.line),
                3 => Val {
                    iv: Interval::TOP,
                    tracked: lhs.tracked || rhs.tracked,
                },
                _ => Val::UNKNOWN,
            };
        }
        lhs
    }

    fn parse_unary(&mut self, interp: &mut Interp<'_>) -> Val {
        match self.peek() {
            Some(Tok::Op("-")) => {
                self.at += 1;
                let v = self.parse_unary(interp);
                interp.apply_neg(v, self.line)
            }
            Some(Tok::Op("&")) => {
                self.at += 1;
                // `&mut x` / `&x`: a reference to the same value.
                if matches!(self.peek(), Some(Tok::Ident(m)) if m == "mut") {
                    self.at += 1;
                }
                self.parse_unary(interp)
            }
            Some(Tok::Op("*")) => {
                self.at += 1;
                self.parse_unary(interp)
            }
            Some(Tok::Other) => {
                self.at += 1;
                self.parse_unary(interp)
            }
            _ => self.parse_postfix(interp),
        }
    }

    fn parse_postfix(&mut self, interp: &mut Interp<'_>) -> Val {
        let mut val = self.parse_primary(interp);
        loop {
            match self.peek() {
                Some(Tok::Dot) => {
                    self.at += 1;
                    let Some(Tok::Ident(name)) = self.bump().cloned() else {
                        return val;
                    };
                    // Turbofish after a method name.
                    self.skip_generics();
                    if matches!(self.peek(), Some(Tok::Open('('))) {
                        let args = self.parse_args(interp);
                        val = method_value(interp, &name, val, &args, self.line);
                    } else {
                        // Field access: invisible to the environment.
                        val = Val {
                            iv: Interval::TOP,
                            tracked: false,
                        };
                    }
                }
                Some(Tok::Open('[')) => {
                    // Indexing: element values are not tracked.
                    self.skip_group('[', ']', interp);
                    val = Val::UNKNOWN;
                }
                Some(Tok::Ident(kw)) if kw == "as" => {
                    self.at += 1;
                    let target = match self.bump() {
                        Some(Tok::Ident(ty)) => ty.clone(),
                        _ => String::new(),
                    };
                    val = cast_value(val, &target);
                }
                _ => return val,
            }
        }
    }

    fn parse_primary(&mut self, interp: &mut Interp<'_>) -> Val {
        match self.bump().cloned() {
            Some(Tok::Int(v)) => Val::exact(v),
            Some(Tok::Open('(')) => {
                let vals = self.parse_group_elems(')', interp);
                if vals.len() == 1 {
                    vals[0]
                } else {
                    Val::UNKNOWN
                }
            }
            Some(Tok::Open('[')) => {
                // Array literal (or `[init; len]`): elements evaluated
                // for checking, aggregate value untracked.
                let _ = self.parse_group_elems(']', interp);
                Val::UNKNOWN
            }
            Some(Tok::Open('{')) => {
                let _ = self.parse_group_elems('}', interp);
                Val::UNKNOWN
            }
            Some(Tok::Ident(name)) => self.parse_path_or_call(&name, interp),
            _ => Val::UNKNOWN,
        }
    }

    /// Parses `name`, `a::b::c`, or a call of either; returns its value.
    fn parse_path_or_call(&mut self, first: &str, interp: &mut Interp<'_>) -> Val {
        let mut segments = vec![first.to_string()];
        while matches!(self.peek(), Some(Tok::PathSep)) {
            self.at += 1;
            self.skip_generics();
            match self.bump().cloned() {
                Some(Tok::Ident(seg)) => segments.push(seg),
                _ => break,
            }
        }
        if matches!(self.peek(), Some(Tok::Open('('))) {
            let args = self.parse_args(interp);
            return call_value(&segments, &args);
        }
        if segments.len() >= 2 {
            let ty = &segments[segments.len() - 2];
            let name = &segments[segments.len() - 1];
            if let Some(v) = type_const(ty, name) {
                return Val::exact(v);
            }
            return Val::UNKNOWN;
        }
        match self.env.get(first) {
            Some(&v) => v,
            None => Val::UNKNOWN,
        }
    }

    /// Parses a parenthesized argument list; returns each argument's
    /// value (evaluated, so nested ops are checked).
    fn parse_args(&mut self, interp: &mut Interp<'_>) -> Vec<Val> {
        // Consume the '('.
        self.at += 1;
        let mut args = Vec::new();
        loop {
            match self.peek() {
                None => return args,
                Some(Tok::Close(')')) => {
                    self.at += 1;
                    return args;
                }
                Some(Tok::Comma) => {
                    self.at += 1;
                }
                _ => {
                    let before = self.at;
                    args.push(self.parse_expr(interp, 0));
                    if self.at == before {
                        self.at += 1; // Always make progress.
                    }
                }
            }
        }
    }

    /// Elements of a bracketed group after its opener was consumed.
    fn parse_group_elems(&mut self, close: char, interp: &mut Interp<'_>) -> Vec<Val> {
        let mut vals = Vec::new();
        loop {
            match self.peek() {
                None => return vals,
                Some(Tok::Close(c)) if *c == close => {
                    self.at += 1;
                    return vals;
                }
                Some(Tok::Comma | Tok::Semi) => {
                    self.at += 1;
                }
                _ => {
                    let before = self.at;
                    vals.push(self.parse_expr(interp, 0));
                    if self.at == before {
                        self.at += 1;
                    }
                }
            }
        }
    }

    /// Skips a balanced group without collecting values.
    fn skip_group(&mut self, open: char, close: char, interp: &mut Interp<'_>) {
        if !matches!(self.peek(), Some(Tok::Open(c)) if *c == open) {
            return;
        }
        self.at += 1;
        loop {
            match self.peek() {
                None => return,
                Some(Tok::Close(c)) if *c == close => {
                    self.at += 1;
                    return;
                }
                Some(Tok::Comma | Tok::Semi) => {
                    self.at += 1;
                }
                _ => {
                    let before = self.at;
                    let _ = self.parse_expr(interp, 0);
                    if self.at == before {
                        self.at += 1;
                    }
                }
            }
        }
    }

    /// Skips turbofish/generic argument tokens after `::`.
    fn skip_generics(&mut self) {
        if !matches!(self.peek(), Some(Tok::Op("<"))) {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                Tok::Op("<") | Tok::Op("<<") => {
                    depth += if matches!(t, Tok::Op("<<")) { 2 } else { 1 }
                }
                Tok::Op(">") | Tok::Op(">>") => {
                    depth -= if matches!(t, Tok::Op(">>")) { 2 } else { 1 };
                    if depth <= 0 {
                        self.at += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.at += 1;
        }
    }
}

/// Value of a method call on `recv`.
fn method_value(interp: &mut Interp<'_>, name: &str, recv: Val, args: &[Val], line: usize) -> Val {
    let arg0 = args.first().copied().unwrap_or(Val::UNKNOWN);
    match name {
        // Saturating arithmetic can never wrap: the result stays inside
        // the mathematical interval (clamping only moves values inward).
        "saturating_add" => Val {
            iv: recv.iv.add(arg0.iv),
            tracked: recv.tracked || arg0.tracked,
        },
        "saturating_sub" => Val {
            iv: recv.iv.sub(arg0.iv),
            tracked: recv.tracked || arg0.tracked,
        },
        "saturating_mul" => Val {
            iv: recv.iv.mul(arg0.iv),
            tracked: recv.tracked || arg0.tracked,
        },
        "saturating_neg" | "saturating_abs" => Val {
            iv: recv.iv.abs_i().join(recv.iv.neg()),
            tracked: recv.tracked,
        },
        // Wrapping/unchecked arithmetic on budgeted data destroys the
        // bound; keep the taint so downstream use is reported.
        "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "wrapping_neg" | "wrapping_shl" => Val {
            iv: Interval::TOP,
            tracked: recv.tracked || arg0.tracked,
        },
        "min" => Val {
            iv: recv.iv.min_i(arg0.iv),
            tracked: recv.tracked || arg0.tracked,
        },
        "max" => Val {
            iv: recv.iv.max_i(arg0.iv),
            tracked: recv.tracked || arg0.tracked,
        },
        "clamp" => {
            let arg1 = args.get(1).copied().unwrap_or(Val::UNKNOWN);
            Val {
                iv: recv.iv.clamp_i(arg0.iv, arg1.iv),
                tracked: recv.tracked,
            }
        }
        "abs" => interp.apply_neg_free(recv, line),
        "unsigned_abs" => Val {
            iv: recv.iv.abs_i(),
            tracked: recv.tracked,
        },
        _ => Val::UNKNOWN,
    }
}

impl Interp<'_> {
    /// `.abs()` is `-x` on the negative side: same wrap check at
    /// `i32::MIN`, then the non-negative hull.
    fn apply_neg_free(&mut self, a: Val, line: usize) -> Val {
        let checked = self.apply_neg(a, line);
        Val {
            iv: a.iv.abs_i(),
            tracked: checked.tracked,
        }
    }
}

/// Value of a free/path function call.
fn call_value(segments: &[String], args: &[Val]) -> Val {
    let last = segments.last().map(String::as_str).unwrap_or("");
    let arg0 = args.first().copied().unwrap_or(Val::UNKNOWN);
    match last {
        // Lossless widening conversions preserve the value.
        "from" if segments.len() >= 2 => {
            let ty = segments[segments.len() - 2].as_str();
            if matches!(
                ty,
                "i16" | "i32" | "i64" | "i128" | "u16" | "u32" | "u64" | "u128"
            ) {
                arg0
            } else {
                Val::UNKNOWN
            }
        }
        "min" => Val {
            iv: arg0.iv.min_i(args.get(1).map_or(Interval::TOP, |v| v.iv)),
            tracked: args.iter().any(|a| a.tracked),
        },
        "max" => Val {
            iv: arg0.iv.max_i(args.get(1).map_or(Interval::TOP, |v| v.iv)),
            tracked: args.iter().any(|a| a.tracked),
        },
        _ => Val::UNKNOWN,
    }
}

/// Value after an `as` cast: preserved when it provably fits the
/// target, else the target's full range (the cast may wrap, which is
/// L004's concern, not a bound the analysis may keep).
fn cast_value(val: Val, target: &str) -> Val {
    let range = match target {
        "i8" => Interval::new(i128::from(i8::MIN), i128::from(i8::MAX)),
        "i16" => Interval::new(i128::from(i16::MIN), i128::from(i16::MAX)),
        "i32" => Interval::new(i128::from(i32::MIN), i128::from(i32::MAX)),
        "i64" => Interval::new(i128::from(i64::MIN), i128::from(i64::MAX)),
        "u8" => Interval::new(0, i128::from(u8::MAX)),
        "u16" => Interval::new(0, i128::from(u16::MAX)),
        "u32" => Interval::new(0, i128::from(u32::MAX)),
        "u64" | "usize" => Interval::new(0, i128::from(u64::MAX)),
        _ => return Val::UNKNOWN,
    };
    if range.lo <= val.iv.lo && val.iv.hi <= range.hi {
        val
    } else {
        Val {
            iv: range,
            tracked: val.tracked,
        }
    }
}

// ---------------------------------------------------------------------
// Unit-of-measure inference (L013 support)
// ---------------------------------------------------------------------

/// Recognized unit suffixes (lowercase identifiers).
const UNIT_SUFFIXES: [(&str, &str); 6] = [
    ("_us", "us"),
    ("_s", "s"),
    ("_symbols", "symbols"),
    ("_slots", "slots"),
    ("_db", "db"),
    ("_linear", "linear"),
];

/// Infers the unit of one identifier from its suffix, or from
/// `SYMBOL_DURATION`-style const naming. `None` when the name carries
/// no recognized unit.
pub fn unit_of(ident: &str) -> Option<&'static str> {
    if ident
        .chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && ident.chars().any(|c| c.is_ascii_uppercase())
    {
        // Const naming: durations and times are seconds.
        if ident.contains("DURATION") || ident.ends_with("_TIME") || ident.ends_with("_S") {
            return Some("s");
        }
        if ident.ends_with("_US") {
            return Some("us");
        }
        if ident.ends_with("_DB") {
            return Some("db");
        }
        return None;
    }
    for (suffix, unit) in UNIT_SUFFIXES {
        if ident.len() > suffix.len() && ident.ends_with(suffix) {
            // `_symbols` must win over `_s`: longest-suffix order above.
            return Some(unit);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Section;
    use crate::rules::classify;

    fn record(src: &str) -> FileRecord {
        FileRecord::parse(
            "crates/phy/src/fix.rs",
            "carpool-phy",
            Section::Src,
            classify("carpool-phy"),
            src,
        )
    }

    fn only_fn(file: &FileRecord) -> &FnItem {
        &file.items.fns[0]
    }

    #[test]
    fn alloc_sites_distinguish_loops() {
        let src = "\
fn f(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(0);
    for k in 0..n {
        out.push(1);
        let label = format!(\"{k}\");
        drop(label);
    }
    out
}
";
        let file = record(src);
        let sites = alloc_sites(&file, only_fn(&file));
        let whats: Vec<(&str, bool)> = sites.iter().map(|s| (s.what, s.in_loop)).collect();
        assert!(whats.contains(&("Vec::new", false)));
        // `.push` outside a loop is amortized and not reported.
        assert!(!whats.contains(&("push", false)));
        assert!(whats.contains(&("push", true)));
        assert!(whats.contains(&("format!", true)));
    }

    #[test]
    fn presized_pushes_are_amortized() {
        let src = "\
fn f(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        out.push(k as u8);
    }
    out
}
";
        let file = record(src);
        let sites = alloc_sites(&file, only_fn(&file));
        // The one-time with_capacity stays visible; the pre-sized
        // pushes do not reallocate and are exempt.
        let whats: Vec<&str> = sites.iter().map(|s| s.what).collect();
        assert_eq!(whats, ["Vec::with_capacity"]);
    }

    #[test]
    fn setup_fn_names() {
        assert!(is_setup_fn("new"));
        assert!(is_setup_fn("new_rician"));
        assert!(is_setup_fn("with_obs"));
        assert!(is_setup_fn("build"));
        assert!(is_setup_fn("from_bits"));
        assert!(is_setup_fn("default"));
        assert!(!is_setup_fn("transmit"));
        assert!(!is_setup_fn("renew_lease"));
        assert!(!is_setup_fn("newton_step"));
    }

    #[test]
    fn effect_counts_cover_f64_and_conversions() {
        let src = "\
fn f(x: f64, n: u8) -> f64 {
    let wide = i32::from(n);
    // lint:allow(as-cast): fixture
    let narrow = wide as u8;
    let _ = narrow;
    x * 2.5 + 1.0
}
";
        let file = record(src);
        let counts = classify_effects(&file, only_fn(&file));
        assert_eq!(counts.widening, 1);
        assert_eq!(counts.narrowing, 1);
        assert!(counts.f64_arith >= 1);
    }

    #[test]
    fn budget_annotation_grammar() {
        let src = "\
// lint:budget(i32: la, lb in ±2^20)
// lint:budget(i32: ±1000)
fn f(la: i32, lb: i32) {}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].names, ["la", "lb"]);
        assert_eq!(specs[0].bound, 1 << 20);
        assert!(specs[1].names.is_empty());
        assert_eq!(specs[1].bound, 1000);
    }

    #[test]
    fn budget_proves_the_viterbi_cost_shape() {
        let src = "\
// lint:budget(i32: la, lb in ±2^20)
fn acs(lattice: &[(i32, i32)]) -> i32 {
    let mut best = 0i32;
    for &(la, lb) in lattice.iter() {
        let costs = [la + lb, la - lb, lb - la, -la - lb];
        best = best.saturating_add(costs[0]);
    }
    best
}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        let report = check_budget_fn(&file, only_fn(&file), &specs);
        assert!(
            report.findings.is_empty(),
            "±2^20 inputs prove the budget: {:?}",
            report.findings
        );
        assert!(report.ops_checked >= 3, "ops: {}", report.ops_checked);
    }

    #[test]
    fn comparison_results_drop_budget_taint() {
        // The real ACS butterfly: metrics flow through comparisons into
        // bool survivor bits, which are packed with `<<`. A bool cannot
        // wrap, so the shift over `u64::from(t)` must not be flagged.
        let src = "\
// lint:budget(i32: d in ±2^21)
fn acs_step(costs: &[i32; 4], cur: &[i32; 64], nxt: &mut [i32; 64]) -> u64 {
    let mut word = 0u64;
    for j in 0..32 {
        let m0 = cur[j];
        let m1 = cur[j + 32];
        let d = costs[PAIR_CODE[j]];
        let a0 = m0.saturating_add(d);
        let b0 = m1.saturating_sub(d);
        let t0 = b0 < a0;
        nxt[2 * j] = if t0 { b0 } else { a0 };
        let a1 = m0.saturating_sub(d);
        let b1 = m1.saturating_add(d);
        let t1 = b1 < a1;
        nxt[2 * j + 1] = if t1 { b1 } else { a1 };
        word |= (u64::from(t0) | (u64::from(t1) << 1)) << (2 * j);
    }
    word
}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        assert_eq!(specs.len(), 1);
        let report = check_budget_fn(&file, only_fn(&file), &specs);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn broken_budget_bound_is_caught() {
        let src = "\
// lint:budget(i32: la, lb in ±2^30)
fn acs(lattice: &[(i32, i32)]) -> i32 {
    let mut best = 0i32;
    for &(la, lb) in lattice.iter() {
        let sum = la + lb;
        best = best.saturating_add(sum);
    }
    best
}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        let report = check_budget_fn(&file, only_fn(&file), &specs);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("can leave i32"));
        assert_eq!(report.findings[0].line, 5);
    }

    #[test]
    fn unbounded_operand_is_unprovable() {
        let src = "\
// lint:budget(i32: q in ±2^20)
fn f(q: i32, raw: i32) -> i32 {
    q + raw
}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        let report = check_budget_fn(&file, only_fn(&file), &specs);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("cannot bound"));
    }

    #[test]
    fn saturating_and_untracked_ops_are_silent() {
        let src = "\
// lint:budget(i32: q in ±2^20)
fn f(q: i32, ticks: usize) -> i32 {
    let t2 = ticks + 1;
    let _ = t2 * 2;
    q.saturating_add(q).saturating_mul(2)
}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        let report = check_budget_fn(&file, only_fn(&file), &specs);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn loop_accumulation_widens_to_a_finding() {
        let src = "\
// lint:budget(i32: step in ±100)
fn f(steps: &[i32]) -> i32 {
    let mut acc = 0;
    for &step in steps {
        acc = acc + step;
    }
    acc
}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        let report = check_budget_fn(&file, only_fn(&file), &specs);
        // `acc` grows without bound across iterations; widening makes
        // the accumulation unprovable rather than looping forever.
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn clamped_values_are_bounded() {
        let src = "\
// lint:budget(i32: raw in ±2^30)
fn f(raw: i32) -> i32 {
    let q = raw.clamp(-1024, 1024);
    q * 1024
}
";
        let file = record(src);
        let specs = budget_specs(&file, only_fn(&file));
        let report = check_budget_fn(&file, only_fn(&file), &specs);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn param_names_align_with_call_positions() {
        let src = "\
impl S {
    fn go(&mut self, airtime_s: f64, n_symbols: usize) {}
}
fn free(delay_us: f64, (a, b): (u8, u8)) {}
";
        let file = record(src);
        let go = file.items.fns.iter().find(|f| f.name == "go");
        let free = file.items.fns.iter().find(|f| f.name == "free");
        let go = go.map(|f| param_names(&file, f)).unwrap_or_default();
        assert_eq!(
            go,
            [vec!["airtime_s".to_string()], vec!["n_symbols".to_string()]]
        );
        let free = free.map(|f| param_names(&file, f)).unwrap_or_default();
        assert_eq!(free.len(), 2);
        assert_eq!(free[1], ["a", "b"]);
    }

    #[test]
    fn unit_inference_suffixes_and_consts() {
        assert_eq!(unit_of("airtime_s"), Some("s"));
        assert_eq!(unit_of("delay_us"), Some("us"));
        assert_eq!(unit_of("n_symbols"), Some("symbols"));
        assert_eq!(unit_of("backoff_slots"), Some("slots"));
        assert_eq!(unit_of("snr_db"), Some("db"));
        assert_eq!(unit_of("snr_linear"), Some("linear"));
        assert_eq!(unit_of("SYMBOL_DURATION"), Some("s"));
        assert_eq!(unit_of("SLOT_TIME"), Some("s"));
        assert_eq!(unit_of("count"), None);
        assert_eq!(unit_of("_s"), None, "a bare suffix is not a unit");
        assert_eq!(unit_of("NUM_STATES"), None);
    }
}
