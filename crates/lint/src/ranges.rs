//! Interval abstract domain for the flow-aware analysis (L012).
//!
//! Values are over-approximated by closed integer intervals `[lo, hi]`
//! with `i128` bounds, wide enough that any i64 arithmetic the analyzed
//! code can express stays exactly representable. All operations are
//! *sound over-approximations*: for every concrete pair of operands
//! inside the input intervals, the concrete (mathematical, pre-wrap)
//! result lies inside the output interval. The rule layer then asks a
//! single question — does the mathematical result still fit the machine
//! type (`i32`)? — which is exactly the "can this non-saturating op
//! wrap" test.
//!
//! The lattice is the usual one: `join` is the interval hull, `widen`
//! jumps a growing bound straight to the corresponding infinity
//! (`i128::MIN`/`MAX`) so every ascending chain stabilizes after at
//! most one widening per side. The property tests in
//! `tests/interval_properties.rs` pin soundness and termination.

/// A closed integer interval `[lo, hi]`, `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i128,
    /// Upper bound (inclusive).
    pub hi: i128,
}

// Not the std `Add`/`Mul`/... traits: these are saturating abstract
// transfer functions, and named methods keep the abstract-vs-concrete
// distinction visible at call sites.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The top element: every representable integer.
    pub const TOP: Interval = Interval {
        lo: i128::MIN,
        hi: i128::MAX,
    };

    /// The interval containing exactly `v`.
    pub fn exact(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, swapping the bounds if they arrive inverted.
    pub fn new(lo: i128, hi: i128) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The symmetric interval `[-n, n]` (budget annotations).
    pub fn symmetric(n: i128) -> Interval {
        let n = n.saturating_abs();
        Interval {
            lo: n.saturating_neg(),
            hi: n,
        }
    }

    /// Whether this is the top element (either bound at infinity counts
    /// as unbounded for the wrap check).
    pub fn is_top(self) -> bool {
        self.lo == i128::MIN || self.hi == i128::MAX
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether every value fits in `i32` — the budget question.
    pub fn fits_i32(self) -> bool {
        self.lo >= i128::from(i32::MIN) && self.hi <= i128::from(i32::MAX)
    }

    /// Least upper bound: the interval hull of both operands.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening: a bound that grew from `self` to
    /// `other` jumps to infinity, so fixpoint iteration terminates.
    pub fn widen(self, other: Interval) -> Interval {
        Interval {
            lo: if other.lo < self.lo {
                i128::MIN
            } else {
                self.lo
            },
            hi: if other.hi > self.hi {
                i128::MAX
            } else {
                self.hi
            },
        }
    }

    /// `[a, b] + [c, d] = [a + c, b + d]`, saturating at the domain
    /// bounds (which already denote "unbounded").
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// `[a, b] - [c, d] = [a - d, b - c]`.
    pub fn sub(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
        }
    }

    /// Negation `[-b, -a]`.
    pub fn neg(self) -> Interval {
        Interval::new(self.hi.saturating_neg(), self.lo.saturating_neg())
    }

    /// Multiplication: hull of the four corner products.
    pub fn mul(self, other: Interval) -> Interval {
        let corners = [
            self.lo.saturating_mul(other.lo),
            self.lo.saturating_mul(other.hi),
            self.hi.saturating_mul(other.lo),
            self.hi.saturating_mul(other.hi),
        ];
        let mut lo = corners[0];
        let mut hi = corners[0];
        for &c in &corners[1..] {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }
    }

    /// Left shift by an exact amount: multiplication by `2^k`. A
    /// non-exact or out-of-range shift amount yields top.
    pub fn shl(self, amount: Interval) -> Interval {
        if amount.lo != amount.hi || !(0..=126).contains(&amount.lo) {
            return Interval::TOP;
        }
        // 0 <= amount.lo <= 126, so the u32 conversion cannot fail and
        // the power itself cannot overflow i128.
        let Ok(k) = u32::try_from(amount.lo) else {
            return Interval::TOP;
        };
        self.mul(Interval::exact(1i128 << k))
    }

    /// Arithmetic right shift by an exact amount; top otherwise.
    pub fn shr(self, amount: Interval) -> Interval {
        if amount.lo != amount.hi || !(0..=126).contains(&amount.lo) {
            return Interval::TOP;
        }
        let Ok(k) = u32::try_from(amount.lo) else {
            return Interval::TOP;
        };
        Interval::new(self.lo >> k, self.hi >> k)
    }

    /// Division: hull of corner quotients when the divisor interval
    /// excludes zero; top otherwise (a potential div-by-zero is not
    /// this domain's concern, but its result is unbounded knowledge).
    pub fn div(self, other: Interval) -> Interval {
        if other.contains(0) {
            return Interval::TOP;
        }
        let corners = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        let mut lo = corners[0];
        let mut hi = corners[0];
        for &c in &corners[1..] {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }
    }

    /// Remainder: `|a % b| < max(|b|)`, tightened to non-negative when
    /// the dividend is; top when the divisor is unbounded.
    pub fn rem(self, other: Interval) -> Interval {
        if other.is_top() {
            return Interval::TOP;
        }
        let m = other.lo.saturating_abs().max(other.hi.saturating_abs());
        if m == 0 {
            return Interval::TOP;
        }
        let bound = m - 1;
        if self.lo >= 0 {
            Interval::new(0, bound)
        } else {
            Interval::new(-bound, bound)
        }
    }

    /// Pointwise minimum (`a.min(b)`).
    pub fn min_i(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Pointwise maximum (`a.max(b)`).
    pub fn max_i(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `x.clamp(lo, hi)` as `min(max(x, lo), hi)`.
    pub fn clamp_i(self, lo: Interval, hi: Interval) -> Interval {
        self.max_i(lo).min_i(hi)
    }

    /// Absolute value.
    pub fn abs_i(self) -> Interval {
        let a = self.lo.saturating_abs();
        let b = self.hi.saturating_abs();
        if self.contains(0) {
            Interval::new(0, a.max(b))
        } else {
            Interval::new(a.min(b), a.max(b))
        }
    }

    /// Renders as `[lo, hi]` with infinities spelled out.
    pub fn render(self) -> String {
        let bound = |v: i128, inf: &str| {
            if v == i128::MIN || v == i128::MAX {
                inf.to_string()
            } else {
                v.to_string()
            }
        };
        format!("[{}, {}]", bound(self.lo, "-inf"), bound(self.hi, "+inf"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_hull_and_widen_terminates() {
        let a = Interval::new(-4, 10);
        let b = Interval::new(2, 20);
        let j = a.join(b);
        assert_eq!(j, Interval::new(-4, 20));
        // Widening a growing upper bound jumps to +inf in one step.
        let w = a.widen(j);
        assert_eq!(w.lo, -4);
        assert_eq!(w.hi, i128::MAX);
        // A second widening is a fixpoint.
        assert_eq!(w.widen(w.join(Interval::new(-100, 100))).lo, i128::MIN);
        assert_eq!(Interval::TOP.widen(Interval::TOP), Interval::TOP);
    }

    #[test]
    fn arithmetic_matches_the_viterbi_budget() {
        // The PR 4 scaling argument: |la|, |lb| <= 2^20, so every entry
        // of [la+lb, la-lb, lb-la, -la-lb] fits in +-2^21 < i32::MAX.
        let l = Interval::symmetric(1 << 20);
        for cost in [l.add(l), l.sub(l), l.neg().sub(l)] {
            assert_eq!(cost, Interval::symmetric(1 << 21));
            assert!(cost.fits_i32());
        }
        // With a broken bound of +-2^30 the same sum no longer fits.
        let broken = Interval::symmetric(1 << 30);
        assert!(!broken.add(broken).fits_i32());
    }

    #[test]
    fn shifts_and_division() {
        let x = Interval::new(-8, 8);
        assert_eq!(x.shl(Interval::exact(4)), Interval::new(-128, 128));
        assert_eq!(x.shl(Interval::new(0, 3)), Interval::TOP);
        assert_eq!(x.shr(Interval::exact(2)), Interval::new(-2, 2));
        assert_eq!(x.div(Interval::exact(2)), Interval::new(-4, 4));
        assert_eq!(x.div(Interval::new(-1, 1)), Interval::TOP);
        assert_eq!(Interval::new(0, 100).rem(Interval::exact(32)), {
            Interval::new(0, 31)
        });
    }

    #[test]
    fn clamp_min_max_abs() {
        let x = Interval::new(-100, 100);
        let c = x.clamp_i(Interval::exact(-10), Interval::exact(10));
        assert_eq!(c, Interval::new(-10, 10));
        assert_eq!(x.abs_i(), Interval::new(0, 100));
        assert_eq!(Interval::new(-7, -3).abs_i(), Interval::new(3, 7));
        assert_eq!(
            x.min_i(Interval::exact(5)),
            Interval::new(-100, 5),
            "pointwise min"
        );
    }

    #[test]
    fn render_spells_out_infinities() {
        assert_eq!(Interval::new(-3, 9).render(), "[-3, 9]");
        assert_eq!(Interval::TOP.render(), "[-inf, +inf]");
    }
}
