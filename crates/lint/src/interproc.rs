//! Interprocedural rules (L007, L008, L010) over the workspace call
//! graph and parsed items. L009 is a line rule and lives in
//! [`crate::rules`].

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::items::{FileRecord, Section};
use crate::rules::{contains_token, line_waived, panic_hits, Diagnostic, Rule};

/// The hot-path roots L007 guards: the bench PHY trial loop, the MAC
/// Monte-Carlo driver (both its free-fn spelling and the historical
/// `Simulator::` one), the link-delivery facade, and the integer
/// Viterbi / FFT kernels. Specs are `::`-separated suffixes matched
/// against fully qualified fn paths.
pub const HOT_ROOTS: [&str; 15] = [
    "carpool_bench::run_phy",
    "Simulator::run_replications",
    "sim::run_replications",
    "CarpoolLink::deliver_all",
    "convolutional::decode",
    "convolutional::decode_with",
    "convolutional::decode_soft",
    "convolutional::decode_soft_with",
    "convolutional::decode_soft_quantized",
    "convolutional::decode_soft_quantized_with",
    "fft::fft",
    "fft::ifft",
    "fft::fft_in_place",
    "fft::ifft_in_place",
    "fft::fft_real",
];

/// Call-graph statistics surfaced in reports.
#[derive(Debug, Clone, Default)]
pub struct HotPathStats {
    /// Root specs that matched at least one fn, in [`HOT_ROOTS`] order.
    pub roots_matched: Vec<String>,
    /// Number of root fn nodes.
    pub root_nodes: usize,
    /// Number of fns reachable from the roots (roots included).
    pub reachable_fns: usize,
    /// Slice/array indexing sites inside reachable fns. Always counted;
    /// only diagnosed under `--strict-indexing` (DSP kernels index
    /// pervasively with loop-bounded indices, so the count is a trend
    /// metric, not a gate).
    pub indexing_sites: usize,
}

/// L007 panic-reachability: panic tokens (and, in strict mode,
/// indexing) inside any fn transitively reachable from [`HOT_ROOTS`].
/// Honors both `hot-panic` waivers and plain `panic` waivers — an L001
/// waiver already documents why the site is infallible.
pub fn check_l007(
    files: &[FileRecord],
    graph: &CallGraph,
    strict_indexing: bool,
) -> (Vec<Diagnostic>, HotPathStats) {
    let mut stats = HotPathStats::default();
    let mut roots: Vec<usize> = Vec::new();
    for spec in HOT_ROOTS {
        let matched = graph.match_root(spec);
        if !matched.is_empty() {
            stats.roots_matched.push(spec.to_string());
        }
        roots.extend(matched);
    }
    roots.sort_unstable();
    roots.dedup();
    stats.root_nodes = roots.len();
    let parents = graph.reachable(&roots);
    stats.reachable_fns = parents.len();

    let mut diags = Vec::new();
    // (file, line, token) pairs already reported, so overlapping fn
    // spans (e.g. nested fns) do not double-report.
    let mut seen: BTreeSet<(usize, usize, &str)> = BTreeSet::new();
    for &node_idx in parents.keys() {
        let Some(node) = graph.nodes.get(node_idx) else {
            continue;
        };
        if node.in_test {
            continue;
        }
        let Some(file) = files.get(node.file) else {
            continue;
        };
        let Some(item) = file.items.fns.get(node.item) else {
            continue;
        };
        if item.body_start == 0 {
            continue; // bodiless trait signature
        }
        let chain = graph.chain(node_idx, &parents).join(" -> ");
        for number in item.decl_line..=item.body_end {
            let Some(idx) = number.checked_sub(1) else {
                continue;
            };
            let Some(line) = file.lines.get(idx) else {
                continue;
            };
            if line.in_test {
                continue;
            }
            for token in panic_hits(&line.code) {
                if !seen.insert((node.file, number, token)) {
                    continue;
                }
                if line_waived(&file.lines, idx, Rule::L007.waiver_key())
                    || line_waived(&file.lines, idx, Rule::L001.waiver_key())
                {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: Rule::L007,
                    file: file.path.clone(),
                    line: number,
                    message: format!(
                        "`{token}` is reachable from a hot-path root \
                         (call chain: {chain}); hot paths must be panic-free — \
                         refactor or waive with `// lint:allow(hot-panic): <why>`"
                    ),
                });
            }
            let hits = indexing_sites(&line.code);
            if hits > 0 {
                stats.indexing_sites += hits;
                if strict_indexing
                    && seen.insert((node.file, number, "[indexing]"))
                    && !line_waived(&file.lines, idx, Rule::L007.waiver_key())
                {
                    diags.push(Diagnostic {
                        rule: Rule::L007,
                        file: file.path.clone(),
                        line: number,
                        message: format!(
                            "slice indexing on a hot path can panic on out-of-bounds \
                             (call chain: {chain}); use `get`/iterators or waive with \
                             `// lint:allow(hot-panic): <why in bounds>` \
                             [--strict-indexing]"
                        ),
                    });
                }
            }
        }
    }
    (diags, stats)
}

/// Counts `expr[...]` indexing sites in one blanked code line: a `[`
/// directly after an identifier character, `)`, or `]`.
fn indexing_sites(code: &str) -> usize {
    let bytes = code.as_bytes();
    let mut count = 0usize;
    for at in 1..bytes.len() {
        if bytes[at] != b'[' {
            continue;
        }
        let prev = bytes[at - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            count += 1;
        }
    }
    count
}

/// L008 iteration-order nondeterminism: `HashMap`/`HashSet` in crates
/// whose outputs must be byte-identical across runs and thread counts.
/// The rule is presence-based (conservative): any non-test use is
/// flagged unless waived with `hash-iter`, because hash iteration
/// order is randomized per process and per key history.
pub fn check_l008(files: &[FileRecord]) -> Vec<Diagnostic> {
    const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
    let mut diags = Vec::new();
    for file in files {
        if !file.class.ordered_iteration || !matches!(file.section, Section::Src) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for ty in HASH_TYPES {
                if contains_token(&line.code, ty)
                    && !line_waived(&file.lines, idx, Rule::L008.waiver_key())
                {
                    diags.push(Diagnostic {
                        rule: Rule::L008,
                        file: file.path.clone(),
                        line: line.number,
                        message: format!(
                            "`{ty}` has nondeterministic iteration order; use \
                             BTreeMap/BTreeSet (or sort before iterating) so sim/bench \
                             outputs stay byte-identical, or waive with \
                             `// lint:allow(hash-iter): <why order never observed>`"
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// L010 dead public API: top-level `pub` items in library crates that
/// no other workspace crate, no test/bench/example, and no tool crate
/// ever names. Matching is by word-bounded identifier occurrence in
/// code *or* comments (doc examples count as usage), so the rule only
/// fires when a name appears nowhere else at all.
pub fn check_l010(files: &[FileRecord]) -> Vec<Diagnostic> {
    // Per-file identifier sets over code + comments.
    let words: Vec<BTreeSet<String>> = files
        .iter()
        .map(|f| {
            let mut set = BTreeSet::new();
            for line in &f.lines {
                collect_idents(&line.code, &mut set);
                collect_idents(&line.comment, &mut set);
            }
            set
        })
        .collect();

    let mut diags = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if !file.class.library || !matches!(file.section, Section::Src) {
            continue;
        }
        for item in &file.items.pub_items {
            // Any *other* file counts as a reference: another crate, a
            // test/bench/example, or a same-crate sibling (a crate-root
            // re-export or module caller still implies the item earns
            // its keep).
            let referenced = files.iter().enumerate().any(|(other_idx, _)| {
                other_idx != file_idx && words[other_idx].contains(&item.name)
            });
            if referenced {
                continue;
            }
            let idx = item.line.saturating_sub(1);
            if line_waived(&file.lines, idx, Rule::L010.waiver_key()) {
                continue;
            }
            diags.push(Diagnostic {
                rule: Rule::L010,
                file: file.path.clone(),
                line: item.line,
                message: format!(
                    "pub {} `{}` is never referenced by any other workspace file; \
                     remove it, demote to pub(crate), or waive with \
                     `// lint:allow(dead-api): <why external users need it>`",
                    item.kind, item.name
                ),
            });
        }
    }
    diags
}

/// Collects word-bounded ASCII identifiers into `set`.
fn collect_idents(text: &str, set: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut start: Option<usize> = None;
    for at in 0..=bytes.len() {
        let is_ident = at < bytes.len() && {
            let b = bytes[at];
            b.is_ascii_alphanumeric() || b == b'_'
        };
        match (start, is_ident) {
            (None, true) => start = Some(at),
            (Some(s), false) => {
                if let Ok(word) = std::str::from_utf8(&bytes[s..at]) {
                    if word.chars().next().is_some_and(|c| !c.is_ascii_digit()) {
                        set.insert(word.to_string());
                    }
                }
                start = None;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileRecord;
    use crate::rules::classify;

    fn record(path: &str, crate_name: &str, src: &str) -> FileRecord {
        FileRecord::parse(path, crate_name, Section::Src, classify(crate_name), src)
    }

    #[test]
    fn l007_flags_reachable_panics_with_chain() {
        let files = vec![record(
            "crates/bench/src/lib.rs",
            "carpool-bench",
            "pub fn run_phy() { step(); }\nfn step() { helper(); }\nfn helper() { x.unwrap(); }\n",
        )];
        let graph = CallGraph::build(&files);
        let (diags, stats) = check_l007(&files, &graph, false);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("run_phy -> "));
        assert!(diags[0].message.contains("helper"));
        assert!(stats
            .roots_matched
            .iter()
            .any(|s| s == "carpool_bench::run_phy"));
        assert_eq!(stats.reachable_fns, 3);
    }

    #[test]
    fn l007_unreachable_panics_and_waivers_pass() {
        let files = vec![record(
            "crates/bench/src/lib.rs",
            "carpool-bench",
            "pub fn run_phy() { step(); }\n\
             fn step() {}\n\
             fn island() { x.unwrap(); }\n\
             fn hot() { y.unwrap() } // lint:allow(panic): y checked by caller\n",
        )];
        let graph = CallGraph::build(&files);
        let (diags, _) = check_l007(&files, &graph, false);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l007_strict_indexing_flags_and_counts() {
        let files = vec![record(
            "crates/bench/src/lib.rs",
            "carpool-bench",
            "pub fn run_phy(v: &[u8]) -> u8 { v[0] }\n",
        )];
        let graph = CallGraph::build(&files);
        let (relaxed, stats) = check_l007(&files, &graph, false);
        assert!(relaxed.is_empty());
        assert_eq!(stats.indexing_sites, 1);
        let (strict, _) = check_l007(&files, &graph, true);
        assert_eq!(strict.len(), 1);
        assert!(strict[0].message.contains("--strict-indexing"));
    }

    #[test]
    fn l008_flags_hash_iteration_in_deterministic_crates() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let files = vec![record("crates/mac/src/sim.rs", "carpool-mac", src)];
        let diags = check_l008(&files);
        assert_eq!(diags.len(), 2); // one per line that names a hash type
        assert!(diags[0].message.contains("BTreeMap"));
        // Tool crates without byte-identical outputs are exempt.
        let cli = vec![record("crates/cli/src/main.rs", "carpool-cli", src)];
        assert!(check_l008(&cli).is_empty());
    }

    #[test]
    fn l008_waiver_honored() {
        let src = "// lint:allow(hash-iter): drained into a sorted Vec before use\n\
                   use std::collections::HashMap;\n";
        let files = vec![record("crates/mac/src/sim.rs", "carpool-mac", src)];
        assert!(check_l008(&files).is_empty());
    }

    #[test]
    fn l010_flags_unreferenced_pub_items() {
        let files = vec![
            record(
                "crates/frame/src/lib.rs",
                "carpool-frame",
                "pub fn used() {}\npub fn orphan() {}\n",
            ),
            record(
                "crates/mac/src/lib.rs",
                "carpool-mac",
                "fn f() { carpool_frame::used(); }\n",
            ),
        ];
        let diags = check_l010(&files);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`orphan`"));
    }

    #[test]
    fn l010_doc_mentions_and_waivers_keep_items_alive() {
        let files = vec![
            record(
                "crates/frame/src/lib.rs",
                "carpool-frame",
                "pub fn documented() {}\n\
                 // lint:allow(dead-api): kept for downstream experiments\n\
                 pub fn waived() {}\n",
            ),
            record(
                "crates/mac/src/lib.rs",
                "carpool-mac",
                "// see `documented` in carpool-frame\nfn f() {}\n",
            ),
        ];
        assert!(check_l010(&files).is_empty());
    }

    #[test]
    fn l010_tool_crates_are_exempt() {
        let files = vec![record(
            "crates/cli/src/main.rs",
            "carpool-cli",
            "pub fn orphan() {}\n",
        )];
        assert!(check_l010(&files).is_empty());
    }
}
