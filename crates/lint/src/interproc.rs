//! Interprocedural rules (L007, L008, L010–L013) over the workspace
//! call graph and parsed items. L009 is a line rule and lives in
//! [`crate::rules`].

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::dataflow;
use crate::items::{FileRecord, Section};
use crate::rules::{contains_token, line_waived, panic_hits, Diagnostic, Rule};

/// The hot-path roots L007 guards: the bench PHY trial loop, the MAC
/// Monte-Carlo driver (both its free-fn spelling and the historical
/// `Simulator::` one), the sharded MAC event engine (the per-domain
/// step loop, the calendar-queue push/pop it dispatches through, and
/// the `run_sharded` epoch driver), the link-delivery facade, the RX
/// section decoder (the fused demap→scatter→Viterbi fast path), and
/// the integer Viterbi / FFT kernels — including the pre-quantized
/// `decode_levels` entry points the fused RX path batches into.
/// Specs are `::`-separated suffixes matched against fully qualified
/// fn paths.
pub const HOT_ROOTS: [&str; 23] = [
    "carpool_bench::run_phy",
    "Simulator::run_replications",
    "sim::run_replications",
    "Simulator::run",
    "Domain::step",
    "CalendarQueue::push",
    "CalendarQueue::pop",
    "carpool_par::run_sharded",
    "CarpoolLink::deliver_all",
    "FrameDecoder::decode_section",
    "convolutional::decode",
    "convolutional::decode_with",
    "convolutional::decode_soft",
    "convolutional::decode_soft_with",
    "convolutional::decode_soft_quantized",
    "convolutional::decode_soft_quantized_with",
    "convolutional::decode_levels",
    "convolutional::decode_levels_with",
    "fft::fft",
    "fft::ifft",
    "fft::fft_in_place",
    "fft::ifft_in_place",
    "fft::fft_real",
];

/// Call-graph statistics surfaced in reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HotPathStats {
    /// Root specs that matched at least one fn, in [`HOT_ROOTS`] order.
    pub roots_matched: Vec<String>,
    /// Number of root fn nodes.
    pub root_nodes: usize,
    /// Number of fns reachable from the roots (roots included).
    pub reachable_fns: usize,
    /// Slice/array indexing sites inside reachable fns. Always counted;
    /// only diagnosed under `--strict-indexing` (DSP kernels index
    /// pervasively with loop-bounded indices, so the count is a trend
    /// metric, not a gate).
    pub indexing_sites: usize,
}

/// L007 panic-reachability: panic tokens (and, in strict mode,
/// indexing) inside any fn transitively reachable from [`HOT_ROOTS`].
/// Honors both `hot-panic` waivers and plain `panic` waivers — an L001
/// waiver already documents why the site is infallible.
pub fn check_l007(
    files: &[FileRecord],
    graph: &CallGraph,
    strict_indexing: bool,
) -> (Vec<Diagnostic>, HotPathStats) {
    let mut stats = HotPathStats::default();
    let mut roots: Vec<usize> = Vec::new();
    for spec in HOT_ROOTS {
        let matched = graph.match_root(spec);
        if !matched.is_empty() {
            stats.roots_matched.push(spec.to_string());
        }
        roots.extend(matched);
    }
    roots.sort_unstable();
    roots.dedup();
    stats.root_nodes = roots.len();
    let parents = graph.reachable(&roots);
    stats.reachable_fns = parents.len();

    let mut diags = Vec::new();
    // (file, line, token) pairs already reported, so overlapping fn
    // spans (e.g. nested fns) do not double-report.
    let mut seen: BTreeSet<(usize, usize, &str)> = BTreeSet::new();
    for &node_idx in parents.keys() {
        let Some(node) = graph.nodes.get(node_idx) else {
            continue;
        };
        if node.in_test {
            continue;
        }
        let Some(file) = files.get(node.file) else {
            continue;
        };
        let Some(item) = file.items.fns.get(node.item) else {
            continue;
        };
        if item.body_start == 0 {
            continue; // bodiless trait signature
        }
        let chain = graph.chain(node_idx, &parents).join(" -> ");
        for number in item.decl_line..=item.body_end {
            let Some(idx) = number.checked_sub(1) else {
                continue;
            };
            let Some(line) = file.lines.get(idx) else {
                continue;
            };
            if line.in_test {
                continue;
            }
            for token in panic_hits(&line.code) {
                if !seen.insert((node.file, number, token)) {
                    continue;
                }
                if line_waived(&file.lines, idx, Rule::L007.waiver_key())
                    || line_waived(&file.lines, idx, Rule::L001.waiver_key())
                {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: Rule::L007,
                    file: file.path.clone(),
                    line: number,
                    message: format!(
                        "`{token}` is reachable from a hot-path root \
                         (call chain: {chain}); hot paths must be panic-free — \
                         refactor or waive with `// lint:allow(hot-panic): <why>`"
                    ),
                });
            }
            let hits = indexing_sites(&line.code);
            if hits > 0 {
                stats.indexing_sites += hits;
                if strict_indexing
                    && seen.insert((node.file, number, "[indexing]"))
                    && !line_waived(&file.lines, idx, Rule::L007.waiver_key())
                {
                    diags.push(Diagnostic {
                        rule: Rule::L007,
                        file: file.path.clone(),
                        line: number,
                        message: format!(
                            "slice indexing on a hot path can panic on out-of-bounds \
                             (call chain: {chain}); use `get`/iterators or waive with \
                             `// lint:allow(hot-panic): <why in bounds>` \
                             [--strict-indexing]"
                        ),
                    });
                }
            }
        }
    }
    (diags, stats)
}

/// Counts `expr[...]` indexing sites in one blanked code line: a `[`
/// directly after an identifier character, `)`, or `]`.
fn indexing_sites(code: &str) -> usize {
    let bytes = code.as_bytes();
    let mut count = 0usize;
    for at in 1..bytes.len() {
        if bytes[at] != b'[' {
            continue;
        }
        let prev = bytes[at - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            count += 1;
        }
    }
    count
}

/// L008 iteration-order nondeterminism: `HashMap`/`HashSet` in crates
/// whose outputs must be byte-identical across runs and thread counts.
/// The rule is presence-based (conservative): any non-test use is
/// flagged unless waived with `hash-iter`, because hash iteration
/// order is randomized per process and per key history.
pub fn check_l008(files: &[FileRecord]) -> Vec<Diagnostic> {
    const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
    let mut diags = Vec::new();
    for file in files {
        if !file.class.ordered_iteration || !matches!(file.section, Section::Src) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for ty in HASH_TYPES {
                if contains_token(&line.code, ty)
                    && !line_waived(&file.lines, idx, Rule::L008.waiver_key())
                {
                    diags.push(Diagnostic {
                        rule: Rule::L008,
                        file: file.path.clone(),
                        line: line.number,
                        message: format!(
                            "`{ty}` has nondeterministic iteration order; use \
                             BTreeMap/BTreeSet (or sort before iterating) so sim/bench \
                             outputs stay byte-identical, or waive with \
                             `// lint:allow(hash-iter): <why order never observed>`"
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// L010 dead public API: top-level `pub` items in library crates that
/// no other workspace crate, no test/bench/example, and no tool crate
/// ever names. Matching is by word-bounded identifier occurrence in
/// code *or* comments (doc examples count as usage), so the rule only
/// fires when a name appears nowhere else at all.
pub fn check_l010(files: &[FileRecord]) -> Vec<Diagnostic> {
    // Per-file identifier sets over code + comments.
    let words: Vec<BTreeSet<String>> = files
        .iter()
        .map(|f| {
            let mut set = BTreeSet::new();
            for line in &f.lines {
                collect_idents(&line.code, &mut set);
                collect_idents(&line.comment, &mut set);
            }
            set
        })
        .collect();

    let mut diags = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if !file.class.library || !matches!(file.section, Section::Src) {
            continue;
        }
        for item in &file.items.pub_items {
            // Any *other* file counts as a reference: another crate, a
            // test/bench/example, or a same-crate sibling (a crate-root
            // re-export or module caller still implies the item earns
            // its keep).
            let referenced = files.iter().enumerate().any(|(other_idx, _)| {
                other_idx != file_idx && words[other_idx].contains(&item.name)
            });
            if referenced {
                continue;
            }
            let idx = item.line.saturating_sub(1);
            if line_waived(&file.lines, idx, Rule::L010.waiver_key()) {
                continue;
            }
            diags.push(Diagnostic {
                rule: Rule::L010,
                file: file.path.clone(),
                line: item.line,
                message: format!(
                    "pub {} `{}` is never referenced by any other workspace file; \
                     remove it, demote to pub(crate), or waive with \
                     `// lint:allow(dead-api): <why external users need it>`",
                    item.kind, item.name
                ),
            });
        }
    }
    diags
}

/// Flow-aware analysis statistics surfaced in reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Allocation effects across all non-test library code.
    pub alloc_sites: usize,
    /// Allocation effects inside hot-reachable fns (waived included).
    pub hot_alloc_sites: usize,
    /// Functions carrying a `lint:budget` annotation.
    pub budget_fns: usize,
    /// Distinct non-saturating ops over budgeted data that were
    /// bounds-checked by the interval analysis.
    pub budget_ops_checked: usize,
    /// Lines performing f64 arithmetic in non-test library code.
    pub f64_arith_lines: usize,
    /// Widening integer conversions (`i64::from`-style).
    pub widening_ops: usize,
    /// Potentially narrowing `as <int>` casts.
    pub narrowing_casts: usize,
    /// Function parameters carrying a recognized unit suffix.
    pub unit_params: usize,
}

/// Tallies statement-effect counts over every non-test `src/` fn (the
/// classification half of the flow-aware pass; the rules below consume
/// the same primitives).
pub fn flow_effects(files: &[FileRecord]) -> dataflow::EffectCounts {
    let mut totals = dataflow::EffectCounts::default();
    for file in files {
        if !matches!(file.section, Section::Src) {
            continue;
        }
        for item in &file.items.fns {
            if item.in_test || item.body_start == 0 {
                continue;
            }
            totals.absorb(dataflow::classify_effects(file, item));
        }
    }
    totals
}

/// L011 hot-path allocation freedom: allocation effects (Vec::new,
/// with_capacity, push-in-loop, Box::new, format!, clone, collect,
/// to_vec) inside any fn transitively reachable from [`HOT_ROOTS`].
/// Returns the diagnostics plus the hot-site count (waived included).
pub fn check_l011(files: &[FileRecord], graph: &CallGraph) -> (Vec<Diagnostic>, usize) {
    let mut roots: Vec<usize> = Vec::new();
    for spec in HOT_ROOTS {
        roots.extend(graph.match_root(spec));
    }
    roots.sort_unstable();
    roots.dedup();
    let parents = graph.reachable(&roots);

    let mut diags = Vec::new();
    let mut hot_sites = 0usize;
    let mut seen: BTreeSet<(usize, usize, &str)> = BTreeSet::new();
    for &node_idx in parents.keys() {
        let Some(node) = graph.nodes.get(node_idx) else {
            continue;
        };
        if node.in_test {
            continue;
        }
        let Some(file) = files.get(node.file) else {
            continue;
        };
        if !file.class.alloc_audited {
            continue;
        }
        let Some(item) = file.items.fns.get(node.item) else {
            continue;
        };
        if item.body_start == 0 || dataflow::is_setup_fn(&item.name) {
            continue;
        }
        let chain = graph.chain(node_idx, &parents).join(" -> ");
        for site in dataflow::alloc_sites(file, item) {
            if !seen.insert((node.file, site.line, site.what)) {
                continue;
            }
            hot_sites += 1;
            let Some(idx) = site.line.checked_sub(1) else {
                continue;
            };
            if line_waived(&file.lines, idx, Rule::L011.waiver_key()) {
                continue;
            }
            let where_note = if site.in_loop { " inside a loop" } else { "" };
            diags.push(Diagnostic {
                rule: Rule::L011,
                file: file.path.clone(),
                line: site.line,
                message: format!(
                    "`{}`{} allocates on a hot path (call chain: {}); reuse a \
                     scratch buffer or waive with \
                     `// lint:allow(hot-alloc): <why setup-time or amortized>`",
                    site.what, where_note, chain
                ),
            });
        }
    }
    (diags, hot_sites)
}

/// L012 scaling-budget verification: every fn annotated with
/// `// lint:budget(i32: [names in] ±N)` gets an interval abstract
/// interpretation proving its non-saturating i32 arithmetic cannot
/// wrap. Returns diagnostics plus `(annotated fns, ops checked)`.
pub fn check_l012(files: &[FileRecord]) -> (Vec<Diagnostic>, usize, usize) {
    let mut diags = Vec::new();
    let mut budget_fns = 0usize;
    let mut ops_checked = 0usize;
    for file in files {
        if !matches!(file.section, Section::Src) {
            continue;
        }
        for item in &file.items.fns {
            if item.in_test || item.body_start == 0 {
                continue;
            }
            let specs = dataflow::budget_specs(file, item);
            if specs.is_empty() {
                continue;
            }
            budget_fns += 1;
            let report = dataflow::check_budget_fn(file, item, &specs);
            ops_checked += report.ops_checked;
            for finding in report.findings {
                let idx = finding.line.saturating_sub(1);
                if line_waived(&file.lines, idx, Rule::L012.waiver_key()) {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: Rule::L012,
                    file: file.path.clone(),
                    line: finding.line,
                    message: format!(
                        "in `{}`: {}; or waive with \
                         `// lint:allow(scaling-budget): <why it cannot wrap>`",
                        item.name, finding.message
                    ),
                });
            }
        }
    }
    (diags, budget_fns, ops_checked)
}

/// Binary operators whose operands must share a unit (multiplication
/// and division are exempt — they convert units).
const MIX_OPS: [&str; 10] = ["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="];

/// L013 unit-of-measure discipline over unit-audited crates:
/// arithmetic/comparison mixing differently-suffixed quantities, and
/// call arguments whose unit suffix disagrees with the parameter name
/// in the callee's signature. Returns diagnostics plus the number of
/// unit-suffixed parameters seen.
pub fn check_l013(files: &[FileRecord]) -> (Vec<Diagnostic>, usize) {
    // Parameter-unit table by bare fn name: None entries are positions
    // without a recognized unit; fns whose same-name overloads disagree
    // are dropped as ambiguous.
    let mut table: BTreeMap<String, Vec<Option<&'static str>>> = BTreeMap::new();
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();
    let mut unit_params = 0usize;
    for file in files {
        if !matches!(file.section, Section::Src) {
            continue;
        }
        for item in &file.items.fns {
            if item.in_test {
                continue;
            }
            let groups = dataflow::param_names(file, item);
            let units: Vec<Option<&'static str>> = groups
                .iter()
                .map(|g| match g.as_slice() {
                    [single] => dataflow::unit_of(single),
                    _ => None,
                })
                .collect();
            unit_params += units.iter().flatten().count();
            if !file.class.units_audited || units.iter().all(Option::is_none) {
                continue;
            }
            match table.get(&item.name) {
                Some(existing) if existing != &units => {
                    ambiguous.insert(item.name.clone());
                }
                _ => {
                    table.insert(item.name.clone(), units);
                }
            }
        }
    }
    for name in &ambiguous {
        table.remove(name);
    }

    let mut diags = Vec::new();
    for file in files {
        if !file.class.units_audited || !matches!(file.section, Section::Src) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (left, op, right) in mixed_unit_pairs(&line.code) {
                if line_waived(&file.lines, idx, Rule::L013.waiver_key()) {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: Rule::L013,
                    file: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "`{left} {op} {right}` mixes units ({} vs {}); convert \
                         explicitly or waive with \
                         `// lint:allow(unit-mix): <why the units agree>`",
                        dataflow::unit_of(&left).unwrap_or("?"),
                        dataflow::unit_of(&right).unwrap_or("?"),
                    ),
                });
            }
            for (callee, position, arg, want, got) in unit_mismatched_args(&line.code, &table) {
                if line_waived(&file.lines, idx, Rule::L013.waiver_key()) {
                    continue;
                }
                diags.push(Diagnostic {
                    rule: Rule::L013,
                    file: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "argument {position} of `{callee}(...)` is `{arg}` ({got}) \
                         but the parameter is named in {want}; convert explicitly \
                         or waive with `// lint:allow(unit-mix): <why>`",
                    ),
                });
            }
        }
    }
    (diags, unit_params)
}

/// Line token for the unit-mix scan.
enum UnitTok {
    Id(String),
    Sym(String),
}

/// Tokenizes one blanked code line into identifiers and (merged
/// multi-char) symbols.
fn unit_tokens(code: &str) -> Vec<UnitTok> {
    const MULTI: [&str; 16] = [
        "<<=", ">>=", "..=", "->", "=>", "::", "==", "!=", "<=", ">=", "<<", ">>", "&&", "||",
        "+=", "-=",
    ];
    let chars: Vec<char> = code.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(UnitTok::Id(chars[start..i].iter().collect()));
            continue;
        }
        let rest: String = chars[i..].iter().collect();
        if let Some(op) = MULTI.iter().find(|op| rest.starts_with(**op)) {
            toks.push(UnitTok::Sym((*op).to_string()));
            i += op.len();
            continue;
        }
        toks.push(UnitTok::Sym(c.to_string()));
        i += 1;
    }
    toks
}

/// Finds `lhs <op> rhs` pairs on one line where both sides carry
/// recognized but different units. The left operand is the identifier
/// directly before the operator; the right operand follows `a.b::c`
/// chains to their last segment and rejects calls.
fn mixed_unit_pairs(code: &str) -> Vec<(String, String, String)> {
    let toks = unit_tokens(code);
    let mut out = Vec::new();
    for at in 1..toks.len() {
        let UnitTok::Sym(op) = &toks[at] else {
            continue;
        };
        if !MIX_OPS.contains(&op.as_str()) {
            continue;
        }
        let UnitTok::Id(left) = &toks[at - 1] else {
            continue;
        };
        // Follow the right-hand primary's `a.b` / `a::b` chain.
        let mut j = at + 1;
        let mut right: Option<&String> = None;
        while let Some(UnitTok::Id(name)) = toks.get(j) {
            right = Some(name);
            match toks.get(j + 1) {
                Some(UnitTok::Sym(s)) if s == "." || s == "::" => j += 2,
                _ => break,
            }
        }
        // A call's value has no inferable unit.
        if matches!(toks.get(j + 1), Some(UnitTok::Sym(s)) if s == "(") {
            continue;
        }
        let Some(right) = right else { continue };
        let (Some(lu), Some(ru)) = (dataflow::unit_of(left), dataflow::unit_of(right)) else {
            continue;
        };
        if lu != ru {
            out.push((left.clone(), op.clone(), right.clone()));
        }
    }
    out
}

/// Finds call arguments whose unit suffix disagrees with the callee's
/// parameter-name unit: `(callee, 1-based position, arg, want, got)`.
fn unit_mismatched_args(
    code: &str,
    table: &BTreeMap<String, Vec<Option<&'static str>>>,
) -> Vec<(String, usize, String, &'static str, &'static str)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let name = &code[start..i];
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            continue;
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        // Skip the definition site itself.
        if code[..start].trim_end().ends_with("fn") {
            continue;
        }
        let Some(units) = table.get(name) else {
            continue;
        };
        // Balanced argument span on this line only.
        let mut depth = 0i32;
        let mut end = None;
        for (k, &c) in bytes.iter().enumerate().skip(i) {
            match c {
                b'(' | b'[' => depth += 1,
                b')' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { continue };
        let args_text = &code[i + 1..end];
        for (pos, arg) in dataflow::split_args(args_text).iter().enumerate() {
            let Some(&Some(want)) = units.get(pos) else {
                continue;
            };
            // Only bare identifiers / field chains carry an inferable
            // unit; the chain's last segment names the quantity.
            let arg = arg.trim().trim_start_matches('&');
            let arg = arg
                .trim_start_matches("mut ")
                .trim_start_matches('*')
                .trim();
            if arg.contains(['(', '[', '+', '-', '*', '/', ' ']) {
                continue;
            }
            let last = arg.rsplit(['.', ':']).next().unwrap_or(arg);
            let Some(got) = dataflow::unit_of(last) else {
                continue;
            };
            if got != want {
                out.push((name.to_string(), pos + 1, last.to_string(), want, got));
            }
        }
        i = end;
    }
    out
}

/// Tokens that discharge the scratch-overwrite obligation: the body
/// either explicitly resets its scratch or hands it to a `*_into`
/// writer (the workspace idiom for "fully overwrites the destination").
const SCRATCH_RESET_TOKENS: [&str; 5] = [
    ".clear(",
    "mem::take",
    ".fill(",
    "copy_from_slice",
    "_into(",
];

/// L015 shard-protocol discipline: structural obligations on worker
/// pools and sharded exchanges, checked per non-test `src/` fn.
/// Returns the diagnostics plus the number of fns that triggered at
/// least one obligation.
///
/// 1. *absorb-order*: a fn in shard/mailbox context must not iterate
///    with `.rev()` — absorbing source shards in descending order
///    inverts the merge across thread counts.
/// 2. *barrier-tag*: a fn that waits on a barrier and catches unwinds
///    must tag the failing epoch with `fetch_min`.
/// 3. *index-keyed*: a `thread::scope` pool must not publish results in
///    arrival order (`.lock()` + `.push(` on one line); results belong
///    in index-keyed slots.
/// 4. *scratch-overwrite*: a `*_with_scratch` fn (or one taking a
///    `scratch` parameter) must fully overwrite its scratch so results
///    are history-independent. Setup fns (`new`/`with_*`/`from_*`) that
///    merely store the scratch are exempt.
pub fn check_l015(files: &[FileRecord]) -> (Vec<Diagnostic>, usize) {
    let mut diags = Vec::new();
    let mut fns_checked = 0usize;
    for file in files {
        if !matches!(file.section, Section::Src) {
            continue;
        }
        for item in &file.items.fns {
            if item.in_test || item.body_start == 0 {
                continue;
            }
            let body: Vec<&crate::scanner::SourceLine> = file
                .lines
                .iter()
                .filter(|l| l.number >= item.decl_line && l.number <= item.body_end && !l.in_test)
                .collect();
            let has = |token: &str| body.iter().any(|l| l.code.contains(token));

            let shard_context = item.name.contains("shard")
                || item.name.contains("mailbox")
                || body
                    .iter()
                    .any(|l| l.code.contains("mailbox") || l.code.contains("shard"));
            let barrier_fn = has(".wait()") && has("catch_unwind");
            let pool_fn = has("thread::scope");
            let scratch_fn = !dataflow::is_setup_fn(&item.name)
                && (item.name.contains("_with_scratch")
                    || dataflow::param_names(file, item)
                        .iter()
                        .any(|group| group.iter().any(|n| n == "scratch")));
            if shard_context || barrier_fn || pool_fn || scratch_fn {
                fns_checked += 1;
            }

            let mut push = |line: usize, message: String| {
                let idx = line.saturating_sub(1);
                if !line_waived(&file.lines, idx, Rule::L015.waiver_key()) {
                    diags.push(Diagnostic {
                        rule: Rule::L015,
                        file: file.path.clone(),
                        line,
                        message,
                    });
                }
            };

            if shard_context {
                for l in &body {
                    if l.code.contains(".rev()") {
                        push(
                            l.number,
                            format!(
                                "`.rev()` in shard/mailbox context (fn `{}`): absorbs \
                                 must iterate source shards in ascending index order \
                                 or the merge inverts across thread counts; iterate \
                                 forward or waive with \
                                 `// lint:allow(shard-protocol): <why order-free>` \
                                 [absorb-order]",
                                item.name
                            ),
                        );
                    }
                }
            }
            if barrier_fn && !has("fetch_min") {
                push(
                    item.decl_line,
                    format!(
                        "fn `{}` waits on a barrier and catches unwinds but never \
                         tags the failing epoch with `fetch_min`; without the tag \
                         the earliest failure is lost and recovery is \
                         schedule-dependent — add a `fetch_min` panic tag or waive \
                         with `// lint:allow(shard-protocol): <why>` [barrier-tag]",
                        item.name
                    ),
                );
            }
            if pool_fn {
                for l in &body {
                    if l.code.contains(".lock()") && l.code.contains(".push(") {
                        push(
                            l.number,
                            format!(
                                "fn `{}` publishes worker results in arrival order \
                                 (`.lock()` + `.push(` on one line); key results by \
                                 item index before reduction so output is \
                                 schedule-independent, or waive with \
                                 `// lint:allow(shard-protocol): <why ordered>` \
                                 [index-keyed]",
                                item.name
                            ),
                        );
                    }
                }
            }
            if scratch_fn && !SCRATCH_RESET_TOKENS.iter().any(|t| has(t)) {
                push(
                    item.decl_line,
                    format!(
                        "fn `{}` takes a scratch buffer but never overwrites it \
                         (no `.clear(`/`mem::take`/`.fill(`/`copy_from_slice`/\
                         `*_into(`); stale contents make results depend on call \
                         history — reset the scratch or waive with \
                         `// lint:allow(shard-protocol): <why fully written>` \
                         [scratch-overwrite]",
                        item.name
                    ),
                );
            }
        }
    }
    (diags, fns_checked)
}

/// Collects word-bounded ASCII identifiers into `set`.
fn collect_idents(text: &str, set: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut start: Option<usize> = None;
    for at in 0..=bytes.len() {
        let is_ident = at < bytes.len() && {
            let b = bytes[at];
            b.is_ascii_alphanumeric() || b == b'_'
        };
        match (start, is_ident) {
            (None, true) => start = Some(at),
            (Some(s), false) => {
                if let Ok(word) = std::str::from_utf8(&bytes[s..at]) {
                    if word.chars().next().is_some_and(|c| !c.is_ascii_digit()) {
                        set.insert(word.to_string());
                    }
                }
                start = None;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileRecord;
    use crate::rules::classify;

    fn record(path: &str, crate_name: &str, src: &str) -> FileRecord {
        FileRecord::parse(path, crate_name, Section::Src, classify(crate_name), src)
    }

    #[test]
    fn l007_flags_reachable_panics_with_chain() {
        let files = vec![record(
            "crates/bench/src/lib.rs",
            "carpool-bench",
            "pub fn run_phy() { step(); }\nfn step() { helper(); }\nfn helper() { x.unwrap(); }\n",
        )];
        let graph = CallGraph::build(&files);
        let (diags, stats) = check_l007(&files, &graph, false);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("run_phy -> "));
        assert!(diags[0].message.contains("helper"));
        assert!(stats
            .roots_matched
            .iter()
            .any(|s| s == "carpool_bench::run_phy"));
        assert_eq!(stats.reachable_fns, 3);
    }

    #[test]
    fn l007_unreachable_panics_and_waivers_pass() {
        let files = vec![record(
            "crates/bench/src/lib.rs",
            "carpool-bench",
            "pub fn run_phy() { step(); }\n\
             fn step() {}\n\
             fn island() { x.unwrap(); }\n\
             fn hot() { y.unwrap() } // lint:allow(panic): y checked by caller\n",
        )];
        let graph = CallGraph::build(&files);
        let (diags, _) = check_l007(&files, &graph, false);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l007_strict_indexing_flags_and_counts() {
        let files = vec![record(
            "crates/bench/src/lib.rs",
            "carpool-bench",
            "pub fn run_phy(v: &[u8]) -> u8 { v[0] }\n",
        )];
        let graph = CallGraph::build(&files);
        let (relaxed, stats) = check_l007(&files, &graph, false);
        assert!(relaxed.is_empty());
        assert_eq!(stats.indexing_sites, 1);
        let (strict, _) = check_l007(&files, &graph, true);
        assert_eq!(strict.len(), 1);
        assert!(strict[0].message.contains("--strict-indexing"));
    }

    #[test]
    fn l008_flags_hash_iteration_in_deterministic_crates() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let files = vec![record("crates/mac/src/sim.rs", "carpool-mac", src)];
        let diags = check_l008(&files);
        assert_eq!(diags.len(), 2); // one per line that names a hash type
        assert!(diags[0].message.contains("BTreeMap"));
        // Tool crates without byte-identical outputs are exempt.
        let cli = vec![record("crates/cli/src/main.rs", "carpool-cli", src)];
        assert!(check_l008(&cli).is_empty());
    }

    #[test]
    fn l008_waiver_honored() {
        let src = "// lint:allow(hash-iter): drained into a sorted Vec before use\n\
                   use std::collections::HashMap;\n";
        let files = vec![record("crates/mac/src/sim.rs", "carpool-mac", src)];
        assert!(check_l008(&files).is_empty());
    }

    #[test]
    fn l010_flags_unreferenced_pub_items() {
        let files = vec![
            record(
                "crates/frame/src/lib.rs",
                "carpool-frame",
                "pub fn used() {}\npub fn orphan() {}\n",
            ),
            record(
                "crates/mac/src/lib.rs",
                "carpool-mac",
                "fn f() { carpool_frame::used(); }\n",
            ),
        ];
        let diags = check_l010(&files);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`orphan`"));
    }

    #[test]
    fn l010_doc_mentions_and_waivers_keep_items_alive() {
        let files = vec![
            record(
                "crates/frame/src/lib.rs",
                "carpool-frame",
                "pub fn documented() {}\n\
                 // lint:allow(dead-api): kept for downstream experiments\n\
                 pub fn waived() {}\n",
            ),
            record(
                "crates/mac/src/lib.rs",
                "carpool-mac",
                "// see `documented` in carpool-frame\nfn f() {}\n",
            ),
        ];
        assert!(check_l010(&files).is_empty());
    }

    #[test]
    fn l010_tool_crates_are_exempt() {
        let files = vec![record(
            "crates/cli/src/main.rs",
            "carpool-cli",
            "pub fn orphan() {}\n",
        )];
        assert!(check_l010(&files).is_empty());
    }
}
