//! The project rules (L001–L006) evaluated over scanned source lines
//! and parsed manifests.
//!
//! Every rule reports `file:line` diagnostics. Inline waivers use the
//! `// lint:allow(<key>): <reason>` comment syntax — on the offending
//! line itself, or on a comment-only line directly above it. A waiver
//! without a non-empty reason is not honored.

use crate::scanner::SourceLine;

/// Rule identifiers, in severity-agnostic numeric order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap()/expect()/panic!/unreachable!/todo!/unimplemented!`
    /// in non-test code.
    L001,
    /// No `println!`-family output in library crates (all I/O goes
    /// through `carpool-obs` or the CLI).
    L002,
    /// Crate layering: lower-layer crates must not depend on the MAC
    /// simulator, facade, CLI, bench, or lint crates.
    L003,
    /// Numeric `as` casts in DSP-audited crates need an explicit
    /// waiver (they silently truncate/saturate).
    L004,
    /// No wall-clock reads in deterministic simulation crates.
    L005,
    /// `pub` items in a library crate root need `///` docs.
    L006,
}

impl Rule {
    /// All rules, in order.
    pub const ALL: [Rule; 6] = [
        Rule::L001,
        Rule::L002,
        Rule::L003,
        Rule::L004,
        Rule::L005,
        Rule::L006,
    ];

    /// Stable identifier, e.g. `"L001"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
        }
    }

    /// Waiver key accepted in `lint:allow(<key>)` for this rule.
    pub fn waiver_key(self) -> &'static str {
        match self {
            Rule::L001 => "panic",
            Rule::L002 => "print",
            Rule::L003 => "layering",
            Rule::L004 => "as-cast",
            Rule::L005 => "wall-clock",
            Rule::L006 => "missing-docs",
        }
    }

    /// One-line description used in reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::L001 => "panicking call in non-test code",
            Rule::L002 => "direct stdout/stderr output in a library crate",
            Rule::L003 => "layering violation (lower crate depends on upper layer)",
            Rule::L004 => "unwaived numeric `as` cast in a DSP-audited crate",
            Rule::L005 => "wall-clock read in a deterministic simulation crate",
            Rule::L006 => "undocumented `pub` item in a crate root",
        }
    }
}

/// How each workspace crate is treated by the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrateClass {
    /// Library crate: L002 and L006 apply.
    pub library: bool,
    /// Lower-layer crate: L003 applies.
    pub lower_layer: bool,
    /// DSP-audited crate: L004 applies.
    pub cast_audited: bool,
    /// Deterministic simulation crate: L005 applies.
    pub deterministic: bool,
}

/// Crates that lower-layer crates must never depend on.
pub const UPPER_LAYER: [&str; 5] = [
    "carpool-mac",
    "carpool",
    "carpool-cli",
    "carpool-bench",
    "carpool-lint",
];

/// Classifies a workspace package by name. Unknown crates get the
/// conservative default (library + deterministic) so that new crates
/// are linted strictly until classified here.
pub fn classify(package: &str) -> CrateClass {
    let lib_sim = CrateClass {
        library: true,
        lower_layer: false,
        cast_audited: false,
        deterministic: true,
    };
    match package {
        "carpool-phy" => CrateClass {
            lower_layer: true,
            cast_audited: true,
            ..lib_sim
        },
        "carpool-bloom" | "carpool-channel" | "carpool-frame" | "carpool-traffic" => CrateClass {
            lower_layer: true,
            ..lib_sim
        },
        // The worker pool sits below everything that fans trials out
        // through it (mac, carpool, bench, cli): L003 keeps it from ever
        // depending back up on those crates.
        "carpool-par" => CrateClass {
            lower_layer: true,
            ..lib_sim
        },
        "carpool-mac" => CrateClass {
            cast_audited: true,
            ..lib_sim
        },
        "carpool" | "carpool-repro" => lib_sim,
        // obs owns the process clock (profiling spans) and file sinks.
        "carpool-obs" => CrateClass {
            deterministic: false,
            ..lib_sim
        },
        // Tool crates: terminal output and wall clock are their job.
        "carpool-cli" | "carpool-bench" | "carpool-lint" => CrateClass {
            library: false,
            lower_layer: false,
            cast_audited: false,
            deterministic: false,
        },
        _ => lib_sim,
    }
}

/// One `file:line` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for whole-file/manifest findings).
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Extracts honored waiver keys from one comment: every
/// `lint:allow(<key>): <non-empty reason>` occurrence.
pub fn waivers_in_comment(comment: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let key = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        // The reason is mandatory: `): why this is sound`.
        let reasoned = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim_start().trim_start_matches('-').trim().is_empty());
        if reasoned && !key.is_empty() {
            keys.push(key);
        }
        rest = after;
    }
    keys
}

/// Whether `line` (or a comment-only line directly above it) carries a
/// waiver for `rule`.
fn is_waived(lines: &[SourceLine], idx: usize, rule: Rule) -> bool {
    let key = rule.waiver_key();
    let own = waivers_in_comment(&lines[idx].comment);
    if own.iter().any(|k| k == key) {
        return true;
    }
    // Walk up over comment-only lines (a waiver block may sit above).
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let above = &lines[k];
        if !above.code.trim().is_empty() {
            break;
        }
        if above.comment.is_empty() {
            break;
        }
        if waivers_in_comment(&above.comment).iter().any(|w| w == key) {
            return true;
        }
    }
    false
}

/// Whether `code[at]` starts a word-boundary occurrence of `token`.
fn token_at(code: &str, at: usize, token: &str) -> bool {
    if !code[at..].starts_with(token) {
        return false;
    }
    let before_ok = at == 0
        || !code[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let end = at + token.len();
    let after_ok = !code[end..]
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Finds all word-boundary occurrences of `token` in `code`.
fn contains_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(token) {
        let at = from + at;
        if token_at(code, at, token) {
            return true;
        }
        from = at + 1;
    }
    false
}

/// L001 trigger tokens: `(name, needs leading dot)`.
const PANIC_TOKENS: [(&str, bool); 6] = [
    ("unwrap()", true),
    ("expect(", true),
    ("panic!", false),
    ("unreachable!", false),
    ("todo!", false),
    ("unimplemented!", false),
];

/// L002 trigger tokens (macro names).
const PRINT_TOKENS: [&str; 5] = ["println!", "print!", "eprintln!", "eprint!", "dbg!"];

/// L005 trigger tokens.
const WALL_CLOCK_TOKENS: [&str; 2] = ["Instant::now", "SystemTime"];

/// Numeric types whose `as` casts L004 audits.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Runs all line-based rules over one scanned file.
pub fn check_lines(
    class: CrateClass,
    is_crate_root: bool,
    file: &str,
    lines: &[SourceLine],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        check_l001(lines, idx, file, &mut diags);
        if class.library {
            check_l002(lines, idx, file, &mut diags);
        }
        if class.lower_layer {
            check_l003_use(lines, idx, file, &mut diags);
        }
        if class.cast_audited {
            check_l004(lines, idx, file, &mut diags);
        }
        if class.deterministic {
            check_l005(lines, idx, file, &mut diags);
        }
    }
    if class.library && is_crate_root {
        check_l006(lines, file, &mut diags);
    }
    diags
}

fn check_l001(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for (token, needs_dot) in PANIC_TOKENS {
        let hit = if needs_dot {
            let dotted = format!(".{token}");
            line.code.contains(&dotted)
        } else {
            contains_token(&line.code, token)
        };
        if hit && !is_waived(lines, idx, Rule::L001) {
            diags.push(Diagnostic {
                rule: Rule::L001,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`{token}` can panic at runtime; propagate an error instead, or \
                     waive with `// lint:allow(panic): <why infallible>`"
                ),
            });
        }
    }
}

fn check_l002(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for token in PRINT_TOKENS {
        // `print!` is a prefix of `println!`; token_at's word-boundary
        // check rejects the shorter match because `l` follows, and the
        // two entries fire independently, so no double counting.
        if contains_token(&line.code, token) && !is_waived(lines, idx, Rule::L002) {
            diags.push(Diagnostic {
                rule: Rule::L002,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`{token}` in a library crate; emit through carpool-obs or return \
                     data to the caller (waiver: `// lint:allow(print): <why>`)"
                ),
            });
        }
    }
}

fn check_l003_use(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for upper in UPPER_LAYER {
        let module = upper.replace('-', "_");
        // Word-boundary matching is essential: `carpool` must not match
        // inside `carpool_obs` or `carpool_phy`.
        if references_module(&line.code, &module) {
            if is_waived(lines, idx, Rule::L003) {
                continue;
            }
            diags.push(Diagnostic {
                rule: Rule::L003,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "lower-layer crate references `{module}`; the PHY/channel/frame/\
                     traffic layers must not reach up into MAC/facade/tool crates"
                ),
            });
        }
    }
}

/// Whether `code` references crate `module`: `module::…`, a
/// word-bounded `use module…` import, or `extern crate module`.
fn references_module(code: &str, module: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(module) {
        let at = from + at;
        from = at + 1;
        if !token_at(code, at, module) {
            continue;
        }
        let after = &code[at + module.len()..];
        if after.starts_with("::") {
            return true;
        }
        let before = code[..at].trim_end();
        if before.ends_with("use") || before.ends_with("extern crate") {
            return true;
        }
    }
    false
}

fn check_l004(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    let code = &line.code;
    let mut from = 0;
    let mut hits: Vec<&str> = Vec::new();
    while let Some(at) = code[from..].find(" as ") {
        let at = from + at + 1; // position of the `as` word
        from = at + 2;
        if !token_at(code, at, "as") {
            continue;
        }
        let after = code[at + 2..].trim_start();
        for ty in NUMERIC_TYPES {
            if token_at(after, 0, ty) {
                hits.push(ty);
                break;
            }
        }
    }
    if !hits.is_empty() && !is_waived(lines, idx, Rule::L004) {
        for ty in hits {
            diags.push(Diagnostic {
                rule: Rule::L004,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`as {ty}` cast can silently truncate or saturate in a DSP hot \
                     path; use a checked/documented conversion or waive with \
                     `// lint:allow(as-cast): <why lossless>`"
                ),
            });
        }
    }
}

fn check_l005(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for token in WALL_CLOCK_TOKENS {
        if line.code.contains(token) && !is_waived(lines, idx, Rule::L005) {
            diags.push(Diagnostic {
                rule: Rule::L005,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`{token}` breaks trace reproducibility in a simulation crate; \
                     take time from the simulation clock or the obs layer"
                ),
            });
        }
    }
}

/// Item keywords that need docs when `pub` at the crate-root top level.
const DOC_ITEMS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

fn check_l006(lines: &[SourceLine], file: &str, diags: &mut Vec<Diagnostic>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || line.depth != 0 {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        // `pub use` re-exports inherit upstream docs; `pub(crate)` and
        // friends are not part of the public API.
        let rest = rest.trim_start();
        let keyword_ok = DOC_ITEMS.iter().any(|kw| {
            rest.strip_prefix(kw)
                .is_some_and(|after| after.starts_with([' ', '<', '(']))
                || rest
                    .strip_prefix("unsafe ")
                    .map(str::trim_start)
                    .and_then(|r| r.strip_prefix(kw))
                    .is_some_and(|after| after.starts_with(' '))
        });
        if !keyword_ok {
            continue;
        }
        if has_doc_above(lines, idx) || is_waived(lines, idx, Rule::L006) {
            continue;
        }
        diags.push(Diagnostic {
            rule: Rule::L006,
            file: file.to_string(),
            line: line.number,
            message: "public item in a crate root without `///` docs".to_string(),
        });
    }
}

/// Walks upward over attributes and blank lines looking for a doc
/// comment attached to the item at `idx`.
fn has_doc_above(lines: &[SourceLine], idx: usize) -> bool {
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let line = &lines[k];
        let code = line.code.trim();
        let comment = line.comment.trim_start();
        if comment.starts_with("///") {
            return true;
        }
        // Attribute lines (including multi-line attribute tails) and
        // blanks are transparent; anything else ends the search.
        let attr_like = code.starts_with("#[") || code.ends_with(']') || code.ends_with(',');
        if code.is_empty() || attr_like {
            continue;
        }
        return false;
    }
    false
}

/// L003 manifest check: `Cargo.toml` dependencies of a lower-layer
/// crate must not include upper-layer crates.
pub fn check_manifest_layering(
    class: CrateClass,
    manifest_path: &str,
    dependencies: &[String],
) -> Vec<Diagnostic> {
    if !class.lower_layer {
        return Vec::new();
    }
    dependencies
        .iter()
        .filter(|dep| UPPER_LAYER.contains(&dep.as_str()))
        .map(|dep| Diagnostic {
            rule: Rule::L003,
            file: manifest_path.to_string(),
            line: 0,
            message: format!(
                "Cargo.toml dependency on `{dep}` from a lower-layer crate breaks \
                 the phy/bloom/channel/frame/traffic < mac/carpool/cli/bench layering"
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    /// Classes used by the fixtures below.
    fn lib_class() -> CrateClass {
        classify("carpool-frame")
    }
    fn dsp_class() -> CrateClass {
        classify("carpool-phy")
    }
    fn tool_class() -> CrateClass {
        classify("carpool-cli")
    }

    fn check(class: CrateClass, src: &str) -> Vec<Diagnostic> {
        check_lines(class, false, "fix.rs", &scan_source(src))
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn l001_flags_each_panicking_call() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n\
                   fn g(x: Option<u8>) { x.expect(\"m\"); }\n\
                   fn h() { panic!(\"no\"); }\n\
                   fn k() { unreachable!() }\n";
        let diags = check(lib_class(), src);
        assert_eq!(rules_of(&diags), [Rule::L001; 4]);
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            [1, 2, 3, 4]
        );
    }

    #[test]
    fn l001_waiver_on_line_or_above_is_honored() {
        let on_line = "fn f() { x.unwrap(); } // lint:allow(panic): checked above\n";
        assert!(check(lib_class(), on_line).is_empty());
        let above = "// lint:allow(panic): slot exists by construction\n\
                     fn f() { x.unwrap(); }\n";
        assert!(check(lib_class(), above).is_empty());
    }

    #[test]
    fn l001_waiver_without_reason_is_ignored() {
        let src = "fn f() { x.unwrap(); } // lint:allow(panic):\n";
        assert_eq!(rules_of(&check(lib_class(), src)), [Rule::L001]);
        let wrong_key = "fn f() { x.unwrap(); } // lint:allow(print): wrong rule\n";
        assert_eq!(rules_of(&check(lib_class(), wrong_key)), [Rule::L001]);
    }

    #[test]
    fn l001_test_code_is_exempt() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); panic!(\"fixture\"); }\n\
                   }\n";
        assert!(check(lib_class(), src).is_empty());
    }

    #[test]
    fn l001_comments_and_strings_do_not_fire() {
        let src = "// calls unwrap() and panic! in prose\n\
                   fn f() -> &'static str { \"panic! .unwrap()\" }\n";
        assert!(check(lib_class(), src).is_empty());
    }

    #[test]
    fn l002_print_macros_only_in_libraries() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        let diags = check(lib_class(), src);
        assert_eq!(rules_of(&diags), [Rule::L002, Rule::L002]);
        // A tool crate (cli/bench/lint) may print freely.
        assert!(check(tool_class(), src).is_empty());
    }

    #[test]
    fn l002_waiver_honored() {
        let src = "fn f() { println!(\"x\"); } // lint:allow(print): startup banner\n";
        assert!(check(lib_class(), src).is_empty());
    }

    #[test]
    fn l003_upper_layer_references_flagged_with_word_boundaries() {
        let class = classify("carpool-channel");
        assert!(class.lower_layer);
        let src = "use carpool_mac::Schedule;\n";
        assert_eq!(rules_of(&check(class, src)), [Rule::L003]);
        let qualified = "fn f() { let x = carpool_cli::main(); }\n";
        assert_eq!(rules_of(&check(class, qualified)), [Rule::L003]);
        // Sibling lower-layer and obs imports are fine, and `carpool`
        // must not match inside `carpool_obs`.
        let ok = "use carpool_obs::Obs;\nuse carpool_bloom::Filter;\n";
        assert!(check(class, ok).is_empty());
    }

    #[test]
    fn l003_par_pool_is_a_lower_layer_crate() {
        let class = classify("carpool-par");
        assert!(class.lower_layer && class.library && class.deterministic);
        let deps = vec!["carpool-mac".to_string()];
        let diags = check_manifest_layering(class, "crates/par/Cargo.toml", &deps);
        assert_eq!(rules_of(&diags), [Rule::L003]);
    }

    #[test]
    fn l003_manifest_dependencies_checked() {
        let deps = vec!["carpool-obs".to_string(), "carpool-mac".to_string()];
        let diags =
            check_manifest_layering(classify("carpool-frame"), "crates/frame/Cargo.toml", &deps);
        assert_eq!(rules_of(&diags), [Rule::L003]);
        assert!(diags[0].message.contains("carpool-mac"));
        // Upper-layer crates may depend on whatever they like.
        assert!(check_manifest_layering(classify("carpool-mac"), "m", &deps).is_empty());
    }

    #[test]
    fn l004_numeric_casts_need_waivers_in_dsp_crates() {
        let src = "fn f(x: f64) -> u8 { x as u8 }\n";
        assert_eq!(rules_of(&check(dsp_class(), src)), [Rule::L004]);
        // Same code in a non-audited crate passes.
        assert!(check(classify("carpool-traffic"), src).is_empty());
        let waived = "// lint:allow(as-cast): x is clamped to [0, 255] above\n\
                      fn f(x: f64) -> u8 { x as u8 }\n";
        assert!(check(dsp_class(), waived).is_empty());
    }

    #[test]
    fn l004_non_numeric_casts_are_fine() {
        let src = "fn f(x: &dyn E) { let y = x as &dyn Any; let p = v as *const u8; }\n";
        // `as *const u8` is a pointer cast, not a numeric narrowing —
        // the token after `as` is `*`, not a numeric type.
        assert!(check(dsp_class(), src).is_empty());
    }

    #[test]
    fn l005_wall_clock_flagged_in_simulation_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_of(&check(lib_class(), src)), [Rule::L005]);
        // obs owns the profiling clock; tool crates may also use it.
        assert!(check(classify("carpool-obs"), src).is_empty());
        assert!(check(tool_class(), src).is_empty());
        let waived = "fn f() { let t = Instant::now(); } // lint:allow(wall-clock): profiling\n";
        assert!(check(lib_class(), waived).is_empty());
    }

    #[test]
    fn l006_pub_items_in_crate_root_need_docs() {
        let src = "pub mod alpha;\n\
                   /// Documented.\n\
                   pub mod beta;\n\
                   pub use alpha::Thing;\n\
                   pub(crate) fn helper() {}\n\
                   pub fn orphan() {}\n";
        let diags = check_lines(lib_class(), true, "lib.rs", &scan_source(src));
        assert_eq!(rules_of(&diags), [Rule::L006, Rule::L006]);
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            [1, 6],
            "undocumented mod and fn; pub use / pub(crate) exempt"
        );
        // Non-root files and non-library crates are exempt.
        assert!(check_lines(lib_class(), false, "x.rs", &scan_source(src)).is_empty());
        assert!(check_lines(tool_class(), true, "main.rs", &scan_source(src)).is_empty());
    }

    #[test]
    fn l006_docs_seen_through_attributes() {
        let src = "/// Documented.\n\
                   #[derive(Debug, Clone)]\n\
                   pub struct S;\n";
        assert!(check_lines(lib_class(), true, "lib.rs", &scan_source(src)).is_empty());
    }

    #[test]
    fn waiver_parser_requires_reason() {
        assert_eq!(
            waivers_in_comment("// lint:allow(panic): index checked above"),
            ["panic"]
        );
        assert!(waivers_in_comment("// lint:allow(panic)").is_empty());
        assert!(waivers_in_comment("// lint:allow(panic):   ").is_empty());
        assert_eq!(
            waivers_in_comment("// lint:allow(as-cast): fits, lint:allow(panic): safe"),
            ["as-cast", "panic"]
        );
    }
}
