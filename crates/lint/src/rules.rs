//! The project rules (L001–L006) evaluated over scanned source lines
//! and parsed manifests.
//!
//! Every rule reports `file:line` diagnostics. Inline waivers use the
//! `// lint:allow(<key>): <reason>` comment syntax — on the offending
//! line itself, or on a comment-only line directly above it. A waiver
//! without a non-empty reason is not honored.

use crate::scanner::SourceLine;

/// Rule identifiers, in severity-agnostic numeric order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap()/expect()/panic!/unreachable!/todo!/unimplemented!`
    /// in non-test code.
    L001,
    /// No `println!`-family output in library crates (all I/O goes
    /// through `carpool-obs` or the CLI).
    L002,
    /// Crate layering: lower-layer crates must not depend on the MAC
    /// simulator, facade, CLI, bench, or lint crates.
    L003,
    /// Numeric `as` casts in DSP-audited crates need an explicit
    /// waiver (they silently truncate/saturate).
    L004,
    /// No wall-clock reads in deterministic simulation crates.
    L005,
    /// `pub` items in a library crate root need `///` docs.
    L006,
    /// Panic-reachability: no panic sites transitively reachable from
    /// the designated hot-path roots (interprocedural).
    L007,
    /// No `HashMap`/`HashSet` in crates whose outputs must be
    /// byte-identical (iteration order is nondeterministic).
    L008,
    /// Every atomic `Ordering::` in audited crates carries an
    /// `// ordering:` justification; `Relaxed` only for counters.
    L009,
    /// Dead public API: top-level `pub` items in library crates that
    /// no other workspace file references (interprocedural).
    L010,
    /// Hot-path allocation freedom: no allocating call reachable from
    /// the hot-path roots (interprocedural, flow-aware).
    L011,
    /// Scaling-budget verification: interval analysis proves that no
    /// non-saturating i32 op in a `lint:budget`-annotated fn can wrap.
    L012,
    /// Unit-of-measure discipline: arithmetic must not mix
    /// differently-suffixed quantities (`_s`/`_us`/`_db`/...), and
    /// call arguments must match parameter unit suffixes.
    L013,
    /// Determinism taint: a nondeterminism source (hash iteration,
    /// clock read, thread identity, pointer address, unordered parallel
    /// float reduction) whose value can reach the outputs of a
    /// byte-identical crate (interprocedural, flow-aware).
    L014,
    /// Shard-protocol discipline: structural obligations on worker
    /// pools and sharded exchanges (ascending mailbox absorb, barrier
    /// epochs paired with a panic tag, index-keyed results, scratch
    /// history-independence).
    L015,
}

impl Rule {
    /// All rules, in order.
    pub const ALL: [Rule; 15] = [
        Rule::L001,
        Rule::L002,
        Rule::L003,
        Rule::L004,
        Rule::L005,
        Rule::L006,
        Rule::L007,
        Rule::L008,
        Rule::L009,
        Rule::L010,
        Rule::L011,
        Rule::L012,
        Rule::L013,
        Rule::L014,
        Rule::L015,
    ];

    /// Stable identifier, e.g. `"L001"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::L010 => "L010",
            Rule::L011 => "L011",
            Rule::L012 => "L012",
            Rule::L013 => "L013",
            Rule::L014 => "L014",
            Rule::L015 => "L015",
        }
    }

    /// Parses a rule identifier (`L007`, `l007`, or `7`).
    pub fn from_id(id: &str) -> Option<Rule> {
        let trimmed = id.trim();
        let digits = trimmed
            .strip_prefix('L')
            .or_else(|| trimmed.strip_prefix('l'))
            .unwrap_or(trimmed);
        let n: usize = digits.parse().ok()?;
        Rule::ALL.get(n.checked_sub(1)?).copied()
    }

    /// Waiver key accepted in `lint:allow(<key>)` for this rule.
    pub fn waiver_key(self) -> &'static str {
        match self {
            Rule::L001 => "panic",
            Rule::L002 => "print",
            Rule::L003 => "layering",
            Rule::L004 => "as-cast",
            Rule::L005 => "wall-clock",
            Rule::L006 => "missing-docs",
            Rule::L007 => "hot-panic",
            Rule::L008 => "hash-iter",
            Rule::L009 => "atomic-ordering",
            Rule::L010 => "dead-api",
            Rule::L011 => "hot-alloc",
            Rule::L012 => "scaling-budget",
            Rule::L013 => "unit-mix",
            Rule::L014 => "det",
            Rule::L015 => "shard-protocol",
        }
    }

    /// One-line description used in reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::L001 => "panicking call in non-test code",
            Rule::L002 => "direct stdout/stderr output in a library crate",
            Rule::L003 => "layering violation (lower crate depends on upper layer)",
            Rule::L004 => "unwaived numeric `as` cast in a DSP-audited crate",
            Rule::L005 => "wall-clock read in a deterministic simulation crate",
            Rule::L006 => "undocumented `pub` item in a crate root",
            Rule::L007 => "panic site reachable from a hot-path root",
            Rule::L008 => "HashMap/HashSet in a byte-identical-output crate",
            Rule::L009 => "unjustified atomic memory ordering in an audited crate",
            Rule::L010 => "dead public API (pub item referenced nowhere else)",
            Rule::L011 => "allocation reachable from a hot-path root",
            Rule::L012 => "unprovable or wrapping i32 op under a declared scaling budget",
            Rule::L013 => "arithmetic or call mixing different units of measure",
            Rule::L014 => "nondeterminism source reaching a byte-identical crate's outputs",
            Rule::L015 => "shard-protocol violation in a worker pool or sharded exchange",
        }
    }

    /// Long-form description printed by `--explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::L001 => {
                "L001 · panicking call in non-test code\n\n\
                 Flags `unwrap()`, `.expect(...)`, `panic!`, `unreachable!`, `todo!`\n\
                 and `unimplemented!` outside #[cfg(test)] code. The PHY/MAC pipeline\n\
                 must degrade gracefully under any channel realization; a panic in a\n\
                 Monte-Carlo trial aborts the whole sweep. Propagate Result/Option or\n\
                 restructure so the failure case cannot arise.\n\n\
                 Waive with `// lint:allow(panic): <why infallible>` when the\n\
                 invariant is local and checkable by the reader."
            }
            Rule::L002 => {
                "L002 · direct stdout/stderr output in a library crate\n\n\
                 Library crates must not print: all operator-facing output flows\n\
                 through carpool-obs (structured events) or is returned to the\n\
                 caller. Applies to println!/print!/eprintln!/eprint!/dbg!.\n\n\
                 Waive with `// lint:allow(print): <why>`."
            }
            Rule::L003 => {
                "L003 · crate layering\n\n\
                 Lower-layer crates (phy, bloom, channel, frame, traffic, par) must\n\
                 never depend on upper-layer crates (mac, carpool, cli, bench,\n\
                 lint) — neither via Cargo.toml dependencies nor via paths in code.\n\
                 The layering keeps the PHY reusable and the MAC simulator\n\
                 trace-reproducible.\n\n\
                 Waive with `// lint:allow(layering): <why>`."
            }
            Rule::L004 => {
                "L004 · numeric `as` casts in DSP-audited crates\n\n\
                 `as` silently truncates and saturates; in phy/mac kernels that can\n\
                 corrupt samples and counters without any runtime signal. Use\n\
                 From/TryFrom conversions, or document why the cast is lossless.\n\n\
                 Waive with `// lint:allow(as-cast): <why lossless>`."
            }
            Rule::L005 => {
                "L005 · wall-clock reads in deterministic simulation crates\n\n\
                 `Instant::now`/`SystemTime` break trace reproducibility: two runs\n\
                 of the same seed must produce byte-identical outputs. Take time\n\
                 from the simulation clock, or measure in the obs/bench layer.\n\n\
                 Waive with `// lint:allow(wall-clock): <why>`."
            }
            Rule::L006 => {
                "L006 · undocumented `pub` items in library crate roots\n\n\
                 Crate roots are the API surface; every `pub` item there needs a\n\
                 `///` doc comment.\n\n\
                 Waive with `// lint:allow(missing-docs): <why>`."
            }
            Rule::L007 => {
                "L007 · panic-reachability on hot paths (interprocedural)\n\n\
                 Builds the workspace call graph and walks it from the hot-path\n\
                 roots — carpool_bench::run_phy, the MAC run_replications driver,\n\
                 CarpoolLink::deliver_all, and the integer Viterbi / FFT kernels.\n\
                 Any L001 panic token inside a function transitively reachable from\n\
                 those roots is an error, and the diagnostic prints the full call\n\
                 chain from the root to the panic site. Slice-indexing sites on hot\n\
                 paths are always *counted* (see the JSON report) and become\n\
                 findings under --strict-indexing.\n\n\
                 Waive with `// lint:allow(hot-panic): <why>`; an existing\n\
                 `lint:allow(panic)` waiver is honored too, since it already\n\
                 documents infallibility."
            }
            Rule::L008 => {
                "L008 · iteration-order nondeterminism (interprocedural)\n\n\
                 HashMap/HashSet iterate in randomized order, which silently breaks\n\
                 the byte-identical-output guarantee the figures depend on. In\n\
                 crates whose outputs are compared byte-for-byte (sim, phy, par,\n\
                 bench) use BTreeMap/BTreeSet, or sort before iterating.\n\n\
                 Waive with `// lint:allow(hash-iter): <why order never observed>`."
            }
            Rule::L009 => {
                "L009 · atomics/lock audit in concurrency crates\n\n\
                 Every `Ordering::` use in crates/par must carry an `// ordering:`\n\
                 justification comment on the same line or directly above, so each\n\
                 memory-ordering choice is reviewable. `Ordering::Relaxed` is\n\
                 additionally only accepted when the justification describes a\n\
                 counter (word `counter` present) — Relaxed provides no\n\
                 happens-before edges, which is only sound for standalone counts.\n\n\
                 Waive with `// lint:allow(atomic-ordering): <why>`."
            }
            Rule::L010 => {
                "L010 · dead public API (interprocedural)\n\n\
                 A top-level `pub` item in a library crate that no other workspace\n\
                 file mentions — not another crate, not a test/bench/example, not\n\
                 the CLI, not even a doc comment — is unreachable API surface:\n\
                 unexercised, unreviewed, and free to rot. Remove it or demote it\n\
                 to pub(crate). Matching is by word-bounded identifier, so any\n\
                 mention anywhere (including docs) keeps an item alive.\n\n\
                 Waive with `// lint:allow(dead-api): <why external users need it>`."
            }
            Rule::L011 => {
                "L011 · hot-path allocation freedom (interprocedural, flow-aware)\n\n\
                 Walks the call graph from the hot-path roots (bench run_phy, the\n\
                 MAC run_replications driver, CarpoolLink::deliver_all, and the\n\
                 integer Viterbi / FFT kernels) and flags allocation effects in any\n\
                 function reachable from them: Vec::new, Vec::with_capacity,\n\
                 Box::new, format!, .clone(), .collect(), .to_vec(), and .push()\n\
                 inside a loop. PhyScratch/ViterbiScratch made these paths\n\
                 allocation-free; this rule keeps allocations from creeping back.\n\
                 The diagnostic prints the full call chain from the root to the\n\
                 allocation site.\n\n\
                 Exemptions built into the rule: tool crates (cli, lint) are out\n\
                 of scope; constructor/builder fns (new*, with_*, build*, from_*,\n\
                 default) are setup-time by convention; and a push-in-loop whose\n\
                 fn pre-sizes capacity (with_capacity / reserve) is amortized\n\
                 O(1) and exempt while the one-time allocation stays reported.\n\n\
                 Waive with `// lint:allow(hot-alloc): <why setup-time or\n\
                 amortized>` — e.g. a reserve() precedes the push, or the path\n\
                 only runs at scenario construction."
            }
            Rule::L012 => {
                "L012 · integer scaling-budget verification (flow-aware)\n\n\
                 Functions annotated `// lint:budget(i32: [names in] ±N)` (N may\n\
                 be `2^k`) get an interval abstract interpretation over their\n\
                 integer locals: annotated inputs are assumed in [-N, N], and\n\
                 every non-saturating `+ - * <<` (or negation) over data derived\n\
                 from them must provably stay inside i32. The quantized Viterbi\n\
                 kernel's hand-argued budget (|q| <= 2^20, costs < 2^21, spread\n\
                 < 2^24) becomes a machine-checked invariant: loosen a clamp or\n\
                 drop a saturating op and the gate fails. Saturating ops are\n\
                 always safe; wrapping_* ops destroy the bound and taint their\n\
                 result. An operand the analysis cannot bound is reported as\n\
                 unprovable — annotate its source or use saturating arithmetic.\n\n\
                 Waive with `// lint:allow(scaling-budget): <why the op cannot\n\
                 wrap>`."
            }
            Rule::L013 => {
                "L013 · unit-of-measure discipline (flow-aware)\n\n\
                 Identifier suffixes carry units in this workspace: `_s`, `_us`,\n\
                 `_symbols`, `_slots`, `_db`, `_linear`, plus SCREAMING consts\n\
                 like SYMBOL_DURATION / SLOT_TIME (seconds). Adding, subtracting\n\
                 or comparing two quantities with different recognized units —\n\
                 seconds to microseconds, dB to linear power — is almost always a\n\
                 conversion bug (multiplication and division are exempt: they\n\
                 convert units). Passing an argument whose suffix disagrees with\n\
                 the parameter name in the callee's signature is flagged too.\n\n\
                 Waive with `// lint:allow(unit-mix): <why the units agree>`."
            }
            Rule::L014 => {
                "L014 · determinism taint (interprocedural)\n\n\
                 The workspace contract is byte-identical figures and traces at\n\
                 any thread or shard count. This pass marks nondeterminism\n\
                 sources — iteration over `HashMap`/`HashSet`/`RandomState`\n\
                 containers (including iteration over an identifier previously\n\
                 bound to one, which L008's token scan misses), `Instant::now`\n\
                 and `SystemTime` clock reads, `thread::current` identity,\n\
                 pointer-to-address casts, and float accumulation under a lock\n\
                 in thread-spawning functions — and walks the call graph\n\
                 caller-ward: a source is flagged when its containing function\n\
                 lives in, or is transitively called from, a crate whose\n\
                 outputs must be byte-identical (`ordered_iteration` class).\n\
                 The diagnostic prints the call chain that connects the source\n\
                 to the deterministic crate.\n\n\
                 Waive with `// lint:allow(det): <why the value never reaches\n\
                 deterministic output>` — e.g. profiling-only span timers whose\n\
                 durations are reported out-of-band."
            }
            Rule::L015 => {
                "L015 · shard-protocol discipline (structural)\n\n\
                 The sharded exchange in `carpool-par` keeps results\n\
                 deterministic only if every implementation honors four\n\
                 obligations, which this rule checks structurally:\n\n\
                 1. absorb-order: mailbox/shard-result absorption must iterate\n\
                    source shards in ascending index order — a `.rev()` over a\n\
                    mailbox read inverts merge order across thread counts.\n\
                 2. barrier-tag: a function that `.wait()`s on a barrier and\n\
                    catches unwinds must tag the failing epoch with\n\
                    `fetch_min`, so the earliest failure wins deterministically.\n\
                 3. index-keyed: a `thread::scope` worker pool must not publish\n\
                    results by arrival order (`.lock()` + `.push(..)` on one\n\
                    line); results go into index-keyed slots before reduction.\n\
                 4. scratch-overwrite: a `*_with_scratch` function (or any fn\n\
                    taking a `scratch` parameter) must fully overwrite its\n\
                    scratch — `.clear(`, `mem::take`, `.fill(`, or\n\
                    `copy_from_slice` — so results are history-independent.\n\n\
                 Waive with `// lint:allow(shard-protocol): <why the\n\
                 obligation is met another way>`."
            }
        }
    }
}

/// How each workspace crate is treated by the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrateClass {
    /// Library crate: L002 and L006 apply.
    pub library: bool,
    /// Lower-layer crate: L003 applies.
    pub lower_layer: bool,
    /// DSP-audited crate: L004 applies.
    pub cast_audited: bool,
    /// Deterministic simulation crate: L005 applies.
    pub deterministic: bool,
    /// Outputs must be byte-identical across runs/threads: L008 applies.
    pub ordered_iteration: bool,
    /// Concurrency-audited crate: L009 applies to every `Ordering::`.
    pub atomics_audited: bool,
    /// Unit-suffix-audited crate: L013 applies to its arithmetic.
    pub units_audited: bool,
    /// Pipeline crate: L011 audits allocations reachable from hot
    /// roots. Tool crates (cli, lint) allocate freely.
    pub alloc_audited: bool,
}

/// Crates that lower-layer crates must never depend on.
pub const UPPER_LAYER: [&str; 5] = [
    "carpool-mac",
    "carpool",
    "carpool-cli",
    "carpool-bench",
    "carpool-lint",
];

/// Classifies a workspace package by name. Unknown crates get the
/// conservative default (library + deterministic) so that new crates
/// are linted strictly until classified here.
pub fn classify(package: &str) -> CrateClass {
    let lib_sim = CrateClass {
        library: true,
        lower_layer: false,
        cast_audited: false,
        deterministic: true,
        ordered_iteration: true,
        atomics_audited: false,
        units_audited: true,
        alloc_audited: true,
    };
    match package {
        "carpool-phy" => CrateClass {
            lower_layer: true,
            cast_audited: true,
            ..lib_sim
        },
        "carpool-bloom" | "carpool-channel" | "carpool-frame" | "carpool-traffic" => CrateClass {
            lower_layer: true,
            ..lib_sim
        },
        // The worker pool sits below everything that fans trials out
        // through it (mac, carpool, bench, cli): L003 keeps it from ever
        // depending back up on those crates. Its atomics are the one
        // place thread interleavings touch results, so L009 audits it.
        "carpool-par" => CrateClass {
            lower_layer: true,
            atomics_audited: true,
            ..lib_sim
        },
        "carpool-mac" => CrateClass {
            cast_audited: true,
            ..lib_sim
        },
        "carpool" | "carpool-repro" => lib_sim,
        // obs owns the process clock (profiling spans) and file sinks,
        // so L005 is out of scope there — but the flight-recorder trace
        // exports are diffed byte-for-byte across thread counts (L008)
        // and the ring's overflow counter is lock-free (L009), so both
        // audits apply.
        "carpool-obs" => CrateClass {
            deterministic: false,
            ordered_iteration: true,
            atomics_audited: true,
            ..lib_sim
        },
        // Bench is a tool crate, but its figure outputs are diffed
        // byte-for-byte across thread counts — L008 applies.
        "carpool-bench" => CrateClass {
            library: false,
            lower_layer: false,
            cast_audited: false,
            deterministic: false,
            ordered_iteration: true,
            atomics_audited: false,
            units_audited: false,
            alloc_audited: true,
        },
        // Tool crates: terminal output and wall clock are their job.
        "carpool-cli" | "carpool-lint" => CrateClass {
            library: false,
            lower_layer: false,
            cast_audited: false,
            deterministic: false,
            ordered_iteration: false,
            atomics_audited: false,
            units_audited: false,
            alloc_audited: false,
        },
        _ => lib_sim,
    }
}

/// One `file:line` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for whole-file/manifest findings).
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Extracts honored waiver keys from one comment: every
/// `lint:allow(<key>): <non-empty reason>` occurrence.
pub fn waivers_in_comment(comment: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let key = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        // The reason is mandatory: `): why this is sound`.
        let reasoned = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim_start().trim_start_matches('-').trim().is_empty());
        if reasoned && !key.is_empty() {
            keys.push(key);
        }
        rest = after;
    }
    keys
}

/// Whether `line` (or a comment-only line directly above it) carries a
/// waiver for `rule`.
fn is_waived(lines: &[SourceLine], idx: usize, rule: Rule) -> bool {
    line_waived(lines, idx, rule.waiver_key())
}

/// Key-based variant of [`is_waived`] for rules that honor several
/// waiver keys (L007 accepts both `hot-panic` and `panic`).
pub(crate) fn line_waived(lines: &[SourceLine], idx: usize, key: &str) -> bool {
    let Some(line) = lines.get(idx) else {
        return false;
    };
    let own = waivers_in_comment(&line.comment);
    if own.iter().any(|k| k == key) {
        return true;
    }
    // Walk up over comment-only lines (a waiver block may sit above).
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let above = &lines[k];
        if !above.code.trim().is_empty() {
            break;
        }
        if above.comment.is_empty() {
            break;
        }
        if waivers_in_comment(&above.comment).iter().any(|w| w == key) {
            return true;
        }
    }
    false
}

/// Whether `code[at]` starts a word-boundary occurrence of `token`.
pub(crate) fn token_at(code: &str, at: usize, token: &str) -> bool {
    if !code[at..].starts_with(token) {
        return false;
    }
    let before_ok = at == 0
        || !code[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let end = at + token.len();
    let after_ok = !code[end..]
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Finds all word-boundary occurrences of `token` in `code`.
pub(crate) fn contains_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(token) {
        let at = from + at;
        if token_at(code, at, token) {
            return true;
        }
        from = at + 1;
    }
    false
}

/// L001 trigger tokens: `(name, needs leading dot)`.
const PANIC_TOKENS: [(&str, bool); 6] = [
    ("unwrap()", true),
    ("expect(", true),
    ("panic!", false),
    ("unreachable!", false),
    ("todo!", false),
    ("unimplemented!", false),
];

/// L001/L007 panic tokens present in one blanked code line.
pub(crate) fn panic_hits(code: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for (token, needs_dot) in PANIC_TOKENS {
        let hit = if needs_dot {
            let dotted = format!(".{token}");
            code.contains(&dotted)
        } else {
            contains_token(code, token)
        };
        if hit {
            hits.push(token);
        }
    }
    hits
}

/// L002 trigger tokens (macro names).
const PRINT_TOKENS: [&str; 5] = ["println!", "print!", "eprintln!", "eprint!", "dbg!"];

/// L005 trigger tokens.
const WALL_CLOCK_TOKENS: [&str; 2] = ["Instant::now", "SystemTime"];

/// Numeric types whose `as` casts L004 audits.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Runs all line-based rules over one scanned file.
pub fn check_lines(
    class: CrateClass,
    is_crate_root: bool,
    file: &str,
    lines: &[SourceLine],
) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Rule::ALL
        .iter()
        .flat_map(|&rule| check_line_rule(rule, class, is_crate_root, file, lines))
        .collect();
    diags.sort_by_key(|a| (a.line, a.rule));
    diags
}

/// Runs one line-based rule over a scanned file. The interprocedural
/// rules (L007, L008, L010) need whole-workspace context and return
/// nothing here — see `crate::interproc`.
pub fn check_line_rule(
    rule: Rule,
    class: CrateClass,
    is_crate_root: bool,
    file: &str,
    lines: &[SourceLine],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let applies = match rule {
        Rule::L001 => true,
        Rule::L002 => class.library,
        Rule::L003 => class.lower_layer,
        Rule::L004 => class.cast_audited,
        Rule::L005 => class.deterministic,
        Rule::L006 => {
            if class.library && is_crate_root {
                check_l006(lines, file, &mut diags);
            }
            false
        }
        Rule::L009 => class.atomics_audited,
        Rule::L007
        | Rule::L008
        | Rule::L010
        | Rule::L011
        | Rule::L012
        | Rule::L013
        | Rule::L014
        | Rule::L015 => false,
    };
    if applies {
        for (idx, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            match rule {
                Rule::L001 => check_l001(lines, idx, file, &mut diags),
                Rule::L002 => check_l002(lines, idx, file, &mut diags),
                Rule::L003 => check_l003_use(lines, idx, file, &mut diags),
                Rule::L004 => check_l004(lines, idx, file, &mut diags),
                Rule::L005 => check_l005(lines, idx, file, &mut diags),
                Rule::L009 => check_l009(lines, idx, file, &mut diags),
                _ => {}
            }
        }
    }
    diags
}

fn check_l001(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for token in panic_hits(&line.code) {
        if !is_waived(lines, idx, Rule::L001) {
            diags.push(Diagnostic {
                rule: Rule::L001,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`{token}` can panic at runtime; propagate an error instead, or \
                     waive with `// lint:allow(panic): <why infallible>`"
                ),
            });
        }
    }
}

fn check_l002(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for token in PRINT_TOKENS {
        // `print!` is a prefix of `println!`; token_at's word-boundary
        // check rejects the shorter match because `l` follows, and the
        // two entries fire independently, so no double counting.
        if contains_token(&line.code, token) && !is_waived(lines, idx, Rule::L002) {
            diags.push(Diagnostic {
                rule: Rule::L002,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`{token}` in a library crate; emit through carpool-obs or return \
                     data to the caller (waiver: `// lint:allow(print): <why>`)"
                ),
            });
        }
    }
}

fn check_l003_use(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for upper in UPPER_LAYER {
        let module = upper.replace('-', "_");
        // Word-boundary matching is essential: `carpool` must not match
        // inside `carpool_obs` or `carpool_phy`.
        if references_module(&line.code, &module) {
            if is_waived(lines, idx, Rule::L003) {
                continue;
            }
            diags.push(Diagnostic {
                rule: Rule::L003,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "lower-layer crate references `{module}`; the PHY/channel/frame/\
                     traffic layers must not reach up into MAC/facade/tool crates"
                ),
            });
        }
    }
}

/// Whether `code` references crate `module`: `module::…`, a
/// word-bounded `use module…` import, or `extern crate module`.
fn references_module(code: &str, module: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(module) {
        let at = from + at;
        from = at + 1;
        if !token_at(code, at, module) {
            continue;
        }
        let after = &code[at + module.len()..];
        if after.starts_with("::") {
            return true;
        }
        let before = code[..at].trim_end();
        if before.ends_with("use") || before.ends_with("extern crate") {
            return true;
        }
    }
    false
}

fn check_l004(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    let code = &line.code;
    let mut from = 0;
    let mut hits: Vec<&str> = Vec::new();
    while let Some(at) = code[from..].find(" as ") {
        let at = from + at + 1; // position of the `as` word
        from = at + 2;
        if !token_at(code, at, "as") {
            continue;
        }
        let after = code[at + 2..].trim_start();
        for ty in NUMERIC_TYPES {
            if token_at(after, 0, ty) {
                hits.push(ty);
                break;
            }
        }
    }
    if !hits.is_empty() && !is_waived(lines, idx, Rule::L004) {
        for ty in hits {
            diags.push(Diagnostic {
                rule: Rule::L004,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`as {ty}` cast can silently truncate or saturate in a DSP hot \
                     path; use a checked/documented conversion or waive with \
                     `// lint:allow(as-cast): <why lossless>`"
                ),
            });
        }
    }
}

fn check_l005(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    for token in WALL_CLOCK_TOKENS {
        if line.code.contains(token) && !is_waived(lines, idx, Rule::L005) {
            diags.push(Diagnostic {
                rule: Rule::L005,
                file: file.to_string(),
                line: line.number,
                message: format!(
                    "`{token}` breaks trace reproducibility in a simulation crate; \
                     take time from the simulation clock or the obs layer"
                ),
            });
        }
    }
}

fn check_l009(lines: &[SourceLine], idx: usize, file: &str, diags: &mut Vec<Diagnostic>) {
    let line = &lines[idx];
    if !line.code.contains("Ordering::") || is_waived(lines, idx, Rule::L009) {
        return;
    }
    let Some(reason) = ordering_justification(lines, idx) else {
        diags.push(Diagnostic {
            rule: Rule::L009,
            file: file.to_string(),
            line: line.number,
            message: "atomic `Ordering::` use without an `// ordering: <why>` \
                      justification comment on the line or directly above"
                .to_string(),
        });
        return;
    };
    if line.code.contains("Ordering::Relaxed")
        && !contains_token(&reason.to_ascii_lowercase(), "counter")
    {
        diags.push(Diagnostic {
            rule: Rule::L009,
            file: file.to_string(),
            line: line.number,
            message: "`Ordering::Relaxed` outside a counter: Relaxed creates no \
                      happens-before edges, so the justification must describe a \
                      standalone counter (or use Acquire/Release/SeqCst)"
                .to_string(),
        });
    }
}

/// The text after `// ordering:` on the line or on comment-only lines
/// directly above; `None` when absent or empty.
fn ordering_justification(lines: &[SourceLine], idx: usize) -> Option<String> {
    if let Some(r) = justification_in(&lines[idx].comment) {
        return Some(r);
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let above = &lines[k];
        if !above.code.trim().is_empty() || above.comment.is_empty() {
            break;
        }
        if let Some(r) = justification_in(&above.comment) {
            return Some(r);
        }
    }
    None
}

fn justification_in(comment: &str) -> Option<String> {
    let at = comment.find("ordering:")?;
    let reason = comment[at + "ordering:".len()..].trim();
    (!reason.is_empty()).then(|| reason.to_string())
}

/// Item keywords that need docs when `pub` at the crate-root top level.
const DOC_ITEMS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

fn check_l006(lines: &[SourceLine], file: &str, diags: &mut Vec<Diagnostic>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || line.depth != 0 {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        // `pub use` re-exports inherit upstream docs; `pub(crate)` and
        // friends are not part of the public API.
        let rest = rest.trim_start();
        let keyword_ok = DOC_ITEMS.iter().any(|kw| {
            rest.strip_prefix(kw)
                .is_some_and(|after| after.starts_with([' ', '<', '(']))
                || rest
                    .strip_prefix("unsafe ")
                    .map(str::trim_start)
                    .and_then(|r| r.strip_prefix(kw))
                    .is_some_and(|after| after.starts_with(' '))
        });
        if !keyword_ok {
            continue;
        }
        if has_doc_above(lines, idx) || is_waived(lines, idx, Rule::L006) {
            continue;
        }
        diags.push(Diagnostic {
            rule: Rule::L006,
            file: file.to_string(),
            line: line.number,
            message: "public item in a crate root without `///` docs".to_string(),
        });
    }
}

/// Walks upward over attributes and blank lines looking for a doc
/// comment attached to the item at `idx`.
fn has_doc_above(lines: &[SourceLine], idx: usize) -> bool {
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let line = &lines[k];
        let code = line.code.trim();
        let comment = line.comment.trim_start();
        if comment.starts_with("///") {
            return true;
        }
        // Attribute lines (including multi-line attribute tails) and
        // blanks are transparent; anything else ends the search.
        let attr_like = code.starts_with("#[") || code.ends_with(']') || code.ends_with(',');
        if code.is_empty() || attr_like {
            continue;
        }
        return false;
    }
    false
}

/// L003 manifest check: `Cargo.toml` dependencies of a lower-layer
/// crate must not include upper-layer crates.
pub fn check_manifest_layering(
    class: CrateClass,
    manifest_path: &str,
    dependencies: &[String],
) -> Vec<Diagnostic> {
    if !class.lower_layer {
        return Vec::new();
    }
    dependencies
        .iter()
        .filter(|dep| UPPER_LAYER.contains(&dep.as_str()))
        .map(|dep| Diagnostic {
            rule: Rule::L003,
            file: manifest_path.to_string(),
            line: 0,
            message: format!(
                "Cargo.toml dependency on `{dep}` from a lower-layer crate breaks \
                 the phy/bloom/channel/frame/traffic < mac/carpool/cli/bench layering"
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    /// Classes used by the fixtures below.
    fn lib_class() -> CrateClass {
        classify("carpool-frame")
    }
    fn dsp_class() -> CrateClass {
        classify("carpool-phy")
    }
    fn tool_class() -> CrateClass {
        classify("carpool-cli")
    }

    fn check(class: CrateClass, src: &str) -> Vec<Diagnostic> {
        check_lines(class, false, "fix.rs", &scan_source(src))
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn l001_flags_each_panicking_call() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n\
                   fn g(x: Option<u8>) { x.expect(\"m\"); }\n\
                   fn h() { panic!(\"no\"); }\n\
                   fn k() { unreachable!() }\n";
        let diags = check(lib_class(), src);
        assert_eq!(rules_of(&diags), [Rule::L001; 4]);
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            [1, 2, 3, 4]
        );
    }

    #[test]
    fn l001_waiver_on_line_or_above_is_honored() {
        let on_line = "fn f() { x.unwrap(); } // lint:allow(panic): checked above\n";
        assert!(check(lib_class(), on_line).is_empty());
        let above = "// lint:allow(panic): slot exists by construction\n\
                     fn f() { x.unwrap(); }\n";
        assert!(check(lib_class(), above).is_empty());
    }

    #[test]
    fn l001_waiver_without_reason_is_ignored() {
        let src = "fn f() { x.unwrap(); } // lint:allow(panic):\n";
        assert_eq!(rules_of(&check(lib_class(), src)), [Rule::L001]);
        let wrong_key = "fn f() { x.unwrap(); } // lint:allow(print): wrong rule\n";
        assert_eq!(rules_of(&check(lib_class(), wrong_key)), [Rule::L001]);
    }

    #[test]
    fn l001_test_code_is_exempt() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); panic!(\"fixture\"); }\n\
                   }\n";
        assert!(check(lib_class(), src).is_empty());
    }

    #[test]
    fn l001_comments_and_strings_do_not_fire() {
        let src = "// calls unwrap() and panic! in prose\n\
                   fn f() -> &'static str { \"panic! .unwrap()\" }\n";
        assert!(check(lib_class(), src).is_empty());
    }

    #[test]
    fn l002_print_macros_only_in_libraries() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        let diags = check(lib_class(), src);
        assert_eq!(rules_of(&diags), [Rule::L002, Rule::L002]);
        // A tool crate (cli/bench/lint) may print freely.
        assert!(check(tool_class(), src).is_empty());
    }

    #[test]
    fn l002_waiver_honored() {
        let src = "fn f() { println!(\"x\"); } // lint:allow(print): startup banner\n";
        assert!(check(lib_class(), src).is_empty());
    }

    #[test]
    fn l003_upper_layer_references_flagged_with_word_boundaries() {
        let class = classify("carpool-channel");
        assert!(class.lower_layer);
        let src = "use carpool_mac::Schedule;\n";
        assert_eq!(rules_of(&check(class, src)), [Rule::L003]);
        let qualified = "fn f() { let x = carpool_cli::main(); }\n";
        assert_eq!(rules_of(&check(class, qualified)), [Rule::L003]);
        // Sibling lower-layer and obs imports are fine, and `carpool`
        // must not match inside `carpool_obs`.
        let ok = "use carpool_obs::Obs;\nuse carpool_bloom::Filter;\n";
        assert!(check(class, ok).is_empty());
    }

    #[test]
    fn l003_par_pool_is_a_lower_layer_crate() {
        let class = classify("carpool-par");
        assert!(class.lower_layer && class.library && class.deterministic);
        let deps = vec!["carpool-mac".to_string()];
        let diags = check_manifest_layering(class, "crates/par/Cargo.toml", &deps);
        assert_eq!(rules_of(&diags), [Rule::L003]);
    }

    #[test]
    fn l003_manifest_dependencies_checked() {
        let deps = vec!["carpool-obs".to_string(), "carpool-mac".to_string()];
        let diags =
            check_manifest_layering(classify("carpool-frame"), "crates/frame/Cargo.toml", &deps);
        assert_eq!(rules_of(&diags), [Rule::L003]);
        assert!(diags[0].message.contains("carpool-mac"));
        // Upper-layer crates may depend on whatever they like.
        assert!(check_manifest_layering(classify("carpool-mac"), "m", &deps).is_empty());
    }

    #[test]
    fn l004_numeric_casts_need_waivers_in_dsp_crates() {
        let src = "fn f(x: f64) -> u8 { x as u8 }\n";
        assert_eq!(rules_of(&check(dsp_class(), src)), [Rule::L004]);
        // Same code in a non-audited crate passes.
        assert!(check(classify("carpool-traffic"), src).is_empty());
        let waived = "// lint:allow(as-cast): x is clamped to [0, 255] above\n\
                      fn f(x: f64) -> u8 { x as u8 }\n";
        assert!(check(dsp_class(), waived).is_empty());
    }

    #[test]
    fn l004_non_numeric_casts_are_fine() {
        let src = "fn f(x: &dyn E) { let y = x as &dyn Any; let p = v as *const u8; }\n";
        // `as *const u8` is a pointer cast, not a numeric narrowing —
        // the token after `as` is `*`, not a numeric type.
        assert!(check(dsp_class(), src).is_empty());
    }

    #[test]
    fn l005_wall_clock_flagged_in_simulation_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_of(&check(lib_class(), src)), [Rule::L005]);
        // obs owns the profiling clock; tool crates may also use it.
        assert!(check(classify("carpool-obs"), src).is_empty());
        assert!(check(tool_class(), src).is_empty());
        let waived = "fn f() { let t = Instant::now(); } // lint:allow(wall-clock): profiling\n";
        assert!(check(lib_class(), waived).is_empty());
    }

    #[test]
    fn l006_pub_items_in_crate_root_need_docs() {
        let src = "pub mod alpha;\n\
                   /// Documented.\n\
                   pub mod beta;\n\
                   pub use alpha::Thing;\n\
                   pub(crate) fn helper() {}\n\
                   pub fn orphan() {}\n";
        let diags = check_lines(lib_class(), true, "lib.rs", &scan_source(src));
        assert_eq!(rules_of(&diags), [Rule::L006, Rule::L006]);
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            [1, 6],
            "undocumented mod and fn; pub use / pub(crate) exempt"
        );
        // Non-root files and non-library crates are exempt.
        assert!(check_lines(lib_class(), false, "x.rs", &scan_source(src)).is_empty());
        assert!(check_lines(tool_class(), true, "main.rs", &scan_source(src)).is_empty());
    }

    #[test]
    fn l006_docs_seen_through_attributes() {
        let src = "/// Documented.\n\
                   #[derive(Debug, Clone)]\n\
                   pub struct S;\n";
        assert!(check_lines(lib_class(), true, "lib.rs", &scan_source(src)).is_empty());
    }

    #[test]
    fn l009_ordering_needs_justification() {
        let class = classify("carpool-par");
        assert!(class.atomics_audited);
        let bare = "fn f() { c.fetch_add(1, Ordering::SeqCst); }\n";
        assert_eq!(rules_of(&check(class, bare)), [Rule::L009]);
        let justified = "// ordering: SeqCst — publishes the result slot to the join\n\
                         fn f() { c.store(1, Ordering::SeqCst); }\n";
        assert!(check(class, justified).is_empty());
        // Other crates are not audited.
        assert!(check(lib_class(), bare).is_empty());
    }

    #[test]
    fn l009_relaxed_only_for_counters() {
        let class = classify("carpool-par");
        let counter = "// ordering: Relaxed — work-claim counter only\n\
                       fn f() { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(check(class, counter).is_empty());
        let not_counter = "fn f() { c.store(1, Ordering::Relaxed); } // ordering: fast\n";
        assert_eq!(rules_of(&check(class, not_counter)), [Rule::L009]);
        let waived =
            "fn f() { c.load(Ordering::Relaxed); } // lint:allow(atomic-ordering): bench-only\n";
        assert!(check(class, waived).is_empty());
    }

    #[test]
    fn rule_from_id_round_trips() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("l008"), Some(Rule::L008));
        assert_eq!(Rule::from_id("7"), Some(Rule::L007));
        assert_eq!(Rule::from_id("L016"), None);
        assert_eq!(Rule::from_id("nope"), None);
    }

    #[test]
    fn waiver_parser_requires_reason() {
        assert_eq!(
            waivers_in_comment("// lint:allow(panic): index checked above"),
            ["panic"]
        );
        assert!(waivers_in_comment("// lint:allow(panic)").is_empty());
        assert!(waivers_in_comment("// lint:allow(panic):   ").is_empty());
        assert_eq!(
            waivers_in_comment("// lint:allow(as-cast): fits, lint:allow(panic): safe"),
            ["as-cast", "panic"]
        );
    }
}
