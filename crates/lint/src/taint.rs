//! L014 determinism taint: nondeterminism sources that can reach the
//! outputs of byte-identical crates.
//!
//! The workspace contract is figures and traces byte-identical at any
//! thread/shard count (`CrateClass::ordered_iteration`). L008 already
//! bans hash-container *tokens* in those crates, but its token scan is
//! blind to two things this pass closes:
//!
//! 1. **Indirect hash iteration** — `for (k, v) in &self.map` carries
//!    no `HashMap` token; the type lives on the field declaration. This
//!    pass tracks, per file, every identifier bound to a
//!    `HashMap`/`HashSet`/`RandomState` (struct fields, typed bindings,
//!    `let x = HashMap::new()`), then flags iteration over any tracked
//!    name.
//! 2. **Taint entering from outside** — a clock read or hash iteration
//!    in a *non*-byte-identical crate still breaks determinism when a
//!    byte-identical crate transitively calls it. Sources are therefore
//!    flagged when their containing fn either lives in an
//!    `ordered_iteration` crate or is reachable (over the
//!    [`CallGraph`]) from a non-test fn of one; the diagnostic prints
//!    the connecting call chain.
//!
//! Source kinds beyond hash iteration: `Instant::now`/`SystemTime`
//! clock reads, `thread::current`/`ThreadId` identity,
//! pointer-to-address casts (`.as_ptr() as usize`, `as *const` +
//! `as usize`, `addr_of!`), and float accumulation under a lock inside
//! thread-spawning fns (unordered parallel reduction). Waive per site
//! with `// lint:allow(det): <reason>`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::dataflow::idents_of;
use crate::items::{FileRecord, Section};
use crate::rules::{contains_token, line_waived, token_at, Diagnostic, Rule};

/// Container types whose iteration order is randomized.
const HASH_TYPES: [&str; 3] = ["HashMap", "HashSet", "RandomState"];

/// Methods that observe a container's iteration order when called on a
/// tracked identifier.
const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Taint-pass statistics surfaced in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaintStats {
    /// Non-test `src/` fns in byte-identical crates (the BFS roots).
    pub det_fns: usize,
    /// Fns reachable from those roots, roots included.
    pub det_reachable_fns: usize,
    /// Nondeterminism source sites found in scope (waived included).
    pub det_sources: usize,
}

/// One detected nondeterminism source on a line.
struct Source {
    /// 0-based line index.
    idx: usize,
    /// Short kind tag (`hash-iter`, `clock`, ...).
    kind: &'static str,
    /// What was matched, for the message.
    what: String,
}

/// L014 determinism taint over the parsed workspace and its call graph.
pub fn check_l014(files: &[FileRecord], graph: &CallGraph) -> (Vec<Diagnostic>, TaintStats) {
    let mut stats = TaintStats::default();

    // Roots: every non-test src fn of a byte-identical crate.
    let mut roots: Vec<usize> = Vec::new();
    for (at, node) in graph.nodes.iter().enumerate() {
        let Some(file) = files.get(node.file) else {
            continue;
        };
        if file.class.ordered_iteration && matches!(file.section, Section::Src) && !node.in_test {
            roots.push(at);
        }
    }
    stats.det_fns = roots.len();
    let parents = graph.reachable(&roots);
    stats.det_reachable_fns = parents.len();

    // (file, item) → node index, for chain lookups.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (at, node) in graph.nodes.iter().enumerate() {
        node_of.insert((node.file, node.item), at);
    }

    let mut diags = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if !matches!(file.section, Section::Src) {
            continue;
        }
        let tracked = tracked_hash_idents(file);
        for (item_idx, item) in file.items.fns.iter().enumerate() {
            if item.in_test || item.body_start == 0 {
                continue;
            }
            // In scope when the fn is itself byte-identical code, or a
            // byte-identical fn transitively calls it.
            let node = node_of.get(&(file_idx, item_idx)).copied();
            let context = if file.class.ordered_iteration {
                format!("in byte-identical crate fn `{}`", item.name)
            } else {
                match node.filter(|n| parents.contains_key(n)) {
                    Some(n) => format!(
                        "reachable from byte-identical crate code (call chain: {})",
                        graph.chain(n, &parents).join(" -> ")
                    ),
                    None => continue,
                }
            };
            let spawning = fn_spawns_threads(file, item);
            for source in fn_sources(file, item, &tracked, spawning) {
                stats.det_sources += 1;
                if line_waived(&file.lines, source.idx, Rule::L014.waiver_key()) {
                    continue;
                }
                let Some(line) = file.lines.get(source.idx) else {
                    continue;
                };
                diags.push(Diagnostic {
                    rule: Rule::L014,
                    file: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "{} {context}; outputs must stay byte-identical across \
                         runs and thread counts — remove the source or waive with \
                         `// lint:allow(det): <why the value never reaches output>` \
                         [{}]",
                        source.what, source.kind
                    ),
                });
            }
        }
    }
    (diags, stats)
}

/// Identifiers bound to a hash container anywhere in this file's
/// non-test code: `let [mut] x = HashMap::new()`, typed bindings and
/// struct fields (`x: HashMap<...>`).
fn tracked_hash_idents(file: &FileRecord) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        if !HASH_TYPES.iter().any(|t| contains_token(code, t)) {
            continue;
        }
        // `let [mut] name ... = ... HashMap ...`
        if let Some(after) = strip_word(code.trim_start(), "let") {
            let after = strip_word(after.trim_start(), "mut").unwrap_or(after);
            if let Some(name) = idents_of(after).into_iter().next() {
                tracked.insert(name);
            }
        }
        // `name: HashMap<...>` (field declaration or typed binding):
        // the identifier directly before a non-path `:` whose type side
        // names a hash container.
        let bytes = code.as_bytes();
        for at in 1..bytes.len() {
            if bytes[at] != b':'
                || bytes[at - 1] == b':'
                || bytes.get(at + 1) == Some(&b':')
                || !HASH_TYPES.iter().any(|t| contains_token(&code[at..], t))
            {
                continue;
            }
            let before = code[..at].trim_end();
            let name: String = before
                .chars()
                .rev()
                .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
                .collect::<Vec<char>>()
                .into_iter()
                .rev()
                .collect();
            if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                tracked.insert(name);
            }
        }
    }
    tracked
}

/// Whether the fn body spawns threads (precondition for `par-float`).
fn fn_spawns_threads(file: &FileRecord, item: &crate::items::FnItem) -> bool {
    body_lines(file, item)
        .any(|line| line.code.contains("spawn(") || line.code.contains("thread::scope"))
}

/// Non-test body lines of one fn.
fn body_lines<'f>(
    file: &'f FileRecord,
    item: &crate::items::FnItem,
) -> impl Iterator<Item = &'f crate::scanner::SourceLine> {
    let (from, to) = (item.decl_line, item.body_end);
    file.lines
        .iter()
        .filter(move |l| l.number >= from && l.number <= to && !l.in_test)
}

/// Scans one fn body for nondeterminism sources.
fn fn_sources(
    file: &FileRecord,
    item: &crate::items::FnItem,
    tracked: &BTreeSet<String>,
    spawning: bool,
) -> Vec<Source> {
    let mut out = Vec::new();
    for line in body_lines(file, item) {
        let idx = line.number - 1;
        let code = line.code.as_str();
        if let Some(name) = hash_iteration_over(code, tracked) {
            out.push(Source {
                idx,
                kind: "hash-iter",
                what: format!(
                    "iteration over `{name}` (bound to a hash container in this \
                     file) observes randomized hash order"
                ),
            });
        }
        for token in ["Instant::now", "SystemTime"] {
            if code.contains(token) {
                out.push(Source {
                    idx,
                    kind: "clock",
                    what: format!("`{token}` reads the wall clock"),
                });
            }
        }
        if code.contains("thread::current") || contains_token(code, "ThreadId") {
            out.push(Source {
                idx,
                kind: "thread-id",
                what: "thread identity varies per run and schedule".to_string(),
            });
        }
        if ptr_addr_observed(code) {
            out.push(Source {
                idx,
                kind: "ptr-addr",
                what: "a pointer address is observed as an integer (ASLR makes it \
                       differ per run)"
                    .to_string(),
            });
        }
        if spawning && code.contains(".lock()") && code.contains("+=") {
            out.push(Source {
                idx,
                kind: "par-float",
                what: "accumulation under a lock in a thread-spawning fn depends \
                       on arrival order (non-associative for floats)"
                    .to_string(),
            });
        }
    }
    out
}

/// The tracked identifier this line iterates over, if any: the target
/// of a `for ... in <expr>` naming a tracked ident, or a direct
/// order-observing method call on one.
fn hash_iteration_over(code: &str, tracked: &BTreeSet<String>) -> Option<String> {
    if tracked.is_empty() {
        return None;
    }
    if let Some(expr) = for_loop_expr(code) {
        for name in idents_of(expr) {
            if tracked.contains(&name) {
                return Some(name);
            }
        }
    }
    for name in tracked {
        let mut from = 0usize;
        while let Some(at) = code[from..].find(name.as_str()) {
            let at = from + at;
            from = at + name.len();
            if !token_at(code, at, name) {
                continue;
            }
            let rest = &code[at + name.len()..];
            if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
                return Some(name.clone());
            }
        }
    }
    None
}

/// The iterated expression of a `for <pat> in <expr> {` line.
fn for_loop_expr(code: &str) -> Option<&str> {
    let for_at = find_word(code, "for")?;
    let rest = &code[for_at + 3..];
    let in_at = find_word(rest, "in")?;
    let expr = &rest[in_at + 2..];
    Some(expr.split('{').next().unwrap_or(expr))
}

/// Whether the line converts a pointer into an observable integer.
fn ptr_addr_observed(code: &str) -> bool {
    let to_usize = code.contains(" as usize");
    let ptr_expr =
        code.contains(".as_ptr()") || code.contains("as *const") || code.contains("as *mut");
    (ptr_expr && to_usize) || code.contains("addr_of!")
}

/// First word-bounded occurrence of `word` in `text`.
fn find_word(text: &str, word: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(at) = text[from..].find(word) {
        let at = from + at;
        from = at + 1;
        if token_at(text, at, word) {
            return Some(at);
        }
    }
    None
}

/// Strips a leading word-bounded keyword; `None` when absent.
fn strip_word<'t>(text: &'t str, word: &str) -> Option<&'t str> {
    let rest = text.strip_prefix(word)?;
    if rest
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return None;
    }
    Some(rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::classify;

    fn record(path: &str, crate_name: &str, src: &str) -> FileRecord {
        FileRecord::parse(path, crate_name, Section::Src, classify(crate_name), src)
    }

    #[test]
    fn field_bound_hash_iteration_is_caught() {
        // The L008 gap: the iteration line carries no HashMap token.
        let files = vec![record(
            "crates/mac/src/sim.rs",
            "carpool-mac",
            "struct S { map: std::collections::HashMap<u8, u8> } \
             // lint:allow(hash-iter): presence waived, iteration is the bug\n\
             impl S {\n    fn f(&self) { for (k, v) in &self.map { let _ = (k, v); } }\n}\n",
        )];
        let graph = CallGraph::build(&files);
        let (diags, stats) = check_l014(&files, &graph);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("hash-iter"));
        assert!(stats.det_sources >= 1);
    }

    #[test]
    fn clock_read_reachable_from_det_crate_is_caught_with_chain() {
        let files = vec![
            record(
                "crates/mac/src/sim.rs",
                "carpool-mac",
                "pub fn run() { carpool_cli::stamp(); }\n",
            ),
            record(
                "crates/cli/src/lib.rs",
                "carpool-cli",
                "pub fn stamp() { let _ = std::time::Instant::now(); }\n",
            ),
        ];
        let graph = CallGraph::build(&files);
        let (diags, _) = check_l014(&files, &graph);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("call chain"));
        assert!(diags[0].message.contains("run"));
    }

    #[test]
    fn unreachable_and_waived_sources_pass() {
        let files = vec![record(
            "crates/cli/src/lib.rs",
            "carpool-cli",
            "pub fn stamp() { let _ = std::time::Instant::now(); }\n",
        )];
        let graph = CallGraph::build(&files);
        let (diags, _) = check_l014(&files, &graph);
        assert!(diags.is_empty(), "{diags:?}");

        let waived = vec![record(
            "crates/obs/src/span.rs",
            "carpool-obs",
            "fn t() { let _ = Instant::now(); } \
             // lint:allow(det): span durations never enter figure payloads\n",
        )];
        let graph = CallGraph::build(&waived);
        let (diags, stats) = check_l014(&waived, &graph);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.det_sources, 1); // found, waived
    }
}
