//! Comment- and string-aware source scanner.
//!
//! Rust token rules that matter here, without pulling in a real parser:
//! line comments (`//`), nested block comments (`/* /* */ */`), string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! depth, plus `b`-prefixed forms), char literals (`'a'`, `'\n'`) and
//! lifetimes (`'a`, which must *not* open a char literal). The scanner
//! folds a file into per-line records where `code` holds only real
//! code (string/char contents blanked, comments removed) and `comment`
//! holds the comment text, so rules can match tokens in `code` without
//! ever being fooled by a `panic!` inside a doc comment or a format
//! string, and waivers can be read from `comment`.

/// One scanned source line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceLine {
    /// 1-based line number.
    pub number: usize,
    /// Code text with comments removed and string/char literal
    /// contents blanked (delimiters are kept, so `"x"` becomes `""`).
    pub code: String,
    /// Concatenated comment text on this line, including the `//`,
    /// `///` or `/*` markers.
    pub comment: String,
    /// Whether the line sits inside `#[cfg(test)]` / `#[test]` marked
    /// code (attribute line and block included).
    pub in_test: bool,
    /// Brace depth at the start of the line (0 = module top level).
    pub depth: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits `source` into scanned lines. The tokenizer state carries
/// across lines, so multi-line strings and block comments are handled.
pub fn scan_source(source: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut state = State::Code;
    let mut code = String::new();
    let mut comment = String::new();
    let mut number = 1usize;

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(SourceLine {
                number,
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
                depth: 0,
            });
            number += 1;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    comment.push_str("/*");
                    // A block comment is still a token separator.
                    code.push(' ');
                    i += 2;
                } else if let Some(hashes) = raw_string_start(&chars, i, &code) {
                    // `r"`, `r#"`, `br##"` … — consume the prefix up to
                    // and including the opening quote.
                    let prefix_len = raw_prefix_len(&chars, i) + hashes as usize + 1;
                    code.push('"');
                    state = State::RawStr(hashes);
                    i += prefix_len;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == '\'' {
                    match char_literal_kind(&chars, i) {
                        CharKind::Literal => {
                            code.push('\'');
                            state = State::Char;
                            i += 1;
                        }
                        CharKind::Lifetime => {
                            code.push('\'');
                            i += 1;
                        }
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Consume the escape, but keep a string-continuation
                    // `\` at end of line from swallowing the newline —
                    // the top of the loop must still emit the line
                    // record or every later line number shifts by one.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(SourceLine {
            number,
            code,
            comment,
            in_test: false,
            depth: 0,
        });
    }
    mark_depth_and_tests(&mut lines);
    lines
}

const fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Length of the `r` / `br` prefix at `i` if one is present.
fn raw_prefix_len(chars: &[char], i: usize) -> usize {
    if chars[i] == 'b' {
        2
    } else {
        1
    }
}

/// If a raw string literal starts at `i`, returns its hash count.
fn raw_string_start(chars: &[char], i: usize, code: &str) -> Option<u32> {
    let c = chars[i];
    let start = if c == 'r' {
        i + 1
    } else if c == 'b' && chars.get(i + 1) == Some(&'r') {
        i + 2
    } else {
        return None;
    };
    // Reject identifiers that merely end in r (e.g. `attr"…"` is not
    // valid Rust anyway, but don't let it flip the tokenizer state).
    if code.chars().last().is_some_and(is_ident_char) {
        return None;
    }
    let mut hashes = 0u32;
    let mut k = start;
    while chars.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    (chars.get(k) == Some(&'"')).then_some(hashes)
}

/// Whether the quote at `i` is followed by enough hashes to close a raw
/// string with `hashes` hashes.
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

enum CharKind {
    Literal,
    Lifetime,
}

/// Disambiguates a `'` in code position: char literal or lifetime?
fn char_literal_kind(chars: &[char], i: usize) -> CharKind {
    match chars.get(i + 1) {
        // '\n', '\u{…}' — escapes only appear in char literals.
        Some('\\') => CharKind::Literal,
        // 'x' followed by a closing quote is a char literal; anything
        // else ident-like ('a in generics, loop labels) is a lifetime.
        Some(&c) if is_ident_char(c) => {
            if chars.get(i + 2) == Some(&'\'') {
                CharKind::Literal
            } else {
                CharKind::Lifetime
            }
        }
        // Punctuation chars: '(', ';' … are valid char literals.
        Some(_) => CharKind::Literal,
        None => CharKind::Lifetime,
    }
}

/// Second pass: assigns brace depth to each line and marks
/// `#[cfg(test)]` / `#[test]` regions (attribute line through the end
/// of the attributed block).
fn mark_depth_and_tests(lines: &mut [SourceLine]) {
    let mut depth = 0usize;
    // Depth at which a test attribute was seen, waiting for its block.
    let mut pending: Option<usize> = None;
    // While set, lines are test code until depth drops below this.
    let mut active: Option<usize> = None;

    for line in lines.iter_mut() {
        line.depth = depth;
        let mut in_test = active.is_some() || pending.is_some();
        for c in line.code.chars() {
            if c == '{' {
                depth += 1;
                if pending == Some(depth.saturating_sub(1)) && active.is_none() {
                    active = Some(depth);
                    pending = None;
                    in_test = true;
                }
            } else if c == '}' {
                depth = depth.saturating_sub(1);
                if active.is_some_and(|t| depth < t) {
                    active = None;
                }
            }
        }
        if active.is_none() && (line.code.contains("#[cfg(test)]") || line.code.contains("#[test]"))
        {
            pending = Some(depth);
            in_test = true;
        }
        line.in_test = in_test || active.is_some();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped() {
        let lines = scan_source("let x = 1; // panic!(\"no\")\n");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert!(lines[0].comment.contains("panic!"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\nc /* open\nd inside\ne */ f\n";
        let code = code_of(src);
        assert_eq!(code[0].replace(' ', ""), "ab");
        assert_eq!(code[1].replace(' ', ""), "c");
        assert_eq!(code[2].replace(' ', ""), "");
        assert_eq!(code[3].replace(' ', ""), "f");
    }

    #[test]
    fn string_contents_are_blanked() {
        let code = code_of("let s = \"unwrap() // not a comment\"; x\n");
        assert_eq!(code[0], "let s = \"\"; x");
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let code = code_of("let s = \"a\\\"panic!\\\"b\"; y\n");
        assert_eq!(code[0], "let s = \"\"; y");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let code = code_of("let s = r#\"has \" quote and panic!\"# ; z\n");
        assert_eq!(code[0], "let s = \"\" ; z");
        let code = code_of("let s = br##\"bytes \"# still\"## ; w\n");
        assert_eq!(code[0], "let s = \"\" ; w");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let code = code_of("let c = '\"'; let q: &'static str = \"s\"; let n = '\\n';\n");
        assert_eq!(
            code[0],
            "let c = ''; let q: &'static str = \"\"; let n = '';"
        );
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "\
fn real() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { x.unwrap(); }\n\
}\n\
fn also_real() {}\n";
        let lines = scan_source(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[4].in_test);
        assert!(lines[5].in_test);
        assert!(!lines[6].in_test, "code after the test mod is live again");
    }

    #[test]
    fn depth_tracks_braces() {
        let lines = scan_source("mod m {\n    fn f() {\n        x;\n    }\n}\n");
        let depths: Vec<usize> = lines.iter().map(|l| l.depth).collect();
        assert_eq!(depths, vec![0, 1, 2, 2, 1]);
    }

    #[test]
    fn string_continuation_backslash_keeps_line_numbers() {
        // A `\` at end of line inside a string continues the literal but
        // must NOT swallow the newline: line numbers after the literal
        // have to stay aligned with the physical file.
        let src = "let s = \"one \\\n    two\";\nafter();\n";
        let lines = scan_source(src);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2].number, 3);
        assert_eq!(lines[2].code, "after();");
    }

    #[test]
    fn multiline_string_keeps_state() {
        let src = "let s = \"line one\nline panic!() two\"; real()\n";
        let code = code_of(src);
        assert_eq!(code[0], "let s = \"");
        assert_eq!(code[1], "\"; real()");
    }
}
