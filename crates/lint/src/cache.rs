//! Incremental scan cache for the lint driver (`.lint-cache.json`).
//!
//! The cache makes warm lint runs fast without ever changing what a
//! run reports: reuse is keyed by content hashes, never timestamps,
//! and any mismatch falls back to scanning. Two levels of reuse:
//!
//! 1. **Full-report fast path** — when the rule-set fingerprint and
//!    every file hash match the cached run, the entire scan result
//!    (diagnostics, analysis statistics, per-rule timings) is
//!    reconstructed without parsing a single source file. This is what
//!    keeps the warm gate sub-second as rules accumulate.
//! 2. **Per-file line-rule reuse** — when only some files changed, the
//!    line rules rerun on changed files only and unchanged files replay
//!    their cached diagnostics. The interprocedural, flow, taint, and
//!    shard-protocol passes always rerun: their results are global
//!    functions of the whole workspace, not of any one file.
//!
//! Invalidation keys: the schema tag, the rule-set fingerprint
//! ([`rules_fingerprint`]: every rule's id, waiver key, summary, and
//! full explain text, plus the hot-path root specs), the per-file
//! FNV-1a content hashes, and each crate's `Cargo.toml` hash (crate
//! classification comes from the manifest, so a manifest edit drops
//! reuse for that crate's files). `--strict-indexing` and `--graph`
//! runs bypass the cache entirely — their mode-dependent output must
//! never be replayed into a default run.
//!
//! Byte-identity contract (tested in `tests/analysis_fixtures.rs`): a
//! warm run's human report and SARIF export are byte-identical to a
//! cold `--no-cache` run's. Wall-clock fields (`elapsed_ms`, re-measured
//! timings in the JSON report) are inherently per-run and excluded.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::baseline::{json_string, parse_json, JsonValue};
use crate::interproc;
use crate::rules::{Diagnostic, Rule};
use crate::{AnalysisStats, ScanReport};

/// Schema tag checked on load; bump on any layout change.
pub const CACHE_SCHEMA: &str = "carpool-lint-cache/v1";

/// Cache file name, resolved relative to the workspace root.
pub const CACHE_FILE: &str = ".lint-cache.json";

/// FNV-1a 64-bit hash — stable, dependency-free, fast enough that
/// hashing the whole workspace is a rounding error next to one parse.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fnv1a`] rendered as a fixed-width hex string (hashes must survive
/// the JSON round trip exactly; f64 cannot carry 64 bits).
pub fn hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// Fingerprint of the rule set itself. Any change to what a rule
/// detects ships with a change to its documented contract (summary or
/// explain text) or to the hot-path root table, so hashing those — plus
/// the schema tag — invalidates the cache across linter upgrades.
pub fn rules_fingerprint() -> String {
    let mut acc = String::from(CACHE_SCHEMA);
    for rule in Rule::ALL {
        for part in [rule.id(), rule.waiver_key(), rule.summary(), rule.explain()] {
            acc.push('\u{1f}');
            acc.push_str(part);
        }
    }
    for root in interproc::HOT_ROOTS {
        acc.push('\u{1f}');
        acc.push_str(root);
    }
    hash_hex(acc.as_bytes())
}

/// A cached scan result: everything needed to reconstruct the
/// [`ScanReport`] of the run that wrote it (minus the graph dump, which
/// only `--graph` runs build — and those bypass the cache).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CachedReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates scanned.
    pub crates_scanned: usize,
    /// Per-rule timings from the producing run (millisecond, 3 decimal
    /// places — the precision every renderer uses).
    pub rule_timings_ms: BTreeMap<String, f64>,
    /// All diagnostics, in the report's deterministic order.
    pub diagnostics: Vec<Diagnostic>,
    /// Symbol-aware analysis statistics.
    pub analysis: AnalysisStats,
}

impl CachedReport {
    /// Snapshot of `report` for caching (drops the graph dump).
    pub fn from_report(report: &ScanReport) -> CachedReport {
        CachedReport {
            files_scanned: report.files_scanned,
            crates_scanned: report.crates_scanned,
            rule_timings_ms: report.rule_timings_ms.clone(),
            diagnostics: report.diagnostics.clone(),
            analysis: AnalysisStats {
                graph_dump: None,
                ..report.analysis.clone()
            },
        }
    }

    /// Rebuilds the [`ScanReport`] this snapshot was taken from.
    pub fn to_report(&self) -> ScanReport {
        ScanReport {
            diagnostics: self.diagnostics.clone(),
            files_scanned: self.files_scanned,
            crates_scanned: self.crates_scanned,
            rule_timings_ms: self.rule_timings_ms.clone(),
            analysis: self.analysis.clone(),
        }
    }
}

/// The on-disk cache: file hashes, per-file line-rule diagnostics, and
/// the full result of the last complete scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintCache {
    /// [`rules_fingerprint`] of the linter that wrote the cache.
    pub rules_hash: String,
    /// Relative path → FNV-1a content hash (hex) for every scanned
    /// `.rs` file *and* every crate `Cargo.toml`.
    pub files: BTreeMap<String, String>,
    /// Relative path → line-rule diagnostics for that file. Absence of
    /// a hashed file here means it had none (zero is cached too).
    pub line_diags: BTreeMap<String, Vec<Diagnostic>>,
    /// Full result of the producing scan, for the warm fast path.
    pub report: Option<CachedReport>,
}

impl LintCache {
    /// Loads the cache at `path`. Any failure — missing file, malformed
    /// JSON, wrong schema, unknown rule id — returns `None`: a cache is
    /// an accelerator, never an error source.
    pub fn load(path: &Path) -> Option<LintCache> {
        let text = std::fs::read_to_string(path).ok()?;
        LintCache::from_json(&text).ok()
    }

    /// Writes the cache best-effort; a failed write degrades the next
    /// run to cold, nothing more.
    pub fn store(&self, path: &Path) {
        let _ = std::fs::write(path, self.to_json());
    }

    /// Serializes the cache as schema-tagged JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"schema\": \"{CACHE_SCHEMA}\",");
        let _ = writeln!(out, "  \"rules_hash\": \"{}\",", self.rules_hash);
        out.push_str("  \"files\": {");
        let mut first = true;
        for (rel, hash) in &self.files {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: \"{hash}\"", json_string(rel));
        }
        out.push_str("\n  },\n  \"line_diags\": {");
        let mut first = true;
        for (rel, diags) in &self.line_diags {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: [", json_string(rel));
            for (k, d) in diags.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str("\n      ");
                write_diag(&mut out, d);
            }
            out.push_str("\n    ]");
        }
        out.push_str("\n  },\n  \"report\": ");
        match &self.report {
            None => out.push_str("null"),
            Some(rep) => write_report(&mut out, rep),
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses cache JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem; callers
    /// treat any error as "no cache".
    pub fn from_json(text: &str) -> Result<LintCache, String> {
        let value = parse_json(text)?;
        let top = as_object(&value, "top level")?;
        match get(top, "schema") {
            Some(JsonValue::String(s)) if s == CACHE_SCHEMA => {}
            _ => return Err("missing or wrong schema tag".into()),
        }
        let mut cache = LintCache::default();
        match get(top, "rules_hash") {
            Some(JsonValue::String(s)) => cache.rules_hash = s.clone(),
            _ => return Err("missing rules_hash".into()),
        }
        for (rel, hash) in as_object(require(top, "files")?, "files")? {
            let JsonValue::String(h) = hash else {
                return Err(format!("files[{rel}] is not a string"));
            };
            cache.files.insert(rel.clone(), h.clone());
        }
        for (rel, diags) in as_object(require(top, "line_diags")?, "line_diags")? {
            let JsonValue::Array(items) = diags else {
                return Err(format!("line_diags[{rel}] is not an array"));
            };
            let parsed: Result<Vec<Diagnostic>, String> = items.iter().map(read_diag).collect();
            cache.line_diags.insert(rel.clone(), parsed?);
        }
        cache.report = match require(top, "report")? {
            JsonValue::Null => None,
            v => Some(read_report(v)?),
        };
        Ok(cache)
    }
}

fn write_diag(out: &mut String, d: &Diagnostic) {
    let _ = write!(
        out,
        "{{\"rule\": \"{}\", \"file\": {}, \"line\": {}, \"message\": {}}}",
        d.rule.id(),
        json_string(&d.file),
        d.line,
        json_string(&d.message)
    );
}

fn write_report(out: &mut String, rep: &CachedReport) {
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "    \"files_scanned\": {},\n    \"crates_scanned\": {},",
        rep.files_scanned, rep.crates_scanned
    );
    out.push_str("    \"rule_timings_ms\": {");
    let mut first = true;
    for (rule, ms) in &rep.rule_timings_ms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n      {}: {ms:.3}", json_string(rule));
    }
    out.push_str("\n    },\n    \"diagnostics\": [");
    for (k, d) in rep.diagnostics.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("\n      ");
        write_diag(out, d);
    }
    let a = &rep.analysis;
    out.push_str("\n    ],\n    \"analysis\": {\n");
    let _ = writeln!(
        out,
        "      \"functions\": {},\n      \"call_edges\": {},",
        a.functions, a.call_edges
    );
    out.push_str("      \"hot_roots_matched\": [");
    for (k, spec) in a.hot.roots_matched.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(spec));
    }
    let _ = writeln!(
        out,
        "],\n      \"hot_root_fns\": {},\n      \"hot_reachable_fns\": {},\n      \
         \"hot_indexing_sites\": {},",
        a.hot.root_nodes, a.hot.reachable_fns, a.hot.indexing_sites
    );
    let f = &a.flow;
    let _ = writeln!(
        out,
        "      \"alloc_sites\": {},\n      \"hot_alloc_sites\": {},\n      \
         \"budget_fns\": {},\n      \"budget_ops_checked\": {},\n      \
         \"f64_arith_lines\": {},\n      \"widening_ops\": {},\n      \
         \"narrowing_casts\": {},\n      \"unit_params\": {},",
        f.alloc_sites,
        f.hot_alloc_sites,
        f.budget_fns,
        f.budget_ops_checked,
        f.f64_arith_lines,
        f.widening_ops,
        f.narrowing_casts,
        f.unit_params
    );
    let _ = writeln!(
        out,
        "      \"det_fns\": {},\n      \"det_reachable_fns\": {},\n      \
         \"det_sources\": {},\n      \"shard_fns\": {}",
        a.taint.det_fns, a.taint.det_reachable_fns, a.taint.det_sources, a.shard_fns
    );
    out.push_str("    }\n  }");
}

fn read_diag(v: &JsonValue) -> Result<Diagnostic, String> {
    let o = as_object(v, "diagnostic")?;
    let rule_id = read_str(o, "rule")?;
    let rule = Rule::from_id(&rule_id).ok_or_else(|| format!("unknown rule '{rule_id}'"))?;
    Ok(Diagnostic {
        rule,
        file: read_str(o, "file")?,
        line: read_usize(o, "line")?,
        message: read_str(o, "message")?,
    })
}

fn read_report(v: &JsonValue) -> Result<CachedReport, String> {
    let o = as_object(v, "report")?;
    let mut rep = CachedReport {
        files_scanned: read_usize(o, "files_scanned")?,
        crates_scanned: read_usize(o, "crates_scanned")?,
        ..CachedReport::default()
    };
    for (rule, ms) in as_object(require(o, "rule_timings_ms")?, "rule_timings_ms")? {
        let JsonValue::Number(n) = ms else {
            return Err(format!("rule_timings_ms[{rule}] is not a number"));
        };
        rep.rule_timings_ms.insert(rule.clone(), *n);
    }
    let JsonValue::Array(items) = require(o, "diagnostics")? else {
        return Err("report.diagnostics is not an array".into());
    };
    rep.diagnostics = items.iter().map(read_diag).collect::<Result<_, _>>()?;

    let a = as_object(require(o, "analysis")?, "analysis")?;
    rep.analysis.functions = read_usize(a, "functions")?;
    rep.analysis.call_edges = read_usize(a, "call_edges")?;
    let JsonValue::Array(roots) = require(a, "hot_roots_matched")? else {
        return Err("hot_roots_matched is not an array".into());
    };
    for spec in roots {
        let JsonValue::String(s) = spec else {
            return Err("hot_roots_matched entry is not a string".into());
        };
        rep.analysis.hot.roots_matched.push(s.clone());
    }
    rep.analysis.hot.root_nodes = read_usize(a, "hot_root_fns")?;
    rep.analysis.hot.reachable_fns = read_usize(a, "hot_reachable_fns")?;
    rep.analysis.hot.indexing_sites = read_usize(a, "hot_indexing_sites")?;
    rep.analysis.flow.alloc_sites = read_usize(a, "alloc_sites")?;
    rep.analysis.flow.hot_alloc_sites = read_usize(a, "hot_alloc_sites")?;
    rep.analysis.flow.budget_fns = read_usize(a, "budget_fns")?;
    rep.analysis.flow.budget_ops_checked = read_usize(a, "budget_ops_checked")?;
    rep.analysis.flow.f64_arith_lines = read_usize(a, "f64_arith_lines")?;
    rep.analysis.flow.widening_ops = read_usize(a, "widening_ops")?;
    rep.analysis.flow.narrowing_casts = read_usize(a, "narrowing_casts")?;
    rep.analysis.flow.unit_params = read_usize(a, "unit_params")?;
    rep.analysis.taint.det_fns = read_usize(a, "det_fns")?;
    rep.analysis.taint.det_reachable_fns = read_usize(a, "det_reachable_fns")?;
    rep.analysis.taint.det_sources = read_usize(a, "det_sources")?;
    rep.analysis.shard_fns = read_usize(a, "shard_fns")?;
    Ok(rep)
}

fn as_object<'a>(v: &'a JsonValue, what: &str) -> Result<&'a [(String, JsonValue)], String> {
    match v {
        JsonValue::Object(entries) => Ok(entries),
        _ => Err(format!("{what} is not an object")),
    }
}

fn get<'a>(o: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    o.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require<'a>(o: &'a [(String, JsonValue)], key: &str) -> Result<&'a JsonValue, String> {
    get(o, key).ok_or_else(|| format!("missing '{key}'"))
}

fn read_str(o: &[(String, JsonValue)], key: &str) -> Result<String, String> {
    match require(o, key)? {
        JsonValue::String(s) => Ok(s.clone()),
        _ => Err(format!("'{key}' is not a string")),
    }
}

fn read_usize(o: &[(String, JsonValue)], key: &str) -> Result<usize, String> {
    match require(o, key)? {
        JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => {
            Ok(*n as usize) // lint:allow(as-cast): checked non-negative integer from JSON
        }
        _ => Err(format!("'{key}' is not a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(hash_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn cache_round_trips() {
        let mut cache = LintCache {
            rules_hash: rules_fingerprint(),
            ..LintCache::default()
        };
        cache
            .files
            .insert("crates/phy/src/rx.rs".into(), hash_hex(b"fn main() {}"));
        cache
            .files
            .insert("crates/phy/Cargo.toml".into(), hash_hex(b"[package]"));
        let diag = Diagnostic {
            rule: Rule::L004,
            file: "crates/phy/src/rx.rs".into(),
            line: 12,
            message: "numeric `as` cast: `x as u8` — \"quoted\"".into(),
        };
        cache
            .line_diags
            .insert("crates/phy/src/rx.rs".into(), vec![diag.clone()]);
        let mut rep = CachedReport {
            files_scanned: 2,
            crates_scanned: 1,
            diagnostics: vec![diag],
            ..CachedReport::default()
        };
        rep.rule_timings_ms.insert("L004".into(), 1.25);
        rep.analysis.functions = 7;
        rep.analysis
            .hot
            .roots_matched
            .push("carpool_phy::rx".into());
        rep.analysis.taint.det_sources = 2;
        rep.analysis.shard_fns = 3;
        cache.report = Some(rep);

        let parsed = LintCache::from_json(&cache.to_json()).expect("round trip");
        assert_eq!(parsed, cache);
    }

    #[test]
    fn wrong_schema_and_unknown_rule_are_rejected() {
        assert!(LintCache::from_json("{\"schema\": \"other/v1\"}").is_err());
        let text = "{\"schema\": \"carpool-lint-cache/v1\", \"rules_hash\": \"x\", \
                    \"files\": {}, \"line_diags\": {\"a.rs\": [{\"rule\": \"L099\", \
                    \"file\": \"a.rs\", \"line\": 1, \"message\": \"m\"}]}, \"report\": null}";
        assert!(LintCache::from_json(text).is_err());
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(rules_fingerprint(), rules_fingerprint());
        assert_eq!(rules_fingerprint().len(), 16);
    }
}
