//! Minimal `Cargo.toml` reading — just enough to get a package name
//! and its dependency names for the layering rule (L003). Not a
//! general TOML parser: it understands `[section]` headers, `key =
//! value` lines and `key.workspace = true` shorthand, which covers
//! every manifest in this workspace.

/// The subset of a crate manifest the linter needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// Names from `[dependencies]` and `[build-dependencies]`
    /// (dev-dependencies are deliberately excluded: test-only edges do
    /// not violate runtime layering).
    pub dependencies: Vec<String>,
}

/// Parses manifest text. Unknown constructs are skipped, never fatal.
pub fn parse_manifest(text: &str) -> Manifest {
    let mut manifest = Manifest::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        // `rand.workspace = true` → dependency name `rand`.
        let key = key.trim().split('.').next().unwrap_or("").trim();
        let key = key.trim_matches('"');
        if key.is_empty() {
            continue;
        }
        match section.as_str() {
            "package" if key == "name" => {
                manifest.name = value.trim().trim_matches('"').to_string();
            }
            "dependencies" | "build-dependencies" => {
                manifest.dependencies.push(key.to_string());
            }
            // Table-per-dependency form: [dependencies.carpool-mac]
            _ => {}
        }
        if let Some(rest) = section.strip_prefix("dependencies.") {
            // Reached once per key inside the table; dedup below.
            let name = rest.trim_matches('"').to_string();
            if !manifest.dependencies.contains(&name) {
                manifest.dependencies.push(name);
            }
        }
    }
    manifest.dependencies.dedup();
    manifest
}

/// Drops a `#`-to-end-of-line TOML comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (k, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..k],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_and_dependency_forms() {
        let m = parse_manifest(
            r#"
[package]
name = "carpool-frame"
version.workspace = true

[dependencies]
carpool-bloom.workspace = true
carpool-obs = { path = "../obs" }  # inline table
rand = "0.8"

[dev-dependencies]
proptest.workspace = true
"#,
        );
        assert_eq!(m.name, "carpool-frame");
        assert_eq!(m.dependencies, ["carpool-bloom", "carpool-obs", "rand"]);
    }

    #[test]
    fn dependency_tables_are_seen() {
        let m = parse_manifest(
            "[package]\nname = \"x\"\n[dependencies.carpool-mac]\npath = \"../mac\"\n",
        );
        assert_eq!(m.dependencies, ["carpool-mac"]);
    }

    #[test]
    fn comments_do_not_hide_dependencies() {
        let m = parse_manifest("[dependencies]\n# carpool-mac = \"1\"\nrand = \"0.8\" # ok\n");
        assert_eq!(m.dependencies, ["rand"]);
    }
}
