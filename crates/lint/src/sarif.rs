//! SARIF 2.1.0 export (`--sarif <path>`), so CI systems and editors
//! can ingest carpool-lint diagnostics alongside the native JSON v2
//! report.
//!
//! One run, one tool driver, one rule descriptor per [`Rule`]. Every
//! diagnostic of the scan is emitted: findings not covered by the
//! baseline ratchet are `"error"` (they fail the gate), baselined ones
//! are `"note"` (known debt, visible but not gating). Output is fully
//! deterministic — same scan, same bytes — so a golden-file test can
//! pin the schema (`tests/sarif_golden.rs`).

use crate::baseline::json_string;
use crate::rules::Rule;
use crate::{RatchetReport, ScanReport};

/// SARIF version and schema pinned by the export.
pub const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the scan as a SARIF 2.1.0 log with one run.
pub fn render_sarif(report: &ScanReport, verdict: &RatchetReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": \"{SARIF_VERSION}\",\n"));
    out.push_str(&format!("  \"$schema\": {},\n", json_string(SARIF_SCHEMA)));
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"carpool-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (k, rule) in Rule::ALL.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": \"{}\",\n", rule.id()));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }}\n",
            json_string(rule.summary())
        ));
        out.push_str("            }");
        if k + 1 < Rule::ALL.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (k, d) in report.diagnostics.iter().enumerate() {
        // New violations gate the build; baselined debt is advisory.
        let is_new = verdict
            .new_violations
            .iter()
            .any(|n| n.rule == d.rule && n.file == d.file && n.line == d.line);
        let level = if is_new { "error" } else { "note" };
        let rule_index = Rule::ALL
            .iter()
            .position(|r| *r == d.rule)
            .unwrap_or_default();
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", d.rule.id()));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str(&format!("          \"level\": \"{level}\",\n"));
        out.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            json_string(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {} }},\n",
            json_string(&d.file)
        ));
        // SARIF regions are 1-based; whole-file findings use line 1.
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            d.line.max(1)
        ));
        out.push_str("              }\n            }\n          ]\n        }");
        if k + 1 < report.diagnostics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn levels_split_new_vs_baselined() {
        let report = ScanReport {
            diagnostics: vec![
                Diagnostic {
                    rule: Rule::L001,
                    file: "crates/phy/src/a.rs".into(),
                    line: 3,
                    message: "banked".into(),
                },
                Diagnostic {
                    rule: Rule::L011,
                    file: "crates/phy/src/b.rs".into(),
                    line: 7,
                    message: "fresh".into(),
                },
            ],
            ..ScanReport::default()
        };
        let verdict = RatchetReport {
            new_violations: vec![report.diagnostics[1].clone()],
            stale: Vec::new(),
        };
        let sarif = render_sarif(&report, &verdict);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"level\": \"note\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"startLine\": 3"));
        // Rule index of L011 in Rule::ALL is 10 (0-based).
        assert!(sarif.contains("\"ruleIndex\": 10"));
    }

    #[test]
    fn whole_file_findings_clamp_to_line_one() {
        let report = ScanReport {
            diagnostics: vec![Diagnostic {
                rule: Rule::L003,
                file: "crates/phy/Cargo.toml".into(),
                line: 0,
                message: "manifest layering".into(),
            }],
            ..ScanReport::default()
        };
        let verdict = RatchetReport::default();
        let sarif = render_sarif(&report, &verdict);
        assert!(sarif.contains("\"startLine\": 1"));
    }
}
