//! The ratcheting baseline: existing violations are recorded per rule
//! and file in `lint-baseline.json`; new violations fail the gate and
//! counts may only go down. The JSON codec is hand-rolled (the linter
//! has no dependencies) for the one fixed shape the baseline uses:
//!
//! ```json
//! {
//!   "schema": "carpool-lint-baseline/v2",
//!   "counts": { "L001": { "crates/phy/src/rx.rs": 3 } },
//!   "timings_ms": { "L001": 1.205 }
//! }
//! ```
//!
//! v2 adds `timings_ms`: the per-rule analysis time recorded when the
//! baseline was last banked, so rule-cost regressions show up in
//! review diffs. v1 files (no timings) still load.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag written to baseline files.
pub const BASELINE_SCHEMA: &str = "carpool-lint-baseline/v2";

/// Previous schema tag, still accepted on read (no timings).
pub const BASELINE_SCHEMA_V1: &str = "carpool-lint-baseline/v1";

/// Per-rule, per-file violation counts accepted as pre-existing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// `rule id -> file -> count`, kept sorted for stable output.
    pub counts: BTreeMap<String, BTreeMap<String, usize>>,
    /// `rule id -> milliseconds` spent by that rule when the baseline
    /// was banked (informational; not part of the ratchet).
    pub timings_ms: BTreeMap<String, f64>,
}

/// Errors from reading a baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The file was not valid JSON of the expected shape.
    Malformed(String),
    /// The schema tag did not match [`BASELINE_SCHEMA`].
    WrongSchema(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Malformed(what) => write!(f, "malformed baseline: {what}"),
            BaselineError::WrongSchema(got) => {
                write!(f, "baseline schema '{got}' (expected '{BASELINE_SCHEMA}')")
            }
        }
    }
}

impl Baseline {
    /// Count recorded for one rule/file pair.
    pub fn count(&self, rule: &str, file: &str) -> usize {
        self.counts
            .get(rule)
            .and_then(|files| files.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Total recorded count for one rule.
    pub fn rule_total(&self, rule: &str) -> usize {
        self.counts
            .get(rule)
            .map(|files| files.values().sum())
            .unwrap_or(0)
    }

    /// Renders the baseline as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
        out.push_str("  \"counts\": {");
        let mut first_rule = true;
        for (rule, files) in &self.counts {
            if files.is_empty() {
                continue;
            }
            if !first_rule {
                out.push(',');
            }
            first_rule = false;
            let _ = write!(out, "\n    {}: {{", json_string(rule));
            let mut first_file = true;
            for (file, count) in files {
                if !first_file {
                    out.push(',');
                }
                first_file = false;
                let _ = write!(out, "\n      {}: {count}", json_string(file));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  },\n  \"timings_ms\": {");
        let mut first = true;
        for (rule, ms) in &self.timings_ms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {ms:.3}", json_string(rule));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses baseline JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] on malformed JSON, an unexpected
    /// shape, or a schema mismatch.
    pub fn from_json(text: &str) -> Result<Baseline, BaselineError> {
        let value = parse_json(text).map_err(BaselineError::Malformed)?;
        let JsonValue::Object(top) = value else {
            return Err(BaselineError::Malformed(
                "top level is not an object".into(),
            ));
        };
        let schema = top.iter().find(|(k, _)| k == "schema");
        match schema {
            Some((_, JsonValue::String(s))) if s == BASELINE_SCHEMA || s == BASELINE_SCHEMA_V1 => {}
            Some((_, JsonValue::String(s))) => {
                return Err(BaselineError::WrongSchema(s.clone()));
            }
            _ => return Err(BaselineError::Malformed("missing schema tag".into())),
        }
        let mut baseline = Baseline::default();
        let Some((_, JsonValue::Object(counts))) = top.iter().find(|(k, _)| k == "counts") else {
            return Err(BaselineError::Malformed("missing counts object".into()));
        };
        for (rule, files) in counts {
            let JsonValue::Object(files) = files else {
                return Err(BaselineError::Malformed(format!(
                    "counts[{rule}] is not an object"
                )));
            };
            let entry = baseline.counts.entry(rule.clone()).or_default();
            for (file, count) in files {
                let JsonValue::Number(n) = count else {
                    return Err(BaselineError::Malformed(format!(
                        "counts[{rule}][{file}] is not a number"
                    )));
                };
                if *n < 0.0 || n.fract() != 0.0 {
                    return Err(BaselineError::Malformed(format!(
                        "counts[{rule}][{file}] is not a non-negative integer"
                    )));
                }
                entry.insert(file.clone(), *n as usize);
            }
        }
        if let Some((_, JsonValue::Object(timings))) = top.iter().find(|(k, _)| k == "timings_ms") {
            for (rule, ms) in timings {
                let JsonValue::Number(n) = ms else {
                    return Err(BaselineError::Malformed(format!(
                        "timings_ms[{rule}] is not a number"
                    )));
                };
                baseline.timings_ms.insert(rule.clone(), *n);
            }
        }
        Ok(baseline)
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value tree (objects keep insertion order).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64, like JavaScript).
    Number(f64),
    /// String with escapes resolved.
    String(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_object(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some('"') => Ok(JsonValue::String(parse_string(chars, pos)?)),
        Some('t') => parse_keyword(chars, pos, "true", JsonValue::Bool(true)),
        Some('f') => parse_keyword(chars, pos, "false", JsonValue::Bool(false)),
        Some('n') => parse_keyword(chars, pos, "null", JsonValue::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars, pos),
        Some(c) => Err(format!("unexpected character '{c}' at offset {pos}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(
    chars: &[char],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    for expected in word.chars() {
        if chars.get(*pos) != Some(&expected) {
            return Err(format!("bad keyword at offset {pos}"));
        }
        *pos += 1;
    }
    Ok(value)
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
    {
        *pos += 1;
    }
    let text: String = chars[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number '{text}' at offset {start}"))
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    // Caller guarantees an opening quote.
    *pos += 1;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    Some(&c) => out.push(c),
                    None => return Err("unterminated escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_object(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(JsonValue::Object(entries));
    }
    loop {
        skip_ws(chars, pos);
        if chars.get(*pos) != Some(&'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_string(chars, pos)?;
        skip_ws(chars, pos);
        if chars.get(*pos) != Some(&':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(chars, pos)?;
        entries.push((key, value));
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut b = Baseline::default();
        b.counts
            .entry("L001".to_string())
            .or_default()
            .insert("crates/phy/src/rx.rs".to_string(), 3);
        b.counts
            .entry("L004".to_string())
            .or_default()
            .insert("crates/mac/src/sim.rs".to_string(), 17);
        b.timings_ms.insert("L001".to_string(), 1.5);
        let text = b.to_json();
        assert!(text.contains(BASELINE_SCHEMA));
        let parsed = Baseline::from_json(&text).expect("round trip");
        assert_eq!(parsed, b);
        assert_eq!(parsed.count("L001", "crates/phy/src/rx.rs"), 3);
        assert_eq!(parsed.count("L001", "missing.rs"), 0);
        assert_eq!(parsed.rule_total("L004"), 17);
        assert_eq!(parsed.timings_ms.get("L001"), Some(&1.5));
    }

    #[test]
    fn v1_baselines_still_load() {
        let text = "{\"schema\": \"carpool-lint-baseline/v1\", \
                    \"counts\": {\"L001\": {\"a.rs\": 2}}}";
        let parsed = Baseline::from_json(text).expect("v1 accepted");
        assert_eq!(parsed.count("L001", "a.rs"), 2);
        assert!(parsed.timings_ms.is_empty());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = "{\"schema\": \"other/v9\", \"counts\": {}}";
        assert!(matches!(
            Baseline::from_json(text),
            Err(BaselineError::WrongSchema(_))
        ));
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["", "{", "{\"counts\": 3}", "[1,2", "{\"a\" 1}"] {
            assert!(Baseline::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parser_handles_nested_values() {
        let v =
            parse_json("{\"a\": [1, {\"b\": null}, true], \"c\": \"x\\u0041\"}").expect("parses");
        let JsonValue::Object(top) = v else {
            panic!("not an object");
        };
        assert_eq!(top.len(), 2);
        assert_eq!(top[1].1, JsonValue::String("xA".to_string()));
    }
}
