//! Lightweight Rust item parser on top of the line scanner.
//!
//! [`parse_items`] folds the comment/string-blanked [`SourceLine`]s of
//! one file into structural items: `fn` declarations with their body
//! extents and outgoing call references, `impl`/`trait` contexts (so
//! methods get a `Type::name` qualified identity), `use` bindings, and
//! top-level `pub` items. It is deliberately not a full Rust parser —
//! it tracks exactly the token shapes the interprocedural rules
//! (L007–L010) need, never panics on malformed input, and degrades to
//! "no item seen" rather than guessing.
//!
//! Span contract: every line number reported by the parser is one of
//! the scanner's 1-based [`SourceLine::number`]s, and a function's
//! `decl_line <= body_start <= body_end` whenever a body exists. The
//! property tests in `tests/item_parser_properties.rs` pin both
//! invariants on arbitrary token soup.

use crate::rules::CrateClass;
use crate::scanner::{scan_source, SourceLine};

/// Where a file sits within its crate (rules apply to `Src` only; the
/// other sections participate as call-graph callers and as the
/// reference corpus for dead-API detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` — library or binary sources.
    Src,
    /// `tests/` — integration tests.
    Tests,
    /// `benches/` — bench binaries.
    Benches,
    /// `examples/` — example binaries.
    Examples,
}

/// One `use` declaration binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// Local name introduced (last segment or the `as` rename); empty
    /// for glob imports.
    pub name: String,
    /// Full path segments as written (`crate`/`self`/`super` are left
    /// for the resolver to expand).
    pub segments: Vec<String>,
    /// Whether this is a `::*` glob import.
    pub glob: bool,
    /// Declaration line.
    pub line: usize,
}

/// One call occurrence inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Path segments before the parenthesis (`a::b::f(` → `[a, b, f]`).
    pub segments: Vec<String>,
    /// Whether the call is a method call (`x.f(...)`).
    pub method: bool,
    /// Line of the call.
    pub line: usize,
}

/// One `fn` item with its body extent and outgoing calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if the fn is an associated item.
    pub self_ty: Option<String>,
    /// Whether the fn is plain `pub` (restricted `pub(...)` is false).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub decl_line: usize,
    /// Line of the opening body brace (0 when the fn has no body, e.g.
    /// a trait required method).
    pub body_start: usize,
    /// Line of the closing body brace (0 when the fn has no body).
    pub body_end: usize,
    /// Whether the declaration sits in `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
    /// Calls made inside the body, in source order.
    pub calls: Vec<CallRef>,
}

/// A top-level `pub` item (dead-API candidates for L010).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Item keyword (`fn`, `struct`, `enum`, `trait`, `const`,
    /// `static`, `type`, `mod`, `union`).
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// Declaration line.
    pub line: usize,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileItems {
    /// All functions, in completion order (inner fns close first).
    pub fns: Vec<FnItem>,
    /// All `use` bindings.
    pub uses: Vec<UseBinding>,
    /// Top-level `pub` items.
    pub pub_items: Vec<PubItem>,
}

/// One parsed workspace file: identity, scanned lines, and items.
#[derive(Debug, Clone)]
pub struct FileRecord {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Package name (with dashes, e.g. `carpool-phy`).
    pub crate_name: String,
    /// Module path (e.g. `carpool_phy::fft`).
    pub module: String,
    /// Which crate section the file belongs to.
    pub section: Section,
    /// Rule classification of the owning crate.
    pub class: CrateClass,
    /// Scanned source lines.
    pub lines: Vec<SourceLine>,
    /// Parsed items.
    pub items: FileItems,
}

impl FileRecord {
    /// Scans and parses `source` into a record.
    pub fn parse(
        path: &str,
        crate_name: &str,
        section: Section,
        class: CrateClass,
        source: &str,
    ) -> FileRecord {
        let lines = scan_source(source);
        let items = parse_items(&lines);
        FileRecord {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            module: module_path(crate_name, section, path),
            section,
            class,
            lines,
            items,
        }
    }
}

/// Derives the module path of a file from its crate and relative path:
/// `crates/phy/src/fft.rs` in `carpool-phy` → `carpool_phy::fft`;
/// `lib.rs`/`main.rs`/`mod.rs` collapse into their parent.
pub fn module_path(crate_name: &str, section: Section, rel_path: &str) -> String {
    let alias = crate_name.replace('-', "_");
    let marker = match section {
        Section::Src => "src/",
        Section::Tests => "tests/",
        Section::Benches => "benches/",
        Section::Examples => "examples/",
    };
    let under = rel_path
        .rfind(marker)
        .map(|at| &rel_path[at + marker.len()..])
        .unwrap_or(rel_path);
    let mut segments = vec![alias];
    if !matches!(section, Section::Src) {
        segments.push(marker.trim_end_matches('/').to_string());
    }
    for part in under.trim_end_matches(".rs").split('/') {
        if part.is_empty() || part == "lib" || part == "main" || part == "mod" {
            continue;
        }
        segments.push(part.to_string());
    }
    segments.join("::")
}

/// An `impl`/`trait` block whose contained fns are associated items.
struct Ctx {
    /// Brace depth inside the block (`depth` while the block is open).
    open_depth: usize,
    /// Self type the block associates fns with.
    self_ty: Option<String>,
}

/// A fn header seen, waiting for its body `{` or a `;`.
struct PendingFn {
    name: String,
    is_pub: bool,
    decl_line: usize,
    decl_depth: usize,
    in_test: bool,
    self_ty: Option<String>,
}

/// An `impl`/`trait` header accumulating text until its `{`.
struct PendingCtx {
    text: String,
    is_trait: bool,
}

/// A fn whose body is open.
struct ActiveFn {
    item: FnItem,
    /// Depth inside the body (`decl_depth + 1`).
    body_depth: usize,
}

/// A `use` statement accumulating text until its `;`.
struct UseAccum {
    text: String,
    line: usize,
}

#[derive(Default)]
struct Parser {
    depth: usize,
    ctxs: Vec<Ctx>,
    active: Vec<ActiveFn>,
    pending_fn: Option<PendingFn>,
    pending_ctx: Option<PendingCtx>,
    pending_use: Option<UseAccum>,
    saw_pub: bool,
    /// `(`/`[` nesting inside a pending fn signature. A `;` or `{`
    /// inside such a group (`[u8; N]`, `-> [u8; { N }]`) belongs to a
    /// type, not to the item grammar, and must not terminate the
    /// pending fn or open its body.
    sig_group: usize,
    out: FileItems,
}

/// Parses the scanned lines of one file into items. Never panics; on
/// unparseable shapes it simply records fewer items.
pub fn parse_items(lines: &[SourceLine]) -> FileItems {
    let mut p = Parser::default();
    for line in lines {
        p.feed_line(line);
    }
    // Close any fns left open by unbalanced braces so spans stay valid.
    let last_line = lines.last().map_or(0, |l| l.number);
    while let Some(active) = p.active.pop() {
        let mut item = active.item;
        item.body_end = last_line.max(item.body_start);
        p.out.fns.push(item);
    }
    p.out
}

impl Parser {
    fn feed_line(&mut self, line: &SourceLine) {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        // Last significant (non-whitespace) char before the current
        // token; drives method-call and macro detection.
        let mut prev_sig = '\n';
        // A line break separates tokens inside a multi-line `use` or
        // `impl`/`trait` header just like a space would.
        if let Some(acc) = &mut self.pending_use {
            acc.text.push(' ');
        }
        if let Some(ctx) = &mut self.pending_ctx {
            ctx.text.push(' ');
        }
        while i < chars.len() {
            let c = chars[i];
            if let Some(acc) = &mut self.pending_use {
                if c == ';' {
                    let text = std::mem::take(&mut acc.text);
                    let at = acc.line;
                    self.pending_use = None;
                    parse_use_tree(&text, &[], at, &mut self.out.uses);
                } else {
                    acc.text.push(c);
                }
                i += 1;
                if !c.is_whitespace() {
                    prev_sig = c;
                }
                continue;
            }
            if let Some(ctx) = &mut self.pending_ctx {
                if c == '{' {
                    let self_ty = if ctx.is_trait {
                        first_ident(&ctx.text)
                    } else {
                        impl_self_type(&ctx.text)
                    };
                    self.depth += 1;
                    self.ctxs.push(Ctx {
                        open_depth: self.depth,
                        self_ty,
                    });
                    self.pending_ctx = None;
                } else if c == ';' {
                    self.pending_ctx = None;
                } else {
                    ctx.text.push(c);
                }
                i += 1;
                if !c.is_whitespace() {
                    prev_sig = c;
                }
                continue;
            }
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if self.pending_fn.is_some() {
                // Inside a fn signature: keep the `(`/`[` group nesting
                // so `;` and `{` belonging to array types or const
                // expressions don't end the item early.
                match c {
                    '(' | '[' => {
                        self.sig_group += 1;
                        i += 1;
                        prev_sig = c;
                        continue;
                    }
                    ')' | ']' => {
                        self.sig_group = self.sig_group.saturating_sub(1);
                        i += 1;
                        prev_sig = c;
                        continue;
                    }
                    '{' | '}' | ';' if self.sig_group > 0 => {
                        i += 1;
                        prev_sig = c;
                        continue;
                    }
                    _ => {}
                }
            }
            match c {
                '{' => {
                    self.depth += 1;
                    if let Some(pf) = &self.pending_fn {
                        if self.depth == pf.decl_depth + 1 {
                            let pf = self.pending_fn.take();
                            if let Some(pf) = pf {
                                self.active.push(ActiveFn {
                                    body_depth: self.depth,
                                    item: FnItem {
                                        name: pf.name,
                                        self_ty: pf.self_ty,
                                        is_pub: pf.is_pub,
                                        decl_line: pf.decl_line,
                                        body_start: line.number,
                                        body_end: 0,
                                        in_test: pf.in_test,
                                        calls: Vec::new(),
                                    },
                                });
                            }
                        }
                    }
                    self.saw_pub = false;
                    i += 1;
                }
                '}' => {
                    self.depth = self.depth.saturating_sub(1);
                    while self
                        .active
                        .last()
                        .is_some_and(|a| a.body_depth > self.depth)
                    {
                        if let Some(active) = self.active.pop() {
                            let mut item = active.item;
                            item.body_end = line.number;
                            self.out.fns.push(item);
                        }
                    }
                    while self.ctxs.last().is_some_and(|c| c.open_depth > self.depth) {
                        self.ctxs.pop();
                    }
                    self.saw_pub = false;
                    i += 1;
                }
                ';' => {
                    if self
                        .pending_fn
                        .as_ref()
                        .is_some_and(|pf| pf.decl_depth == self.depth)
                    {
                        // Trait required method: record without a body.
                        if let Some(pf) = self.pending_fn.take() {
                            self.out.fns.push(FnItem {
                                name: pf.name,
                                self_ty: pf.self_ty,
                                is_pub: pf.is_pub,
                                decl_line: pf.decl_line,
                                body_start: 0,
                                body_end: 0,
                                in_test: pf.in_test,
                                calls: Vec::new(),
                            });
                        }
                    }
                    self.saw_pub = false;
                    i += 1;
                }
                c if is_ident_start(c) => {
                    let start = i;
                    while i < chars.len() && is_ident_char(chars[i]) {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    i = self.handle_word(&word, &chars, i, prev_sig, line);
                }
                _ => {
                    i += 1;
                }
            }
            prev_sig = chars.get(i.wrapping_sub(1)).copied().unwrap_or(prev_sig);
            if !prev_sig.is_whitespace() {
                // keep as-is
            }
            prev_sig = c;
        }
        // Use statements keep accumulating across lines; add a token
        // separator so `use a::` + newline + `b;` does not fuse idents.
        if let Some(acc) = &mut self.pending_use {
            acc.text.push(' ');
        }
        if let Some(ctx) = &mut self.pending_ctx {
            ctx.text.push(' ');
        }
    }

    /// Dispatches one identifier token; returns the new scan position.
    fn handle_word(
        &mut self,
        word: &str,
        chars: &[char],
        mut i: usize,
        prev_sig: char,
        line: &SourceLine,
    ) -> usize {
        match word {
            "pub" => {
                let next = next_sig(chars, i);
                if next == Some('(') {
                    // Restricted visibility `pub(crate)` etc. is not
                    // public API; skip the scope parens.
                    i = skip_balanced(chars, skip_ws(chars, i), '(', ')');
                } else {
                    self.saw_pub = true;
                }
                i
            }
            "fn" => {
                let (name, after) = read_ident(chars, i);
                if let Some(name) = name {
                    let self_ty = self.ctxs.last().and_then(|c| c.self_ty.clone());
                    if self.depth == 0 && self.saw_pub && !line.in_test {
                        self.out.pub_items.push(PubItem {
                            kind: "fn",
                            name: name.clone(),
                            line: line.number,
                        });
                    }
                    self.pending_fn = Some(PendingFn {
                        name,
                        is_pub: self.saw_pub,
                        decl_line: line.number,
                        decl_depth: self.depth,
                        in_test: line.in_test,
                        self_ty,
                    });
                    self.sig_group = 0;
                    self.saw_pub = false;
                    return after;
                }
                i
            }
            // `impl` inside a fn signature is `impl Trait` in argument
            // or return position, not a block header — starting a ctx
            // there would swallow the fn body brace.
            "impl" if self.pending_fn.is_none() => {
                self.pending_ctx = Some(PendingCtx {
                    text: String::new(),
                    is_trait: false,
                });
                self.saw_pub = false;
                i
            }
            "trait" => {
                let (name, after) = read_ident(chars, i);
                if let Some(name) = &name {
                    if self.depth == 0 && self.saw_pub && !line.in_test {
                        self.out.pub_items.push(PubItem {
                            kind: "trait",
                            name: name.clone(),
                            line: line.number,
                        });
                    }
                }
                self.pending_ctx = Some(PendingCtx {
                    text: name.clone().unwrap_or_default(),
                    is_trait: true,
                });
                self.saw_pub = false;
                after
            }
            "struct" | "enum" | "const" | "static" | "type" | "mod" | "union" => {
                let kind: &'static str = match word {
                    "struct" => "struct",
                    "enum" => "enum",
                    "const" => "const",
                    "static" => "static",
                    "type" => "type",
                    "union" => "union",
                    _ => "mod",
                };
                let (name, after) = read_ident(chars, i);
                if let Some(name) = name {
                    // `const fn` / `static ref` shapes: `const` followed
                    // by `fn` is a qualifier, not an item.
                    if name == "fn" {
                        return i;
                    }
                    if self.depth == 0 && self.saw_pub && !line.in_test {
                        self.out.pub_items.push(PubItem {
                            kind,
                            name,
                            line: line.number,
                        });
                    }
                    self.saw_pub = false;
                    return after;
                }
                i
            }
            "use" => {
                self.pending_use = Some(UseAccum {
                    text: String::new(),
                    line: line.number,
                });
                self.saw_pub = false;
                i
            }
            _ => self.scan_call_path(word, chars, i, prev_sig, line),
        }
    }

    /// Follows `word ( :: ident )* (` shapes and records a call ref.
    fn scan_call_path(
        &mut self,
        word: &str,
        chars: &[char],
        mut i: usize,
        prev_sig: char,
        line: &SourceLine,
    ) -> usize {
        let mut segments = vec![word.to_string()];
        loop {
            if chars.get(i) == Some(&':') && chars.get(i + 1) == Some(&':') {
                let mut k = i + 2;
                if chars.get(k) == Some(&'<') {
                    // Turbofish: skip the generic args, then expect `(`.
                    k = skip_balanced(chars, k, '<', '>');
                    i = k;
                    break;
                }
                let start = k;
                while k < chars.len() && is_ident_char(chars[k]) {
                    k += 1;
                }
                if k == start {
                    i = k;
                    break;
                }
                segments.push(chars[start..k].iter().collect());
                i = k;
            } else {
                break;
            }
        }
        if chars.get(i) == Some(&'!') {
            // Macro invocation — not a function call.
            return i + 1;
        }
        if chars.get(i) == Some(&'(') {
            if let Some(active) = self.active.last_mut() {
                active.item.calls.push(CallRef {
                    method: prev_sig == '.',
                    segments,
                    line: line.number,
                });
            }
        }
        i
    }
}

/// Expands one `use` tree body (text between `use` and `;`).
fn parse_use_tree(text: &str, prefix: &[String], line: usize, out: &mut Vec<UseBinding>) {
    let text = text.trim();
    if text.is_empty() {
        return;
    }
    if let Some(open) = text.find('{') {
        let head = text[..open].trim().trim_end_matches("::");
        let mut segs: Vec<String> = prefix.to_vec();
        segs.extend(split_path(head));
        // Balanced group body: everything up to the matching brace.
        let inner = balanced_inner(&text[open..]);
        for part in split_top_level(inner) {
            parse_use_tree(part, &segs, line, out);
        }
        return;
    }
    let (path_text, rename) = match text.find(" as ") {
        Some(at) => (&text[..at], Some(text[at + 4..].trim().to_string())),
        None => (text, None),
    };
    let mut segs: Vec<String> = prefix.to_vec();
    let mut glob = false;
    for part in split_path(path_text) {
        if part == "*" {
            glob = true;
        } else if part == "self" && !segs.is_empty() {
            // `a::b::self` binds `b` itself; segments stay as-is.
        } else {
            segs.push(part);
        }
    }
    if segs.is_empty() {
        return;
    }
    let name = match rename {
        Some(n) => n,
        None if glob => String::new(),
        None => segs.last().cloned().unwrap_or_default(),
    };
    out.push(UseBinding {
        name,
        segments: segs,
        glob,
        line,
    });
}

/// Splits `a::b :: c` into clean segments.
fn split_path(text: &str) -> Vec<String> {
    text.split("::")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Contents of a `{...}` group starting at the opening brace.
fn balanced_inner(text: &str) -> &str {
    let mut depth = 0usize;
    for (at, c) in text.char_indices() {
        if c == '{' {
            depth += 1;
        } else if c == '}' {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return text.get(1..at).unwrap_or("");
            }
        }
    }
    text.get(1..).unwrap_or("")
}

/// Splits a group body on commas not nested in `{}`.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (at, c) in text.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&text[start..at]);
                start = at + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Extracts the self type from an `impl` header (text between `impl`
/// and `{`): strips leading generics, honors `Trait for Type`, and
/// keeps the last path segment without its generic arguments.
fn impl_self_type(header: &str) -> Option<String> {
    let mut rest = header.trim();
    if rest.starts_with('<') {
        let chars: Vec<char> = rest.chars().collect();
        let end = skip_balanced(&chars, 0, '<', '>');
        rest = rest.get(chars[..end].iter().collect::<String>().len()..)?;
        rest = rest.trim_start();
    }
    // `Trait for Type` — take the type side. `for<'a>` HRTBs have no
    // space before `<`, so requiring a full ` for ` word avoids them.
    let mut from = 0usize;
    let mut after_for = rest;
    while let Some(at) = rest[from..].find(" for ") {
        let at = from + at;
        let tail = &rest[at + 5..];
        if !tail.trim_start().starts_with('<') {
            after_for = tail;
        }
        from = at + 5;
    }
    let ty = after_for
        .trim_start()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("dyn ")
        .trim_start();
    let cut = ty
        .find(|c: char| c == '<' || c == '{' || c.is_whitespace())
        .unwrap_or(ty.len());
    let path = &ty[..cut];
    path.rsplit("::")
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty() && s.chars().next().is_some_and(is_ident_start))
        .map(str::to_string)
}

/// First identifier in a text fragment.
fn first_ident(text: &str) -> Option<String> {
    let start = text.find(|c: char| is_ident_start(c))?;
    let rest = &text[start..];
    let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

const fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

const fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Position after skipping whitespace.
fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while chars.get(i).is_some_and(|c| c.is_whitespace()) {
        i += 1;
    }
    i
}

/// Next significant char at/after `i`.
fn next_sig(chars: &[char], i: usize) -> Option<char> {
    chars.get(skip_ws(chars, i)).copied()
}

/// Skips a balanced `open...close` group starting at/after `i`;
/// returns the position after the closing delimiter (or the end of the
/// line if unbalanced — the caller continues safely either way).
fn skip_balanced(chars: &[char], i: usize, open: char, close: char) -> usize {
    let mut k = skip_ws(chars, i);
    if chars.get(k) != Some(&open) {
        return k;
    }
    let mut depth = 0usize;
    while k < chars.len() {
        let c = chars[k];
        if c == open {
            depth += 1;
        } else if c == close {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Reads the next identifier after whitespace; returns it plus the new
/// position.
fn read_ident(chars: &[char], i: usize) -> (Option<String>, usize) {
    let start = skip_ws(chars, i);
    let mut k = start;
    if !chars.get(k).copied().is_some_and(is_ident_start) {
        return (None, i);
    }
    while k < chars.len() && is_ident_char(chars[k]) {
        k += 1;
    }
    (Some(chars[start..k].iter().collect()), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_items(&scan_source(src))
    }

    #[test]
    fn free_fn_with_body_extent_and_calls() {
        let src = "\
pub fn alpha(x: u8) -> u8 {
    helper(x);
    beta::gamma(x)
}
fn helper(x: u8) -> u8 { x }
";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        let alpha = items.fns.iter().find(|f| f.name == "alpha");
        let alpha = alpha.as_ref();
        assert!(alpha.is_some_and(|f| f.is_pub && f.decl_line == 1 && f.body_end == 4));
        let calls: Vec<_> = alpha.map(|f| f.calls.clone()).unwrap_or_default();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].segments, ["helper"]);
        assert_eq!(calls[1].segments, ["beta", "gamma"]);
        assert!(!calls[1].method);
        assert_eq!(items.pub_items.len(), 1);
        assert_eq!(items.pub_items[0].name, "alpha");
    }

    #[test]
    fn impl_methods_get_self_type() {
        let src = "\
struct Decoder;
impl Decoder {
    pub fn run(&self) {
        self.step();
    }
    fn step(&self) {}
}
impl Iterator for Decoder {
    type Item = u8;
    fn next(&mut self) -> Option<u8> { None }
}
";
        let items = parse(src);
        let run = items.fns.iter().find(|f| f.name == "run");
        assert_eq!(
            run.and_then(|f| f.self_ty.clone()).as_deref(),
            Some("Decoder")
        );
        let next = items.fns.iter().find(|f| f.name == "next");
        assert_eq!(
            next.and_then(|f| f.self_ty.clone()).as_deref(),
            Some("Decoder"),
            "trait impls associate with the type, not the trait"
        );
        let step_call = run.map(|f| f.calls.clone()).unwrap_or_default();
        assert!(step_call.iter().any(|c| c.method && c.segments == ["step"]));
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let src = "\
impl<T: Clone + Default> Holder<T> {
    fn get(&self) -> T { T::default() }
}
";
        let items = parse(src);
        let get = items.fns.iter().find(|f| f.name == "get");
        assert_eq!(
            get.and_then(|f| f.self_ty.clone()).as_deref(),
            Some("Holder")
        );
    }

    #[test]
    fn use_bindings_expand_groups_renames_and_globs() {
        let src = "\
use std::collections::{BTreeMap, BTreeSet as Set};
use crate::scanner::*;
pub use a::b::c;
";
        let items = parse(src);
        let names: Vec<&str> = items.uses.iter().map(|u| u.name.as_str()).collect();
        assert!(names.contains(&"BTreeMap"));
        assert!(names.contains(&"Set"));
        assert!(names.contains(&"c"));
        let glob = items.uses.iter().find(|u| u.glob);
        assert_eq!(
            glob.map(|u| u.segments.clone()),
            Some(vec!["crate".to_string(), "scanner".to_string()])
        );
        let set = items.uses.iter().find(|u| u.name == "Set");
        assert_eq!(
            set.map(|u| u.segments.clone()),
            Some(vec![
                "std".to_string(),
                "collections".to_string(),
                "BTreeSet".to_string()
            ])
        );
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "\
fn f() {
    println!(\"x\");
    if (a) { g(); }
    match (a, b) { _ => {} }
}
fn g() {}
";
        let items = parse(src);
        let f = items.fns.iter().find(|f| f.name == "f");
        let calls = f.map(|f| f.calls.clone()).unwrap_or_default();
        // `println!` is a macro; `if (a)` and `match (a, b)` record
        // keyword pseudo-calls that resolve to nothing downstream.
        assert!(!calls.iter().any(|c| c.segments == ["println"]));
        assert!(calls.iter().any(|c| c.segments == ["g"]));
    }

    #[test]
    fn trait_required_methods_have_no_body() {
        let src = "\
pub trait Model {
    fn predict(&self, x: f64) -> f64;
    fn doubled(&self, x: f64) -> f64 {
        self.predict(x) * 2.0
    }
}
";
        let items = parse(src);
        let predict = items.fns.iter().find(|f| f.name == "predict");
        assert!(predict.is_some_and(|f| f.body_start == 0 && f.body_end == 0));
        let doubled = items.fns.iter().find(|f| f.name == "doubled");
        assert!(doubled.is_some_and(|f| f.body_start == 3 && f.body_end == 5));
        assert_eq!(
            items.pub_items.iter().map(|p| p.kind).collect::<Vec<_>>(),
            ["trait"]
        );
    }

    #[test]
    fn restricted_visibility_is_not_pub() {
        let src = "\
pub(crate) fn internal() {}
pub fn external() {}
";
        let items = parse(src);
        assert_eq!(items.pub_items.len(), 1);
        assert_eq!(items.pub_items[0].name, "external");
        let internal = items.fns.iter().find(|f| f.name == "internal");
        assert!(internal.is_some_and(|f| !f.is_pub));
    }

    #[test]
    fn pub_items_cover_all_kinds() {
        let src = "\
pub struct S;
pub enum E { A }
pub const C: u8 = 0;
pub static G: u8 = 0;
pub type T = u8;
pub mod m;
pub union U { a: u8 }
";
        let items = parse(src);
        let kinds: Vec<&str> = items.pub_items.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            ["struct", "enum", "const", "static", "type", "mod", "union"]
        );
    }

    #[test]
    fn module_paths_collapse_roots() {
        assert_eq!(
            module_path("carpool-phy", Section::Src, "crates/phy/src/fft.rs"),
            "carpool_phy::fft"
        );
        assert_eq!(
            module_path("carpool-phy", Section::Src, "crates/phy/src/lib.rs"),
            "carpool_phy"
        );
        assert_eq!(
            module_path("carpool-repro", Section::Tests, "tests/mac_scenarios.rs"),
            "carpool_repro::tests::mac_scenarios"
        );
        assert_eq!(
            module_path("carpool-phy", Section::Src, "crates/phy/src/sub/mod.rs"),
            "carpool_phy::sub"
        );
    }

    #[test]
    fn nested_fns_close_in_order() {
        let src = "\
fn outer() {
    fn inner() { leaf(); }
    inner();
}
";
        let items = parse(src);
        let inner = items.fns.iter().find(|f| f.name == "inner");
        assert!(inner.is_some_and(|f| f.body_start == 2 && f.body_end == 2));
        let outer = items.fns.iter().find(|f| f.name == "outer");
        assert!(outer.is_some_and(|f| f.body_end == 4));
        // `leaf()` belongs to inner, `inner()` to outer.
        assert!(inner.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["leaf"])));
        assert!(outer.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["inner"])));
    }

    #[test]
    fn impl_trait_in_signature_is_not_a_block_header() {
        // `impl FnOnce` in argument/return position must not open an
        // impl ctx — that used to swallow the body brace and make the
        // fn (and its calls) invisible to every interprocedural rule.
        let src = "\
struct S;
impl S {
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        helper();
        f()
    }
    fn after(&self) -> impl Iterator<Item = u8> {
        leaf();
        std::iter::empty()
    }
}
";
        let items = parse(src);
        let time = items.fns.iter().find(|f| f.name == "time");
        assert!(
            time.is_some_and(|f| f.body_start == 3 && f.body_end == 6),
            "impl-Trait arg swallowed the body: {time:?}"
        );
        assert!(time.is_some_and(|f| f.self_ty.as_deref() == Some("S")));
        assert!(time.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["helper"])));
        let after = items.fns.iter().find(|f| f.name == "after");
        assert!(
            after.is_some_and(|f| f.body_start == 7 && f.body_end == 10),
            "impl-Trait return swallowed the body: {after:?}"
        );
        assert!(after.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["leaf"])));
    }

    #[test]
    fn const_generic_and_array_type_signatures_keep_their_bodies() {
        let src = "\
pub fn pack<const N: usize>(x: [u8; N]) -> [u8; N] {
    helper(x)
}
fn braces<const N: usize>() -> [u8; { N }] {
    leaf()
}
fn plain_array(buf: [f64; 64]) -> [f64; 64] {
    twiddle(buf)
}
";
        let items = parse(src);
        let pack = items.fns.iter().find(|f| f.name == "pack");
        assert!(
            pack.is_some_and(|f| f.body_start == 1 && f.body_end == 3),
            "array-type `;` in the signature must not end the fn: {pack:?}"
        );
        assert!(pack.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["helper"])));
        let braces = items.fns.iter().find(|f| f.name == "braces");
        assert!(
            braces.is_some_and(|f| f.body_start == 4 && f.body_end == 6),
            "brace const-expr in return type must not open the body: {braces:?}"
        );
        assert!(braces.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["leaf"])));
        let plain = items.fns.iter().find(|f| f.name == "plain_array");
        assert!(plain.is_some_and(|f| f.body_start == 7 && f.body_end == 9));
        assert!(plain.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["twiddle"])));
    }

    #[test]
    fn where_clause_signatures_keep_their_bodies() {
        let src = "\
fn inline<T>(t: T) -> usize where T: Into<usize> {
    t.into()
}
fn multiline<T, U>(t: T, u: U) -> usize
where
    T: Into<usize>,
    U: Clone,
{
    inner(t, u)
}
impl<T> Holder<T>
where
    T: Clone,
{
    fn go(&self) {
        leaf();
    }
}
";
        let items = parse(src);
        let inline = items.fns.iter().find(|f| f.name == "inline");
        assert!(inline.is_some_and(|f| f.body_start == 1 && f.body_end == 3));
        let multi = items.fns.iter().find(|f| f.name == "multiline");
        assert!(
            multi.is_some_and(|f| f.body_start == 8 && f.body_end == 10),
            "multiline where clause: {multi:?}"
        );
        assert!(multi.is_some_and(|f| f.calls.iter().any(|c| c.segments == ["inner"])));
        let go = items.fns.iter().find(|f| f.name == "go");
        assert_eq!(
            go.and_then(|f| f.self_ty.clone()).as_deref(),
            Some("Holder"),
            "impl with where clause keeps the self type"
        );
    }

    #[test]
    fn trait_required_method_with_array_type_still_terminates() {
        let src = "\
trait Codec {
    fn encode(&self, block: [u8; 8]) -> [u8; 16];
    fn name(&self) -> &str;
}
";
        let items = parse(src);
        let encode = items.fns.iter().find(|f| f.name == "encode");
        assert!(
            encode.is_some_and(|f| f.body_start == 0 && f.body_end == 0),
            "bodiless trait fn with array types still recorded: {encode:?}"
        );
        let name = items.fns.iter().find(|f| f.name == "name");
        assert!(name.is_some_and(|f| f.body_start == 0 && f.body_end == 0));
    }

    #[test]
    fn unbalanced_input_still_yields_valid_spans() {
        let src = "fn f() { g(\n"; // never closed
        let items = parse(src);
        let f = items.fns.iter().find(|f| f.name == "f");
        assert!(f.is_some_and(|f| f.body_end >= f.body_start && f.decl_line == 1));
    }
}
