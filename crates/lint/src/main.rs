//! `carpool-lint` binary: scans the workspace, compares against the
//! checked-in `lint-baseline.json` ratchet, and exits nonzero on any
//! new violation or stale baseline entry. See the crate docs for the
//! rule list and waiver syntax.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match carpool_lint::LintOptions::parse(args) {
        Ok(opts) => opts,
        Err(usage) => {
            eprintln!("carpool-lint: {usage}");
            return ExitCode::from(2);
        }
    };
    // Exit codes fit in u8 by construction (0, 1, 2).
    ExitCode::from(carpool_lint::run(&opts).clamp(0, 2) as u8)
}
