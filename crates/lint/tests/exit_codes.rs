//! Integration tests for the exit-code contract of [`carpool_lint::run`]:
//! `0` clean, `1` gate failure, `2` internal analyzer error. Scripts
//! (`scripts/check.sh`) rely on this split to tell "the code is dirty"
//! apart from "the linter itself broke".

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use carpool_lint::LintOptions;

static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch workspace under the system temp directory.
fn scratch(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "carpool-lint-exit-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn write(path: &Path, text: &str) {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create fixture dir");
    }
    fs::write(path, text).expect("write fixture file");
}

/// A minimal workspace with one crate whose `lib.rs` is `body`.
fn workspace(tag: &str, body: &str) -> PathBuf {
    let root = scratch(tag);
    write(&root.join("Cargo.toml"), "[workspace]\nmembers = []\n");
    write(
        &root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"carpool-demo\"\n",
    );
    write(&root.join("crates/demo/src/lib.rs"), body);
    root
}

fn run_at(root: &Path) -> i32 {
    carpool_lint::run(&LintOptions {
        root: Some(root.to_path_buf()),
        ..LintOptions::default()
    })
}

#[test]
fn exit_zero_on_clean_workspace() {
    let root = workspace("clean", "//! A clean demo crate.\n\nfn quiet() {}\n");
    assert_eq!(run_at(&root), 0);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn exit_one_on_new_violation() {
    let root = workspace(
        "dirty",
        "//! Demo.\n\nfn risky() { None::<u8>.unwrap(); }\n",
    );
    assert_eq!(run_at(&root), 1);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn exit_one_on_refused_baseline_growth() {
    let root = workspace(
        "growth",
        "//! Demo.\n\nfn risky() { None::<u8>.unwrap(); }\n",
    );
    // An empty-but-valid baseline: any finding is growth, and without
    // --force the rewrite must be refused with the gate-failure code.
    write(
        &root.join("lint-baseline.json"),
        "{\n  \"schema\": \"carpool-lint-baseline/v2\",\n  \"counts\": {}\n}\n",
    );
    let code = carpool_lint::run(&LintOptions {
        root: Some(root.clone()),
        write_baseline: true,
        ..LintOptions::default()
    });
    assert_eq!(code, 1);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn exit_two_on_missing_workspace() {
    let root = scratch("nothing");
    assert_eq!(run_at(&root), 2);
}

#[test]
fn exit_two_on_malformed_baseline() {
    let root = workspace("badjson", "//! Demo.\n\nfn quiet() {}\n");
    write(&root.join("lint-baseline.json"), "this is not json at all");
    assert_eq!(run_at(&root), 2);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn exit_two_on_unknown_explain_rule() {
    let code = carpool_lint::run(&LintOptions {
        explain: Some("L999".to_string()),
        ..LintOptions::default()
    });
    assert_eq!(code, 2);
}

#[test]
fn exit_zero_on_explain_and_successful_write_baseline() {
    let code = carpool_lint::run(&LintOptions {
        explain: Some("L007".to_string()),
        ..LintOptions::default()
    });
    assert_eq!(code, 0);

    let root = workspace("bank", "//! Demo.\n\nfn risky() { None::<u8>.unwrap(); }\n");
    let banked = carpool_lint::run(&LintOptions {
        root: Some(root.clone()),
        write_baseline: true,
        force: true,
        ..LintOptions::default()
    });
    assert_eq!(banked, 0);
    // After banking, the gate is clean again.
    assert_eq!(run_at(&root), 0);
    fs::remove_dir_all(&root).ok();
}
