//! Property tests for the comment/string stripper: a trigger token
//! placed inside a comment or string literal must never produce a
//! diagnostic, no matter how the surrounding code is shaped.

use carpool_lint::rules::{check_lines, classify};
use carpool_lint::scanner::scan_source;
use proptest::prelude::*;

/// Tokens that would fire L001/L002/L005 if they appeared in code
/// position.
const TRIGGERS: [&str; 8] = [
    ".unwrap()",
    ".expect(\"x\")",
    "panic!(\"x\")",
    "unreachable!()",
    "println!(\"x\")",
    "eprintln!(\"x\")",
    "Instant::now()",
    "SystemTime::now()",
];

/// Ways to hide a token from code position.
#[derive(Debug, Clone, Copy)]
enum Container {
    LineComment,
    DocComment,
    BlockComment,
    MultilineBlockComment,
    Str,
    RawStr,
    RawStrHashes,
}

const CONTAINERS: [Container; 7] = [
    Container::LineComment,
    Container::DocComment,
    Container::BlockComment,
    Container::MultilineBlockComment,
    Container::Str,
    Container::RawStr,
    Container::RawStrHashes,
];

/// Embeds `token` in the chosen container, producing a source snippet
/// that is benign despite containing the trigger text.
fn embed(container: Container, token: &str, pad: &str) -> String {
    match container {
        Container::LineComment => format!("let {pad} = 1; // {pad} {token} {pad}\n"),
        Container::DocComment => format!("/// {pad} {token}\nfn {pad}_f() {{}}\n"),
        Container::BlockComment => format!("let {pad} = /* {token} */ 2;\n"),
        Container::MultilineBlockComment => {
            format!("let {pad} = 3; /* open {pad}\n {token}\n close */ fn g_{pad}() {{}}\n")
        }
        Container::Str => {
            // Escape quotes so the token text cannot close the string.
            let inner = token.replace('\\', "\\\\").replace('"', "\\\"");
            format!("let {pad} = \"{pad} {inner}\";\n")
        }
        Container::RawStr => {
            // A bare raw string cannot contain `"`; strip them.
            let inner = token.replace('"', " ");
            format!("let {pad} = r\"{inner}\";\n")
        }
        Container::RawStrHashes => format!("let {pad} = r#\"{token} \"quoted\" {token}\"#;\n"),
    }
}

/// Lowercase identifier fragments used as padding between fixtures.
fn pad_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!["x", "y", "zq", "w9", "ab_c"]),
        1..4,
    )
    .prop_map(|parts| parts.join("_"))
}

proptest! {
    #[test]
    fn hidden_tokens_never_fire(
        token in proptest::sample::select(TRIGGERS.to_vec()),
        container_idx in 0usize..CONTAINERS.len(),
        pad in pad_strategy(),
        repeat in 1usize..4,
    ) {
        let container = CONTAINERS[container_idx];
        let snippet = embed(container, token, &pad).repeat(repeat);
        // Strictest class: library + deterministic catches L001/2/5.
        let class = classify("carpool-frame");
        let diags = check_lines(class, false, "prop.rs", &scan_source(&snippet));
        prop_assert!(
            diags.is_empty(),
            "token {:?} in {:?} leaked into code position: {:?}\nsnippet:\n{}",
            token,
            container,
            diags,
            snippet
        );
    }

    #[test]
    fn visible_tokens_always_fire(
        token in proptest::sample::select(TRIGGERS.to_vec()),
        pad in pad_strategy(),
    ) {
        // The same tokens in real code position must always be caught —
        // the stripper may only remove, never over-blank.
        let snippet = format!("fn {pad}() {{ let v = q{token}; Instant::now(); }}\n");
        let _ = token;
        let class = classify("carpool-frame");
        let diags = check_lines(class, false, "prop.rs", &scan_source(&snippet));
        prop_assert!(!diags.is_empty(), "nothing fired for:\n{snippet}");
    }

    #[test]
    fn scan_is_deterministic_and_preserves_line_count(
        pad in pad_strategy(),
        repeat in 1usize..6,
    ) {
        let src = embed(Container::MultilineBlockComment, ".unwrap()", &pad).repeat(repeat);
        let a = scan_source(&src);
        let b = scan_source(&src);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), src.lines().count());
    }
}
