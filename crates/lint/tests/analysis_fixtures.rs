//! Fixture tests for the interprocedural rules (L007–L013): one
//! positive (the rule fires) and one negative (compliant code passes)
//! per rule, plus a disk-based end-to-end scan of a miniature
//! workspace exercising the full `scan_workspace` pipeline.

use carpool_lint::callgraph::CallGraph;
use carpool_lint::interproc::{
    check_l007, check_l008, check_l010, check_l011, check_l012, check_l013,
};
use carpool_lint::items::{FileRecord, Section};
use carpool_lint::rules::{check_line_rule, classify, Rule};
use carpool_lint::scanner::scan_source;

fn record(path: &str, crate_name: &str, src: &str) -> FileRecord {
    FileRecord::parse(path, crate_name, Section::Src, classify(crate_name), src)
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_fires_on_panic_reachable_from_hot_root() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { inner(); }\n\
         fn inner() { deepest(); }\n\
         fn deepest() { maybe().unwrap(); }\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, stats) = check_l007(&files, &graph, false);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 3);
    assert!(
        diags[0].message.contains("run_phy -> ") && diags[0].message.contains("deepest"),
        "diagnostic must print the call chain: {}",
        diags[0].message
    );
    assert_eq!(stats.reachable_fns, 3);
}

#[test]
fn l007_passes_when_panic_is_unreachable_or_waived() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { safe(); }\n\
         fn safe() {}\n\
         fn cold() { maybe().unwrap(); }\n\
         fn hot() { checked().unwrap() } // lint:allow(panic): checked above\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, _) = check_l007(&files, &graph, false);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- L008

#[test]
fn l008_fires_on_hash_iteration_in_sim_code() {
    let files = vec![record(
        "crates/mac/src/sim.rs",
        "carpool-mac",
        "use std::collections::HashSet;\n",
    )];
    let diags = check_l008(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("BTreeSet"));
}

#[test]
fn l008_passes_on_ordered_maps_and_exempt_crates() {
    let ordered = vec![record(
        "crates/mac/src/sim.rs",
        "carpool-mac",
        "use std::collections::BTreeMap;\n",
    )];
    assert!(check_l008(&ordered).is_empty());
    // The CLI has no byte-identical output contract.
    let cli = vec![record(
        "crates/cli/src/main.rs",
        "carpool-cli",
        "use std::collections::HashMap;\n",
    )];
    assert!(check_l008(&cli).is_empty());
}

// ---------------------------------------------------------------- L009

fn l009(src: &str) -> Vec<carpool_lint::rules::Diagnostic> {
    let lines = scan_source(src);
    check_line_rule(
        Rule::L009,
        classify("carpool-par"),
        false,
        "crates/par/src/lib.rs",
        &lines,
    )
}

#[test]
fn l009_fires_on_unjustified_ordering() {
    let diags = l009("fn f(x: &AtomicUsize) { x.store(1, Ordering::SeqCst); }\n");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("ordering:"));
}

#[test]
fn l009_passes_with_justification_comment() {
    let diags = l009(
        "// ordering: release pairs with the acquire load in `poll`\n\
         fn f(x: &AtomicUsize) { x.store(1, Ordering::Release); }\n",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l009_relaxed_requires_counter_justification() {
    let bad = l009(
        "// ordering: fast path, no synchronization needed\n\
         fn f(x: &AtomicUsize) { x.fetch_add(1, Ordering::Relaxed); }\n",
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    let good = l009(
        "// ordering: statistics counter only, never synchronizes data\n\
         fn f(x: &AtomicUsize) { x.fetch_add(1, Ordering::Relaxed); }\n",
    );
    assert!(good.is_empty(), "{good:?}");
}

// ---------------------------------------------------------------- L010

#[test]
fn l010_fires_on_orphan_pub_item() {
    let files = vec![
        record(
            "crates/phy/src/lib.rs",
            "carpool-phy",
            "pub fn orphan_helper() {}\n",
        ),
        record("crates/mac/src/lib.rs", "carpool-mac", "fn other() {}\n"),
    ];
    let diags = check_l010(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("orphan_helper"));
}

#[test]
fn l010_passes_when_item_is_referenced_or_waived() {
    let files = vec![
        record(
            "crates/phy/src/lib.rs",
            "carpool-phy",
            "pub fn used_helper() {}\n\
             // lint:allow(dead-api): kept for downstream users\n\
             pub fn kept_helper() {}\n",
        ),
        record(
            "crates/mac/src/lib.rs",
            "carpool-mac",
            "fn other() { carpool_phy::used_helper(); }\n",
        ),
    ];
    assert!(check_l010(&files).is_empty());
}

// ---------------------------------------------------------------- L011

#[test]
fn l011_fires_on_allocation_reachable_from_hot_root() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { helper(); }\n\
         fn helper() -> Vec<u8> { let v = Vec::new(); v }\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, hot_sites) = check_l011(&files, &graph);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 2);
    assert!(
        diags[0].message.contains("Vec::new") && diags[0].message.contains("run_phy"),
        "diagnostic must name the allocation and the hot chain: {}",
        diags[0].message
    );
    assert_eq!(hot_sites, 1);
}

#[test]
fn l011_exempts_setup_fns_reserved_pushes_and_waivers() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        // Setup-shaped constructors allocate freely; a `.push` loop over
        // pre-reserved capacity is amortized; an explicit waiver holds.
        "pub fn run_phy() { new_scratch(); fill(); waived(); }\n\
         fn new_scratch() -> Vec<u8> { Vec::with_capacity(64) }\n\
         fn fill() {\n\
             let mut v = Vec::with_capacity(16); // lint:allow(hot-alloc): sized once\n\
             for i in 0..16u8 {\n\
                 v.push(i);\n\
             }\n\
         }\n\
         fn waived() { let b = Box::new(1u8); drop(b); } // lint:allow(hot-alloc): one-shot\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, _) = check_l011(&files, &graph);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l011_ignores_tool_crates_and_cold_fns() {
    // The lint/cli crates are not alloc-audited, and allocations in fns
    // never reached from a hot root are someone else's business.
    let tool = vec![record(
        "crates/cli/src/main.rs",
        "carpool-cli",
        "pub fn run_phy() { let v: Vec<u8> = Vec::new(); drop(v); }\n",
    )];
    let graph = CallGraph::build(&tool);
    assert!(check_l011(&tool, &graph).0.is_empty());

    let cold = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn report() -> String { format!(\"cold path\") }\n",
    )];
    let graph = CallGraph::build(&cold);
    assert!(check_l011(&cold, &graph).0.is_empty());
}

// ---------------------------------------------------------------- L012

#[test]
fn l012_proves_a_sound_budget() {
    let files = vec![record(
        "crates/phy/src/convolutional.rs",
        "carpool-phy",
        "// lint:budget(i32: la, lb in ±2^20)\n\
         fn acs(la: i32, lb: i32) -> i32 { la + lb }\n",
    )];
    let (diags, budget_fns, ops_checked) = check_l012(&files);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(budget_fns, 1);
    assert!(ops_checked >= 1, "the `+` must have been bounds-checked");
}

#[test]
fn l012_catches_a_deliberately_broken_budget_bound() {
    // ±2^30 + ±2^30 = ±2^31, one past i32::MAX: the interval analysis
    // must refuse to certify the very same code the sound bound passes.
    let files = vec![record(
        "crates/phy/src/convolutional.rs",
        "carpool-phy",
        "// lint:budget(i32: la, lb in ±2^30)\n\
         fn acs(la: i32, lb: i32) -> i32 { la + lb }\n",
    )];
    let (diags, budget_fns, _) = check_l012(&files);
    assert_eq!(budget_fns, 1);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 2);
    assert!(
        diags[0].message.contains("acs"),
        "diagnostic must name the annotated fn: {}",
        diags[0].message
    );
}

#[test]
fn l012_waiver_silences_an_unprovable_op() {
    let files = vec![record(
        "crates/phy/src/convolutional.rs",
        "carpool-phy",
        "// lint:budget(i32: x in ±2^30)\n\
         fn wide(x: i32) -> i32 {\n\
             // lint:allow(scaling-budget): callers pre-clamp to ±2^10\n\
             x + x\n\
         }\n",
    )];
    let (diags, _, _) = check_l012(&files);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- L013

#[test]
fn l013_fires_on_mixed_unit_arithmetic() {
    let files = vec![record(
        "crates/frame/src/airtime.rs",
        "carpool-frame",
        "fn total(airtime_s: f64, backoff_us: f64) -> f64 { airtime_s + backoff_us }\n",
    )];
    let (diags, unit_params) = check_l013(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("s") && diags[0].message.contains("us"),
        "diagnostic must name both units: {}",
        diags[0].message
    );
    assert_eq!(unit_params, 2);
}

#[test]
fn l013_passes_matching_units_and_unit_converting_ops() {
    let files = vec![record(
        "crates/frame/src/airtime.rs",
        "carpool-frame",
        // Same unit adds fine; multiplication/division convert units by
        // design and are exempt from the mixing check.
        "fn ok(airtime_s: f64, gap_s: f64, rate_linear: f64) -> f64 {\n\
             (airtime_s + gap_s) * rate_linear\n\
         }\n",
    )];
    let (diags, _) = check_l013(&files);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l013_flags_call_argument_unit_mismatch() {
    let files = vec![record(
        "crates/frame/src/airtime.rs",
        "carpool-frame",
        "fn wait(timeout_s: f64) -> f64 { timeout_s }\n\
         fn caller(delay_us: f64) -> f64 { wait(delay_us) }\n",
    )];
    let (diags, _) = check_l013(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("wait"),
        "diagnostic must name the callee: {}",
        diags[0].message
    );
}

// ------------------------------------------------------ end to end

mod end_to_end {
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static COUNTER: AtomicUsize = AtomicUsize::new(0);

    /// A unique scratch workspace under the system temp directory.
    fn scratch(tag: &str) -> PathBuf {
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "carpool-lint-fixture-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn write(path: &Path, text: &str) {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create fixture dir");
        }
        fs::write(path, text).expect("write fixture file");
    }

    #[test]
    fn scan_finds_hot_panic_across_crates_with_chain() {
        let root = scratch("hot");
        write(&root.join("Cargo.toml"), "[workspace]\nmembers = []\n");
        write(
            &root.join("crates/bench/Cargo.toml"),
            "[package]\nname = \"carpool-bench\"\n",
        );
        // The hot root lives in bench and the panic two hops away in a
        // second crate, so the chain must cross a crate boundary.
        write(
            &root.join("crates/bench/src/lib.rs"),
            "pub fn run_phy() { carpool_kern::step(); }\n",
        );
        write(
            &root.join("crates/kern/Cargo.toml"),
            "[package]\nname = \"carpool-kern\"\n",
        );
        write(
            &root.join("crates/kern/src/lib.rs"),
            "//! Kernel fixture.\n\n\
             /// Doc.\npub fn step() { boom(); }\n\
             fn boom() { None::<u8>.unwrap(); }\n",
        );
        let report = carpool_lint::scan_workspace(&root).expect("scan succeeds");
        let hot: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == carpool_lint::rules::Rule::L007)
            .collect();
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert!(hot[0].file.ends_with("crates/kern/src/lib.rs"));
        assert!(
            hot[0].message.contains("run_phy")
                && hot[0].message.contains("step")
                && hot[0].message.contains("boom"),
            "chain should span both crates: {}",
            hot[0].message
        );
        assert!(report.analysis.functions >= 3);
        assert!(report.rule_timings_ms.contains_key("L007"));
        assert!(report.rule_timings_ms.contains_key("callgraph"));
        fs::remove_dir_all(&root).ok();
    }
}
