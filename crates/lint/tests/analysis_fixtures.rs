//! Fixture tests for the interprocedural rules (L007–L015): one
//! positive (the rule fires) and one negative (compliant code passes)
//! per rule, plus a disk-based end-to-end scan of a miniature
//! workspace exercising the full `scan_workspace` pipeline and the
//! incremental cache's byte-identity contract.

use carpool_lint::callgraph::CallGraph;
use carpool_lint::interproc::{
    check_l007, check_l008, check_l010, check_l011, check_l012, check_l013, check_l015,
};
use carpool_lint::items::{FileRecord, Section};
use carpool_lint::rules::{check_line_rule, classify, Rule};
use carpool_lint::scanner::scan_source;
use carpool_lint::taint::check_l014;

fn record(path: &str, crate_name: &str, src: &str) -> FileRecord {
    FileRecord::parse(path, crate_name, Section::Src, classify(crate_name), src)
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_fires_on_panic_reachable_from_hot_root() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { inner(); }\n\
         fn inner() { deepest(); }\n\
         fn deepest() { maybe().unwrap(); }\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, stats) = check_l007(&files, &graph, false);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 3);
    assert!(
        diags[0].message.contains("run_phy -> ") && diags[0].message.contains("deepest"),
        "diagnostic must print the call chain: {}",
        diags[0].message
    );
    assert_eq!(stats.reachable_fns, 3);
}

#[test]
fn l007_passes_when_panic_is_unreachable_or_waived() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { safe(); }\n\
         fn safe() {}\n\
         fn cold() { maybe().unwrap(); }\n\
         fn hot() { checked().unwrap() } // lint:allow(panic): checked above\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, _) = check_l007(&files, &graph, false);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- L008

#[test]
fn l008_fires_on_hash_iteration_in_sim_code() {
    let files = vec![record(
        "crates/mac/src/sim.rs",
        "carpool-mac",
        "use std::collections::HashSet;\n",
    )];
    let diags = check_l008(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("BTreeSet"));
}

#[test]
fn l008_passes_on_ordered_maps_and_exempt_crates() {
    let ordered = vec![record(
        "crates/mac/src/sim.rs",
        "carpool-mac",
        "use std::collections::BTreeMap;\n",
    )];
    assert!(check_l008(&ordered).is_empty());
    // The CLI has no byte-identical output contract.
    let cli = vec![record(
        "crates/cli/src/main.rs",
        "carpool-cli",
        "use std::collections::HashMap;\n",
    )];
    assert!(check_l008(&cli).is_empty());
}

// ---------------------------------------------------------------- L009

fn l009(src: &str) -> Vec<carpool_lint::rules::Diagnostic> {
    let lines = scan_source(src);
    check_line_rule(
        Rule::L009,
        classify("carpool-par"),
        false,
        "crates/par/src/lib.rs",
        &lines,
    )
}

#[test]
fn l009_fires_on_unjustified_ordering() {
    let diags = l009("fn f(x: &AtomicUsize) { x.store(1, Ordering::SeqCst); }\n");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("ordering:"));
}

#[test]
fn l009_passes_with_justification_comment() {
    let diags = l009(
        "// ordering: release pairs with the acquire load in `poll`\n\
         fn f(x: &AtomicUsize) { x.store(1, Ordering::Release); }\n",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l009_relaxed_requires_counter_justification() {
    let bad = l009(
        "// ordering: fast path, no synchronization needed\n\
         fn f(x: &AtomicUsize) { x.fetch_add(1, Ordering::Relaxed); }\n",
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    let good = l009(
        "// ordering: statistics counter only, never synchronizes data\n\
         fn f(x: &AtomicUsize) { x.fetch_add(1, Ordering::Relaxed); }\n",
    );
    assert!(good.is_empty(), "{good:?}");
}

// ---------------------------------------------------------------- L010

#[test]
fn l010_fires_on_orphan_pub_item() {
    let files = vec![
        record(
            "crates/phy/src/lib.rs",
            "carpool-phy",
            "pub fn orphan_helper() {}\n",
        ),
        record("crates/mac/src/lib.rs", "carpool-mac", "fn other() {}\n"),
    ];
    let diags = check_l010(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("orphan_helper"));
}

#[test]
fn l010_passes_when_item_is_referenced_or_waived() {
    let files = vec![
        record(
            "crates/phy/src/lib.rs",
            "carpool-phy",
            "pub fn used_helper() {}\n\
             // lint:allow(dead-api): kept for downstream users\n\
             pub fn kept_helper() {}\n",
        ),
        record(
            "crates/mac/src/lib.rs",
            "carpool-mac",
            "fn other() { carpool_phy::used_helper(); }\n",
        ),
    ];
    assert!(check_l010(&files).is_empty());
}

// ---------------------------------------------------------------- L011

#[test]
fn l011_fires_on_allocation_reachable_from_hot_root() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { helper(); }\n\
         fn helper() -> Vec<u8> { let v = Vec::new(); v }\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, hot_sites) = check_l011(&files, &graph);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 2);
    assert!(
        diags[0].message.contains("Vec::new") && diags[0].message.contains("run_phy"),
        "diagnostic must name the allocation and the hot chain: {}",
        diags[0].message
    );
    assert_eq!(hot_sites, 1);
}

#[test]
fn l011_exempts_setup_fns_reserved_pushes_and_waivers() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        // Setup-shaped constructors allocate freely; a `.push` loop over
        // pre-reserved capacity is amortized; an explicit waiver holds.
        "pub fn run_phy() { new_scratch(); fill(); waived(); }\n\
         fn new_scratch() -> Vec<u8> { Vec::with_capacity(64) }\n\
         fn fill() {\n\
             let mut v = Vec::with_capacity(16); // lint:allow(hot-alloc): sized once\n\
             for i in 0..16u8 {\n\
                 v.push(i);\n\
             }\n\
         }\n\
         fn waived() { let b = Box::new(1u8); drop(b); } // lint:allow(hot-alloc): one-shot\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, _) = check_l011(&files, &graph);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l011_ignores_tool_crates_and_cold_fns() {
    // The lint/cli crates are not alloc-audited, and allocations in fns
    // never reached from a hot root are someone else's business.
    let tool = vec![record(
        "crates/cli/src/main.rs",
        "carpool-cli",
        "pub fn run_phy() { let v: Vec<u8> = Vec::new(); drop(v); }\n",
    )];
    let graph = CallGraph::build(&tool);
    assert!(check_l011(&tool, &graph).0.is_empty());

    let cold = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn report() -> String { format!(\"cold path\") }\n",
    )];
    let graph = CallGraph::build(&cold);
    assert!(check_l011(&cold, &graph).0.is_empty());
}

// ---------------------------------------------------------------- L012

#[test]
fn l012_proves_a_sound_budget() {
    let files = vec![record(
        "crates/phy/src/convolutional.rs",
        "carpool-phy",
        "// lint:budget(i32: la, lb in ±2^20)\n\
         fn acs(la: i32, lb: i32) -> i32 { la + lb }\n",
    )];
    let (diags, budget_fns, ops_checked) = check_l012(&files);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(budget_fns, 1);
    assert!(ops_checked >= 1, "the `+` must have been bounds-checked");
}

#[test]
fn l012_catches_a_deliberately_broken_budget_bound() {
    // ±2^30 + ±2^30 = ±2^31, one past i32::MAX: the interval analysis
    // must refuse to certify the very same code the sound bound passes.
    let files = vec![record(
        "crates/phy/src/convolutional.rs",
        "carpool-phy",
        "// lint:budget(i32: la, lb in ±2^30)\n\
         fn acs(la: i32, lb: i32) -> i32 { la + lb }\n",
    )];
    let (diags, budget_fns, _) = check_l012(&files);
    assert_eq!(budget_fns, 1);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 2);
    assert!(
        diags[0].message.contains("acs"),
        "diagnostic must name the annotated fn: {}",
        diags[0].message
    );
}

#[test]
fn l012_waiver_silences_an_unprovable_op() {
    let files = vec![record(
        "crates/phy/src/convolutional.rs",
        "carpool-phy",
        "// lint:budget(i32: x in ±2^30)\n\
         fn wide(x: i32) -> i32 {\n\
             // lint:allow(scaling-budget): callers pre-clamp to ±2^10\n\
             x + x\n\
         }\n",
    )];
    let (diags, _, _) = check_l012(&files);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- L013

#[test]
fn l013_fires_on_mixed_unit_arithmetic() {
    let files = vec![record(
        "crates/frame/src/airtime.rs",
        "carpool-frame",
        "fn total(airtime_s: f64, backoff_us: f64) -> f64 { airtime_s + backoff_us }\n",
    )];
    let (diags, unit_params) = check_l013(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("s") && diags[0].message.contains("us"),
        "diagnostic must name both units: {}",
        diags[0].message
    );
    assert_eq!(unit_params, 2);
}

#[test]
fn l013_passes_matching_units_and_unit_converting_ops() {
    let files = vec![record(
        "crates/frame/src/airtime.rs",
        "carpool-frame",
        // Same unit adds fine; multiplication/division convert units by
        // design and are exempt from the mixing check.
        "fn ok(airtime_s: f64, gap_s: f64, rate_linear: f64) -> f64 {\n\
             (airtime_s + gap_s) * rate_linear\n\
         }\n",
    )];
    let (diags, _) = check_l013(&files);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l013_flags_call_argument_unit_mismatch() {
    let files = vec![record(
        "crates/frame/src/airtime.rs",
        "carpool-frame",
        "fn wait(timeout_s: f64) -> f64 { timeout_s }\n\
         fn caller(delay_us: f64) -> f64 { wait(delay_us) }\n",
    )];
    let (diags, _) = check_l013(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("wait"),
        "diagnostic must name the callee: {}",
        diags[0].message
    );
}

// ---------------------------------------------------------------- L014

#[test]
fn l014_fires_on_field_hash_iteration_l008_misses() {
    // The iteration line carries no `HashMap` token, so L008's token
    // scan cannot see it — only the taint pass's ident tracking can.
    let files = vec![record(
        "crates/mac/src/sim.rs",
        "carpool-mac",
        "struct Queues {\n\
             // lint:allow(hash-iter): fixture waives the declaration; iteration is the bug\n\
             by_station: std::collections::HashMap<u16, u32>,\n\
         }\n\
         impl Queues {\n\
             fn drain_all(&mut self) -> u32 {\n\
                 let mut total = 0;\n\
                 for (_sta, n) in &self.by_station {\n\
                     total += n;\n\
                 }\n\
                 total\n\
             }\n\
         }\n",
    )];
    let graph = CallGraph::build(&files);
    assert!(
        check_l008(&files).iter().all(|d| d.line != 8),
        "precondition: L008 must NOT flag the iteration line itself"
    );
    let (diags, stats) = check_l014(&files, &graph);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 8);
    assert!(
        diags[0].message.contains("by_station") && diags[0].message.contains("hash-iter"),
        "must name the tracked ident and the source kind: {}",
        diags[0].message
    );
    assert!(stats.det_fns >= 1 && stats.det_sources >= 1);
}

#[test]
fn l014_fires_on_clock_read_reached_from_det_crate() {
    // The source lives in a crate with no byte-identical contract of
    // its own; taint still flows because mac calls it.
    let files = vec![
        record(
            "crates/mac/src/engine.rs",
            "carpool-mac",
            "pub fn run_epoch() { carpool_cli::stamp_now(); }\n",
        ),
        record(
            "crates/cli/src/lib.rs",
            "carpool-cli",
            "pub fn stamp_now() -> u128 {\n\
                 std::time::SystemTime::now().elapsed().unwrap_or_default().as_nanos()\n\
             }\n",
        ),
    ];
    let graph = CallGraph::build(&files);
    let (diags, _) = check_l014(&files, &graph);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("call chain") && diags[0].message.contains("run_epoch"),
        "must print the connecting chain: {}",
        diags[0].message
    );
}

#[test]
fn l014_passes_unreachable_waived_and_ordered_iteration() {
    let files = vec![
        // Clock read in the CLI, called by nobody deterministic: fine.
        record(
            "crates/cli/src/util.rs",
            "carpool-cli",
            "pub fn stamp_now() { let _ = std::time::Instant::now(); }\n",
        ),
        // BTreeMap iteration in sim code: ordered, not a source.
        record(
            "crates/mac/src/sim.rs",
            "carpool-mac",
            "fn walk(m: &std::collections::BTreeMap<u8, u8>) -> usize { m.iter().count() }\n",
        ),
        // Waived source in a byte-identical crate.
        record(
            "crates/obs/src/probe.rs",
            "carpool-obs",
            "fn profile() {\n\
                 // lint:allow(det): profiling duration, printed to stderr only\n\
                 let _ = std::time::Instant::now();\n\
             }\n",
        ),
    ];
    let graph = CallGraph::build(&files);
    let (diags, stats) = check_l014(&files, &graph);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(stats.det_sources, 1, "the waived source still counts");
}

// ---------------------------------------------------------------- L015

#[test]
fn l015_fires_on_out_of_order_mailbox_absorb() {
    // Deliberately absorbs source shards in *descending* order: the
    // inbox assembly is no longer a pure function of shard indices.
    let files = vec![record(
        "crates/par/src/lib.rs",
        "carpool-par",
        "fn absorb_mailboxes(outboxes: &[Vec<u8>], inbox: &mut Vec<u8>) {\n\
             for source in outboxes.iter().rev() {\n\
                 inbox.extend_from_slice(source);\n\
             }\n\
         }\n",
    )];
    let (diags, checked) = check_l015(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 2);
    assert!(
        diags[0].message.contains("absorb-order"),
        "must carry the obligation tag: {}",
        diags[0].message
    );
    assert_eq!(checked, 1);
}

#[test]
fn l015_fires_on_barrier_without_panic_tag_and_unreset_scratch() {
    let files = vec![record(
        "crates/par/src/lib.rs",
        "carpool-par",
        // A barrier epoch loop that catches panics but never tags the
        // failing epoch with fetch_min: peers cannot agree on where to
        // stop deterministically.
        "fn run_epochs(barrier: &std::sync::Barrier) {\n\
             let _ = std::panic::catch_unwind(|| {\n\
                 barrier.wait();\n\
             });\n\
         }\n\
         fn decode_with_scratch(scratch: &mut Vec<u8>) -> usize {\n\
             scratch.push(1);\n\
             scratch.len()\n\
         }\n",
    )];
    let (diags, checked) = check_l015(&files);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("barrier-tag")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("scratch-overwrite")));
    assert_eq!(checked, 2);
}

#[test]
fn l015_passes_compliant_shard_protocol_code() {
    let files = vec![record(
        "crates/par/src/lib.rs",
        "carpool-par",
        // Ascending absorb; barrier paired with fetch_min; scratch
        // fully taken over per the history-independence contract.
        "fn absorb_mailboxes(outboxes: &[Vec<u8>], inbox: &mut Vec<u8>) {\n\
             for source in outboxes.iter() {\n\
                 inbox.extend_from_slice(source);\n\
             }\n\
         }\n\
         fn run_epochs(barrier: &std::sync::Barrier, failed_at: &std::sync::atomic::AtomicUsize) {\n\
             let r = std::panic::catch_unwind(|| {\n\
                 barrier.wait();\n\
             });\n\
             if r.is_err() {\n\
                 // ordering: panic-tag min over epochs, pairs with the post-join load\n\
                 failed_at.fetch_min(0, std::sync::atomic::Ordering::AcqRel);\n\
             }\n\
         }\n\
         fn decode_with_scratch(scratch: &mut Vec<u8>) -> Vec<u8> {\n\
             std::mem::take(scratch)\n\
         }\n",
    )];
    let (diags, checked) = check_l015(&files);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(checked, 3);
}

// ------------------------------------------------------ end to end

mod end_to_end {
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static COUNTER: AtomicUsize = AtomicUsize::new(0);

    /// A unique scratch workspace under the system temp directory.
    fn scratch(tag: &str) -> PathBuf {
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "carpool-lint-fixture-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn write(path: &Path, text: &str) {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create fixture dir");
        }
        fs::write(path, text).expect("write fixture file");
    }

    #[test]
    fn scan_finds_hot_panic_across_crates_with_chain() {
        let root = scratch("hot");
        write(&root.join("Cargo.toml"), "[workspace]\nmembers = []\n");
        write(
            &root.join("crates/bench/Cargo.toml"),
            "[package]\nname = \"carpool-bench\"\n",
        );
        // The hot root lives in bench and the panic two hops away in a
        // second crate, so the chain must cross a crate boundary.
        write(
            &root.join("crates/bench/src/lib.rs"),
            "pub fn run_phy() { carpool_kern::step(); }\n",
        );
        write(
            &root.join("crates/kern/Cargo.toml"),
            "[package]\nname = \"carpool-kern\"\n",
        );
        write(
            &root.join("crates/kern/src/lib.rs"),
            "//! Kernel fixture.\n\n\
             /// Doc.\npub fn step() { boom(); }\n\
             fn boom() { None::<u8>.unwrap(); }\n",
        );
        let report = carpool_lint::scan_workspace(&root).expect("scan succeeds");
        let hot: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == carpool_lint::rules::Rule::L007)
            .collect();
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert!(hot[0].file.ends_with("crates/kern/src/lib.rs"));
        assert!(
            hot[0].message.contains("run_phy")
                && hot[0].message.contains("step")
                && hot[0].message.contains("boom"),
            "chain should span both crates: {}",
            hot[0].message
        );
        assert!(report.analysis.functions >= 3);
        assert!(report.rule_timings_ms.contains_key("L007"));
        assert!(report.rule_timings_ms.contains_key("callgraph"));
        fs::remove_dir_all(&root).ok();
    }

    /// Renders the full user-visible output pair (human report + SARIF)
    /// for a scan outcome — the byte-identity contract of the cache.
    fn render_pair(report: &carpool_lint::ScanReport) -> (String, String) {
        let baseline = carpool_lint::baseline::Baseline::default();
        let verdict = carpool_lint::ratchet(report, &baseline);
        let meta = carpool_lint::RunMeta {
            elapsed_ms: 0.0,
            budget_ms: None,
        };
        (
            carpool_lint::render_human(report, &verdict, &baseline, &meta),
            carpool_lint::sarif::render_sarif(report, &verdict),
        )
    }

    #[test]
    fn incremental_cache_is_byte_identical_and_reuses_unchanged_files() {
        let root = scratch("cache");
        write(&root.join("Cargo.toml"), "[workspace]\nmembers = []\n");
        write(
            &root.join("crates/kern/Cargo.toml"),
            "[package]\nname = \"carpool-kern\"\n",
        );
        write(
            &root.join("crates/kern/src/lib.rs"),
            "//! Kernel fixture.\n\n\
             /// Doc.\npub fn step() -> u8 { 0 }\n",
        );
        write(
            &root.join("crates/mac/Cargo.toml"),
            "[package]\nname = \"carpool-mac\"\n",
        );
        // One stable diagnostic (panic in a non-hot fn is still L001).
        write(
            &root.join("crates/mac/src/lib.rs"),
            "//! Mac fixture.\n\n\
             /// Doc.\npub fn poke() { panic!(\"boom\"); }\n",
        );
        let cache_path = root.join(".lint-cache.json");
        let aopts = carpool_lint::AnalysisOptions::default();

        let cold = carpool_lint::scan_workspace_cached(&root, &aopts, Some(&cache_path), true)
            .expect("cold scan");
        assert!(!cold.warm, "no cache file yet");
        assert!(cache_path.is_file(), "scan must write the cache");

        let warm = carpool_lint::scan_workspace_cached(&root, &aopts, Some(&cache_path), true)
            .expect("warm scan");
        assert!(warm.warm, "unchanged workspace must hit the fast path");
        let (cold_human, cold_sarif) = render_pair(&cold.report);
        let (warm_human, warm_sarif) = render_pair(&warm.report);
        assert_eq!(
            cold_human, warm_human,
            "human report must be byte-identical"
        );
        assert_eq!(cold_sarif, warm_sarif, "SARIF must be byte-identical");

        // `--no-cache` semantics: skip reading, still byte-identical.
        let nocache = carpool_lint::scan_workspace_cached(&root, &aopts, Some(&cache_path), false)
            .expect("no-cache scan");
        assert!(!nocache.warm);
        assert_eq!(render_pair(&nocache.report).0, cold_human);

        // Touch one file: partial rerun must pick up the new finding
        // while replaying the untouched file's cached diagnostic.
        write(
            &root.join("crates/kern/src/lib.rs"),
            "//! Kernel fixture.\n\n\
             /// Doc.\npub fn step() -> u8 { None::<u8>.unwrap() }\n",
        );
        let partial = carpool_lint::scan_workspace_cached(&root, &aopts, Some(&cache_path), true)
            .expect("partial scan");
        assert!(!partial.warm, "a changed file must defeat the fast path");
        assert!(
            partial.reused_files >= 1,
            "the unchanged mac file must be replayed from cache ({})",
            partial.reused_files
        );
        let has = |file: &str, rule: carpool_lint::rules::Rule| {
            partial
                .report
                .diagnostics
                .iter()
                .any(|d| d.rule == rule && d.file.ends_with(file))
        };
        assert!(
            has("crates/kern/src/lib.rs", carpool_lint::rules::Rule::L001),
            "new unwrap in the edited file must be found"
        );
        assert!(
            has("crates/mac/src/lib.rs", carpool_lint::rules::Rule::L001),
            "cached diagnostic from the unchanged file must survive"
        );
        fs::remove_dir_all(&root).ok();
    }
}
