//! Fixture tests for the interprocedural rules (L007–L010): one
//! positive (the rule fires) and one negative (compliant code passes)
//! per rule, plus a disk-based end-to-end scan of a miniature
//! workspace exercising the full `scan_workspace` pipeline.

use carpool_lint::callgraph::CallGraph;
use carpool_lint::interproc::{check_l007, check_l008, check_l010};
use carpool_lint::items::{FileRecord, Section};
use carpool_lint::rules::{check_line_rule, classify, Rule};
use carpool_lint::scanner::scan_source;

fn record(path: &str, crate_name: &str, src: &str) -> FileRecord {
    FileRecord::parse(path, crate_name, Section::Src, classify(crate_name), src)
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_fires_on_panic_reachable_from_hot_root() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { inner(); }\n\
         fn inner() { deepest(); }\n\
         fn deepest() { maybe().unwrap(); }\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, stats) = check_l007(&files, &graph, false);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 3);
    assert!(
        diags[0].message.contains("run_phy -> ") && diags[0].message.contains("deepest"),
        "diagnostic must print the call chain: {}",
        diags[0].message
    );
    assert_eq!(stats.reachable_fns, 3);
}

#[test]
fn l007_passes_when_panic_is_unreachable_or_waived() {
    let files = vec![record(
        "crates/bench/src/lib.rs",
        "carpool-bench",
        "pub fn run_phy() { safe(); }\n\
         fn safe() {}\n\
         fn cold() { maybe().unwrap(); }\n\
         fn hot() { checked().unwrap() } // lint:allow(panic): checked above\n",
    )];
    let graph = CallGraph::build(&files);
    let (diags, _) = check_l007(&files, &graph, false);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- L008

#[test]
fn l008_fires_on_hash_iteration_in_sim_code() {
    let files = vec![record(
        "crates/mac/src/sim.rs",
        "carpool-mac",
        "use std::collections::HashSet;\n",
    )];
    let diags = check_l008(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("BTreeSet"));
}

#[test]
fn l008_passes_on_ordered_maps_and_exempt_crates() {
    let ordered = vec![record(
        "crates/mac/src/sim.rs",
        "carpool-mac",
        "use std::collections::BTreeMap;\n",
    )];
    assert!(check_l008(&ordered).is_empty());
    // The CLI has no byte-identical output contract.
    let cli = vec![record(
        "crates/cli/src/main.rs",
        "carpool-cli",
        "use std::collections::HashMap;\n",
    )];
    assert!(check_l008(&cli).is_empty());
}

// ---------------------------------------------------------------- L009

fn l009(src: &str) -> Vec<carpool_lint::rules::Diagnostic> {
    let lines = scan_source(src);
    check_line_rule(
        Rule::L009,
        classify("carpool-par"),
        false,
        "crates/par/src/lib.rs",
        &lines,
    )
}

#[test]
fn l009_fires_on_unjustified_ordering() {
    let diags = l009("fn f(x: &AtomicUsize) { x.store(1, Ordering::SeqCst); }\n");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("ordering:"));
}

#[test]
fn l009_passes_with_justification_comment() {
    let diags = l009(
        "// ordering: release pairs with the acquire load in `poll`\n\
         fn f(x: &AtomicUsize) { x.store(1, Ordering::Release); }\n",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l009_relaxed_requires_counter_justification() {
    let bad = l009(
        "// ordering: fast path, no synchronization needed\n\
         fn f(x: &AtomicUsize) { x.fetch_add(1, Ordering::Relaxed); }\n",
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    let good = l009(
        "// ordering: statistics counter only, never synchronizes data\n\
         fn f(x: &AtomicUsize) { x.fetch_add(1, Ordering::Relaxed); }\n",
    );
    assert!(good.is_empty(), "{good:?}");
}

// ---------------------------------------------------------------- L010

#[test]
fn l010_fires_on_orphan_pub_item() {
    let files = vec![
        record(
            "crates/phy/src/lib.rs",
            "carpool-phy",
            "pub fn orphan_helper() {}\n",
        ),
        record("crates/mac/src/lib.rs", "carpool-mac", "fn other() {}\n"),
    ];
    let diags = check_l010(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("orphan_helper"));
}

#[test]
fn l010_passes_when_item_is_referenced_or_waived() {
    let files = vec![
        record(
            "crates/phy/src/lib.rs",
            "carpool-phy",
            "pub fn used_helper() {}\n\
             // lint:allow(dead-api): kept for downstream users\n\
             pub fn kept_helper() {}\n",
        ),
        record(
            "crates/mac/src/lib.rs",
            "carpool-mac",
            "fn other() { carpool_phy::used_helper(); }\n",
        ),
    ];
    assert!(check_l010(&files).is_empty());
}

// ------------------------------------------------------ end to end

mod end_to_end {
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static COUNTER: AtomicUsize = AtomicUsize::new(0);

    /// A unique scratch workspace under the system temp directory.
    fn scratch(tag: &str) -> PathBuf {
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "carpool-lint-fixture-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn write(path: &Path, text: &str) {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create fixture dir");
        }
        fs::write(path, text).expect("write fixture file");
    }

    #[test]
    fn scan_finds_hot_panic_across_crates_with_chain() {
        let root = scratch("hot");
        write(&root.join("Cargo.toml"), "[workspace]\nmembers = []\n");
        write(
            &root.join("crates/bench/Cargo.toml"),
            "[package]\nname = \"carpool-bench\"\n",
        );
        // The hot root lives in bench and the panic two hops away in a
        // second crate, so the chain must cross a crate boundary.
        write(
            &root.join("crates/bench/src/lib.rs"),
            "pub fn run_phy() { carpool_kern::step(); }\n",
        );
        write(
            &root.join("crates/kern/Cargo.toml"),
            "[package]\nname = \"carpool-kern\"\n",
        );
        write(
            &root.join("crates/kern/src/lib.rs"),
            "//! Kernel fixture.\n\n\
             /// Doc.\npub fn step() { boom(); }\n\
             fn boom() { None::<u8>.unwrap(); }\n",
        );
        let report = carpool_lint::scan_workspace(&root).expect("scan succeeds");
        let hot: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == carpool_lint::rules::Rule::L007)
            .collect();
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert!(hot[0].file.ends_with("crates/kern/src/lib.rs"));
        assert!(
            hot[0].message.contains("run_phy")
                && hot[0].message.contains("step")
                && hot[0].message.contains("boom"),
            "chain should span both crates: {}",
            hot[0].message
        );
        assert!(report.analysis.functions >= 3);
        assert!(report.rule_timings_ms.contains_key("L007"));
        assert!(report.rule_timings_ms.contains_key("callgraph"));
        fs::remove_dir_all(&root).ok();
    }
}
