//! Golden-file test for the SARIF 2.1.0 export: the rendered log for a
//! fixed scan must be byte-identical to the checked-in golden. This
//! pins the schema URI, the full rule descriptor table (L001-L015),
//! and the error/note level split, so any change to the export format
//! is a deliberate, reviewed diff.
//!
//! To re-bless after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p carpool-lint --test sarif_golden`

use carpool_lint::rules::{Diagnostic, Rule};
use carpool_lint::sarif::render_sarif;
use carpool_lint::{RatchetReport, ScanReport};
use std::path::Path;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report.sarif");

fn fixture_report() -> (ScanReport, RatchetReport) {
    let report = ScanReport {
        diagnostics: vec![
            Diagnostic {
                rule: Rule::L004,
                file: "crates/phy/src/fft.rs".into(),
                line: 42,
                message: "`as` cast without a width comment".into(),
            },
            Diagnostic {
                rule: Rule::L011,
                file: "crates/phy/src/rx.rs".into(),
                line: 7,
                message: "allocation (`Vec::new`) reachable from hot root `run_phy` \
                          via run_phy -> decode_section"
                    .into(),
            },
            Diagnostic {
                rule: Rule::L012,
                file: "crates/phy/src/convolutional.rs".into(),
                line: 0,
                message: "cannot bound non-saturating `<<` over budgeted data".into(),
            },
        ],
        ..ScanReport::default()
    };
    let verdict = RatchetReport {
        // The L011 finding is new (gates the build); the rest are
        // banked debt and export as notes.
        new_violations: vec![report.diagnostics[1].clone()],
        stale: Vec::new(),
    };
    (report, verdict)
}

#[test]
fn sarif_output_matches_golden() {
    let (report, verdict) = fixture_report();
    let rendered = render_sarif(&report, &verdict);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN}: {e}; run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        rendered, golden,
        "SARIF output drifted from {GOLDEN}; if intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_pins_every_rule_descriptor() {
    // The golden must keep one descriptor per rule, in order, so a rule
    // added without a SARIF descriptor shows up as a test failure here
    // rather than as silently-unattributed results.
    let golden = std::fs::read_to_string(GOLDEN).expect("golden present");
    for rule in Rule::ALL {
        assert!(
            golden.contains(&format!("\"id\": \"{}\"", rule.id())),
            "golden lacks a descriptor for {}",
            rule.id()
        );
    }
}

#[test]
fn rendering_is_deterministic() {
    let (report, verdict) = fixture_report();
    assert_eq!(
        render_sarif(&report, &verdict),
        render_sarif(&report, &verdict)
    );
    assert!(Path::new(GOLDEN).exists());
}
