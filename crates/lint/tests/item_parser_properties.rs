//! Property tests for the item parser: arbitrary "token soup" built
//! from Rust-ish fragments must never panic the parser, and every span
//! it reports must round-trip to a real scanner line number with
//! `decl_line <= body_start <= body_end` whenever a body exists.

use carpool_lint::items::{parse_items, FileRecord, Section};
use carpool_lint::rules::classify;
use carpool_lint::scanner::scan_source;
use proptest::prelude::*;

/// Source fragments chosen to stress the parser's state machine:
/// unbalanced braces, half-finished headers, generics, raw idents,
/// strings with braces, and ordinary items.
const FRAGMENTS: [&str; 18] = [
    "pub fn alpha() {",
    "fn beta(x: u8) -> u8 { x }",
    "}",
    "{",
    "impl Foo {",
    "impl Iterator for Foo {",
    "trait Widget {",
    "use std::collections::{HashMap, BTreeMap as Map};",
    "use crate::sub::*;",
    "pub struct Thing<T> { inner: T }",
    "let s = \"{ not a brace }\";",
    "call(a, b); other::path::f(x);",
    "x.method(y).chain(z);",
    "pub const K: usize = 3;",
    "#[cfg(test)] mod tests {",
    "fn gamma<T: Iterator<Item = u8>>(t: T)",
    "; ; ;",
    "pub fn",
];

fn soup_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(FRAGMENTS.to_vec()), 0..12)
        .prop_map(|parts| parts.join("\n"))
}

proptest! {
    #[test]
    fn parser_never_panics_on_token_soup(src in soup_strategy()) {
        // Both entry points must absorb anything without panicking.
        let lines = scan_source(&src);
        let _ = parse_items(&lines);
        let _ = FileRecord::parse(
            "crates/x/src/soup.rs",
            "carpool-x",
            Section::Src,
            classify("carpool-x"),
            &src,
        );
    }

    #[test]
    fn spans_round_trip_scanner_line_numbers(src in soup_strategy()) {
        let lines = scan_source(&src);
        let items = parse_items(&lines);
        let max = lines.len();
        for f in &items.fns {
            prop_assert!(
                (1..=max).contains(&f.decl_line),
                "decl_line {} out of 1..={max} for fn {}",
                f.decl_line,
                f.name
            );
            if f.body_start > 0 {
                prop_assert!(
                    f.decl_line <= f.body_start && f.body_start <= f.body_end,
                    "span order violated for fn {}: decl {} body {}..{}",
                    f.name,
                    f.decl_line,
                    f.body_start,
                    f.body_end
                );
                prop_assert!((1..=max).contains(&f.body_end));
            }
            for call in &f.calls {
                prop_assert!((1..=max).contains(&call.line));
            }
        }
        for u in &items.uses {
            prop_assert!((1..=max).contains(&u.line));
        }
        for p in &items.pub_items {
            prop_assert!((1..=max).contains(&p.line));
        }
        // Line numbers the scanner hands out are exactly 1..=len; the
        // parser must agree with that numbering (round trip).
        for (k, line) in lines.iter().enumerate() {
            prop_assert_eq!(line.number, k + 1);
        }
    }

    #[test]
    fn parse_is_deterministic(src in soup_strategy()) {
        let lines = scan_source(&src);
        prop_assert_eq!(parse_items(&lines), parse_items(&lines));
    }
}
