//! Property tests for the interval lattice behind L012: `join` must be
//! a least upper bound, `widen` must be sound AND terminating (every
//! widening chain reaches a fixpoint in finitely many steps — no
//! infinite ascent), and the arithmetic transfer functions must
//! over-approximate their concrete counterparts.

use carpool_lint::ranges::Interval;
use proptest::prelude::*;

/// Small concrete values so products and shifts stay in range for the
/// exact-arithmetic cross-checks. (Generated as i64 — this proptest
/// build has no i128 range strategy — then lifted into the domain.)
fn small() -> impl Strategy<Value = i128> {
    (-1_000_000i64..1_000_000i64).prop_map(i128::from)
}

fn interval() -> impl Strategy<Value = Interval> {
    (small(), small()).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

/// Projects an arbitrary integer onto a concrete point inside `iv`.
fn pick(iv: Interval, x: i128) -> i128 {
    x.clamp(iv.lo, iv.hi)
}

proptest! {
    #[test]
    fn join_is_an_upper_bound(a in interval(), b in interval()) {
        let j = a.join(b);
        prop_assert!(j.lo <= a.lo && a.hi <= j.hi, "join must contain a");
        prop_assert!(j.lo <= b.lo && b.hi <= j.hi, "join must contain b");
    }

    #[test]
    fn join_is_commutative_and_idempotent(a in interval(), b in interval()) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(a), a);
    }

    #[test]
    fn widen_is_an_upper_bound_of_join(a in interval(), b in interval()) {
        // Soundness: widening never loses states that join would keep.
        let j = a.join(b);
        let w = a.widen(b);
        prop_assert!(w.lo <= j.lo && j.hi <= w.hi, "widen({a:?},{b:?}) = {w:?} must contain join = {j:?}");
    }

    #[test]
    fn widen_chains_terminate(a in interval(), steps in proptest::collection::vec(interval(), 1..20)) {
        // No infinite ascent: repeatedly widening with arbitrary inputs
        // must reach a fixpoint within a couple of iterations per bound
        // (each growing bound jumps straight to infinity).
        let mut cur = a;
        let mut changes = 0u32;
        for s in steps {
            let next = cur.widen(s);
            if next != cur {
                changes += 1;
                cur = next;
            }
        }
        // Each bound can change at most once (finite -> infinite), so
        // the whole chain stabilizes after at most 2 changes.
        prop_assert!(changes <= 2, "widening chain changed {changes} times");
        prop_assert_eq!(cur.widen(cur), cur, "fixpoint must be stable");
    }

    #[test]
    fn add_over_approximates(a in interval(), b in interval(), x in small(), y in small()) {
        let xa = pick(a, x);
        let yb = pick(b, y);
        prop_assert!(a.contains(xa) && b.contains(yb));
        prop_assert!(a.add(b).contains(xa + yb), "{:?} + {:?} must contain {}", a, b, xa + yb);
    }

    #[test]
    fn sub_and_neg_over_approximate(a in interval(), b in interval(), x in small(), y in small()) {
        let xa = pick(a, x);
        let yb = pick(b, y);
        prop_assert!(a.sub(b).contains(xa - yb));
        prop_assert!(a.neg().contains(-xa));
    }

    #[test]
    fn mul_over_approximates(a in interval(), b in interval(), x in small(), y in small()) {
        let xa = pick(a, x);
        let yb = pick(b, y);
        prop_assert!(a.mul(b).contains(xa * yb), "{:?} * {:?} must contain {}", a, b, xa * yb);
    }

    #[test]
    fn shl_over_approximates(a in interval(), x in small(), k in 0i64..8) {
        let xa = pick(a, x);
        let shift = Interval::exact(i128::from(k));
        prop_assert!(a.shl(shift).contains(xa << k), "{a:?} << {k} must contain {}", xa << k);
    }

    #[test]
    fn top_absorbs_everything(a in interval()) {
        prop_assert!(Interval::TOP.join(a).is_top());
        prop_assert!(a.join(Interval::TOP).is_top());
        prop_assert!(Interval::TOP.add(a).is_top());
    }

    #[test]
    fn fits_i32_matches_the_bounds(a in interval()) {
        // Our generator stays within ±10^6, so everything fits; scaling
        // by 2^12 pushes the million-bounds past i32.
        prop_assert!(a.fits_i32());
        let big = a.mul(Interval::exact(1 << 40));
        if a.lo != 0 || a.hi != 0 {
            prop_assert!(!big.fits_i32(), "{big:?} should overflow i32");
        }
    }
}
