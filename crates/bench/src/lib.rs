//! Shared measurement harness for the figure/table benches.
//!
//! Every table and figure of the paper's evaluation has a bench target
//! (`harness = false`) that prints the same rows/series the paper
//! reports. This library holds the common machinery: deterministic bit
//! patterns, PHY Monte-Carlo loops (raw BER per symbol position, side
//! channel vs data channel) and MAC sweep drivers.

use carpool_channel::link::LinkChannel;
use carpool_mac::error_model::{BerBiasModel, PerfectChannel};
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{SimConfig, Simulator};
use carpool_mac::SimReport;
use carpool_phy::bits::hamming_distance;
use carpool_phy::mcs::Mcs;
use carpool_phy::rx::{receive, Estimation, SectionLayout};
use carpool_phy::tx::{SectionSpec, SideChannelConfig};
use carpool_phy::txcache::transmit_cached;

/// Deterministic pseudo-random bits (xorshift), so every bench run
/// measures the same payloads.
pub fn pattern_bits(n: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 1) as u8
        })
        .collect() // lint:allow(hot-alloc): bench input staging, amortized over the SNR sweep
}

/// Outcome of a PHY Monte-Carlo run.
#[derive(Debug, Clone, Default)]
pub struct PhyBerResult {
    /// Raw (pre-FEC) data bit error rate.
    pub data_ber: f64,
    /// Side-channel bit error rate (0 when the side channel is off).
    pub side_ber: f64,
    /// Raw BER per OFDM symbol position.
    pub ber_by_symbol: Vec<f64>,
}

/// Channel fading selector for PHY runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fading {
    /// AWGN + CFO only — the paper's controlled static experiments
    /// (Fig. 11/12).
    None,
    /// Time-varying Rician fading — the paper's office environment for
    /// the long-frame experiments (Fig. 3/13/14). `rician_k = 0` gives
    /// Rayleigh.
    TimeVarying {
        /// Coherence time in seconds.
        coherence_s: f64,
        /// Rician K-factor of the direct path.
        rician_k: f64,
    },
}

/// The office-link fading used by the long-frame experiments.
pub const OFFICE_FADING: Fading = Fading::TimeVarying {
    coherence_s: 4e-3,
    rician_k: 15.0,
};

/// Configuration of a PHY Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct PhyRunConfig {
    /// Modulation and coding scheme of the payload.
    pub mcs: Mcs,
    /// Payload bits per frame.
    pub payload_bits: usize,
    /// Side channel on the payload section?
    pub side_channel: Option<SideChannelConfig>,
    /// Receiver estimation mode.
    pub estimation: Estimation,
    /// Receive SNR in dB.
    pub snr_db: f64,
    /// Fading model.
    pub fading: Fading,
    /// Residual CFO in Hz.
    pub cfo_hz: f64,
    /// Frames to average over.
    pub frames: usize,
    /// Base seed; frame `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for PhyRunConfig {
    fn default() -> Self {
        PhyRunConfig {
            mcs: Mcs::QAM64_3_4,
            payload_bits: 8 * 1024 * 8, // 8 KB
            side_channel: Some(SideChannelConfig::default()),
            estimation: Estimation::Standard,
            snr_db: 28.0,
            fading: OFFICE_FADING,
            cfo_hz: 100.0,
            frames: 20,
            seed: 1000,
        }
    }
}

/// Integer per-frame tallies of a PHY run. Frames are independent
/// trials, so these add exactly: reducing them in frame order makes the
/// parallel run byte-identical to the serial one.
#[derive(Debug, Clone, Default)]
struct FrameTally {
    bit_errors: usize,
    bits_total: usize,
    side_errors: usize,
    side_total: usize,
    sym_errors: Vec<usize>,
}

impl FrameTally {
    fn add(mut self, other: &FrameTally) -> FrameTally {
        self.bit_errors += other.bit_errors;
        self.bits_total += other.bits_total;
        self.side_errors += other.side_errors;
        self.side_total += other.side_total;
        for (a, b) in self.sym_errors.iter_mut().zip(&other.sym_errors) {
            *a += b;
        }
        self
    }
}

/// Runs the full PHY chain through the channel `frames` times and
/// aggregates raw-BER statistics.
///
/// Frames are fanned out over the `carpool-par` worker pool: each frame's
/// channel is seeded by `config.seed + frame`, so the result does not
/// depend on the thread count (`CARPOOL_THREADS`).
///
/// The transmitted waveform is deterministic per payload/MCS spec, so it
/// is served from [`carpool_phy::txcache`]: an SNR sweep re-encodes its
/// frame once and every further sweep point re-runs only channel + RX.
/// All trial randomness stays in the per-frame channel seed, so results
/// are byte-identical with the cache on or off (`--no-tx-cache`) and at
/// any thread count.
pub fn run_phy(config: &PhyRunConfig) -> PhyBerResult {
    let spec = SectionSpec {
        bits: pattern_bits(config.payload_bits, 77),
        mcs: config.mcs,
        scramble: true,
        side_channel: config.side_channel,
        qbpsk: false,
    };
    // pattern_bits yields only 0/1 and the MCS comes from the library
    // table, so transmission cannot fail; degrade to an empty result
    // instead of panicking if that invariant ever breaks.
    let Ok(tx) = transmit_cached(std::slice::from_ref(&spec), &carpool_obs::Obs::noop()) else {
        return PhyBerResult::default();
    };
    let layouts = [SectionLayout::of(&spec)];
    let n_sym = tx.sections[0].num_symbols;
    let sym_bits = config.mcs.coded_bits_per_symbol();

    let per_frame = |f: usize, _item: &()| -> FrameTally {
        let mut tally = FrameTally {
            sym_errors: vec![0usize; n_sym],
            ..FrameTally::default()
        };
        let mut builder = LinkChannel::builder();
        builder
            .snr_db(config.snr_db)
            .cfo_hz(config.cfo_hz)
            .seed(config.seed + f as u64);
        if let Fading::TimeVarying {
            coherence_s,
            rician_k,
        } = config.fading
        {
            builder.coherence_time(coherence_s).rician_k(rician_k);
        }
        let mut link = builder.build();
        let rx_samples = link.transmit(&tx.samples);
        // The received buffer matches the transmitted layout by
        // construction; an empty tally degrades gracefully otherwise.
        let Ok(rx) = receive(&rx_samples, &layouts, config.estimation) else {
            return tally;
        };
        for (k, (t, r)) in tx.sections[0]
            .symbol_bits
            .iter()
            .zip(&rx.sections[0].raw_symbol_bits)
            .enumerate()
        {
            let d = hamming_distance(t, r);
            tally.sym_errors[k] += d;
            tally.bit_errors += d;
            tally.bits_total += t.len();
        }
        if let Some(sc) = config.side_channel {
            let bits_per = sc.modulation.bits_per_symbol();
            for (t, r) in tx.sections[0]
                .side_values
                .iter()
                .zip(&rx.sections[0].side_values)
            {
                tally.side_errors += ((t ^ r) & 1) as usize;
                if bits_per == 2 {
                    tally.side_errors += (((t ^ r) >> 1) & 1) as usize;
                }
                tally.side_total += bits_per;
            }
        }
        tally
    };

    let init = FrameTally {
        sym_errors: vec![0usize; n_sym],
        ..FrameTally::default()
    };
    let total =
        carpool_par::par_map_reduce(&vec![(); config.frames], per_frame, init, |acc, tally| {
            acc.add(&tally)
        })
        .unwrap_or_default();

    PhyBerResult {
        data_ber: total.bit_errors as f64 / total.bits_total.max(1) as f64,
        side_ber: total.side_errors as f64 / total.side_total.max(1) as f64,
        ber_by_symbol: total
            .sym_errors
            .into_iter()
            .map(|e| e as f64 / (config.frames * sym_bits) as f64)
            .collect(), // lint:allow(hot-alloc): bench input staging, amortized over the SNR sweep
    }
}

/// Runs the MAC simulator with the calibrated error model.
pub fn run_mac(config: SimConfig) -> SimReport {
    Simulator::new(config, Box::new(BerBiasModel::calibrated())).run()
}

/// Runs the MAC simulator with an error-free channel — the paper's
/// Fig. 17 assumption that "frame retransmission is only caused by
/// collision".
pub fn run_mac_perfect(config: SimConfig) -> SimReport {
    Simulator::new(config, Box::new(PerfectChannel)).run()
}

/// Standard VoIP-scenario config for the Fig. 15/16 sweeps.
pub fn voip_config(protocol: Protocol, num_stas: usize, seed: u64) -> SimConfig {
    SimConfig {
        protocol,
        num_stas,
        duration_s: 8.0,
        seed,
        ..SimConfig::default()
    }
}

/// Formats bit/s as Mbit/s with two decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// The five protocols every MAC sweep compares, in paper order.
pub const SWEEP_PROTOCOLS: [Protocol; 5] = [
    Protocol::Carpool,
    Protocol::MuAggregation,
    Protocol::Ampdu,
    Protocol::Dot11,
    Protocol::Wifox,
];

/// A right-aligned results table: one header row plus value rows, every
/// column padded to its widest cell. The figure/table benches all print
/// this same shape (a key column and a few numeric columns), so the
/// formatting lives here instead of being copy-pasted per bench.
#[derive(Debug, Clone, Default)]
pub struct ResultsTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultsTable {
    /// A table with the given header cells.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> ResultsTable {
        ResultsTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// A `key` column followed by one column per sweep protocol.
    pub fn for_protocols(key: &str) -> ResultsTable {
        let mut headers = vec![key.to_string()];
        headers.extend(SWEEP_PROTOCOLS.iter().map(|p| p.name().to_string()));
        ResultsTable::new(headers)
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table, each column right-aligned to its widest cell.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(self.headers.len());
        let mut widths = vec![0usize; columns];
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            for (i, width) in widths.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                for _ in cell.chars().count()..*width {
                    out.push(' ');
                }
                out.push_str(cell);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a bench banner so `cargo bench` output is navigable.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("=== {id} — {caption} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_bits_deterministic_and_binary() {
        let a = pattern_bits(1000, 7);
        let b = pattern_bits(1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x <= 1));
        assert_ne!(a, pattern_bits(1000, 8));
    }

    #[test]
    fn phy_run_on_clean_channel_has_zero_ber() {
        let config = PhyRunConfig {
            payload_bits: 4000,
            frames: 2,
            snr_db: 60.0,
            fading: Fading::None,
            cfo_hz: 0.0,
            ..PhyRunConfig::default()
        };
        let r = run_phy(&config);
        assert_eq!(r.data_ber, 0.0);
        assert_eq!(r.side_ber, 0.0);
        assert!(r.ber_by_symbol.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn phy_run_at_low_snr_has_errors() {
        let config = PhyRunConfig {
            payload_bits: 4000,
            frames: 2,
            snr_db: 10.0,
            ..PhyRunConfig::default()
        };
        let r = run_phy(&config);
        assert!(r.data_ber > 0.0);
    }

    #[test]
    fn mac_runner_smoke() {
        let mut cfg = voip_config(Protocol::Carpool, 10, 1);
        cfg.duration_s = 1.0;
        let r = run_mac(cfg);
        assert!(r.downlink.delivered_frames > 0);
    }

    #[test]
    fn mbps_formatting() {
        assert_eq!(mbps(2_500_000.0), "2.50");
    }

    #[test]
    fn results_table_right_aligns_columns() {
        let mut t = ResultsTable::new(["STAs", "Carpool"]);
        t.row(["10", "1.23"]).row(["30", "12.30"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "STAs Carpool");
        assert_eq!(lines[1], "  10    1.23");
        assert_eq!(lines[2], "  30   12.30");
    }

    #[test]
    fn results_table_pads_short_rows() {
        let mut t = ResultsTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn protocol_table_has_all_five_columns() {
        let t = ResultsTable::for_protocols("STAs");
        let header = t.render();
        for p in SWEEP_PROTOCOLS {
            assert!(header.contains(p.name()), "missing {}", p.name());
        }
    }
}
