//! Section 8 — energy consumption analysis.
//!
//! Paper: with the E-MiLi device power model (TX 1.71 W, RX 1.66 W,
//! idle 1.22 W), Bloom false positives cost at most 5.59% extra RX time
//! (8 receivers), hence at most 5.59% x 5% = 0.28% extra node energy for
//! typical clients — while aggregation lets non-addressed Carpool nodes
//! idle through foreign subframes, saving energy overall.

use carpool::energy::{
    compare_energy, energy_overhead_bound, false_positive_rx_overhead, psm_savings,
    DevicePowerModel, PSM_SLEEP_W,
};
use carpool_bench::{banner, run_mac, voip_config};
use carpool_mac::protocol::Protocol;

fn main() {
    banner("§8 (analysis)", "A-HDR false-positive energy bounds");
    println!(
        "{:>4} {:>16} {:>22}",
        "N", "extra RX time", "extra node energy"
    );
    for n in [4usize, 6, 8] {
        println!(
            "{n:>4} {:>15.2}% {:>21.3}%",
            false_positive_rx_overhead(n, 4) * 100.0,
            energy_overhead_bound(n, 4, 0.90) * 100.0
        );
    }
    println!("paper: ≤5.59% extra RX, ≤0.28% extra node energy at N=8");

    banner(
        "§8 (simulation)",
        "mean client power in the 30-STA VoIP scenario (E-MiLi model)",
    );
    let model = DevicePowerModel::E_MILI;
    let carpool = run_mac(voip_config(Protocol::Carpool, 30, 7));
    let legacy = run_mac(voip_config(Protocol::Dot11, 30, 7));
    let avg = |report: &carpool_mac::SimReport| {
        let shares = &report.sta_airtime;
        let sum: f64 = shares.iter().map(|s| model.mean_power_w(s)).sum();
        sum / shares.len() as f64
    };
    let p_carpool = avg(&carpool);
    let p_dot11 = avg(&legacy);
    println!("mean client power, 802.11 : {p_dot11:.3} W");
    println!("mean client power, Carpool: {p_carpool:.3} W");
    let (b, c, change) = compare_energy(&model, &legacy.sta_airtime[0], &carpool.sta_airtime[0]);
    println!(
        "client 0 energy over {:.0} s: 802.11 {b:.1} J vs Carpool {c:.1} J ({:+.1}%)",
        carpool.duration_s,
        change * 100.0
    );
    let psm = |report: &carpool_mac::SimReport| {
        let shares = &report.sta_airtime;
        shares
            .iter()
            .map(|s| psm_savings(&model, s, PSM_SLEEP_W))
            .sum::<f64>()
            / shares.len() as f64
    };
    println!(
        "potential PSM savings: 802.11 {:.0}%, Carpool {:.0}% (Carpool nodes idle more)",
        psm(&legacy) * 100.0,
        psm(&carpool) * 100.0
    );
    println!("paper: Carpool nodes idle more (A-HDR early drop) and can enter PSM sooner");
    assert!(
        p_carpool <= p_dot11 * 1.01,
        "Carpool should not cost more power"
    );
    assert!(psm(&carpool) >= psm(&legacy) - 0.01, "Carpool PSM upside");
}
