//! Fig. 3 — BER bias in a long frame.
//!
//! Paper setup: a fixed USRP pair 3 m apart, 1000 transmissions of 4 KB
//! QAM64 frames; the per-symbol BER grows with the symbol index because
//! the preamble channel estimate goes stale. Here: the same 4 KB QAM64
//! frames through the time-varying fading link, standard estimation.

use carpool_bench::{banner, run_phy, PhyRunConfig, OFFICE_FADING};
use carpool_phy::mcs::Mcs;
use carpool_phy::rx::Estimation;

fn main() {
    banner(
        "Fig 3",
        "BER bias vs symbol index (4 KB QAM64, standard estimation)",
    );
    let config = PhyRunConfig {
        mcs: Mcs::QAM64_3_4,
        payload_bits: 4 * 1024 * 8,
        estimation: Estimation::Standard,
        snr_db: 27.0,
        fading: OFFICE_FADING,
        frames: 60,
        ..PhyRunConfig::default()
    };
    let result = run_phy(&config);
    let n = result.ber_by_symbol.len();
    println!(
        "frames: {} x {} symbols, SNR {} dB",
        config.frames, n, config.snr_db
    );
    println!("{:>12} {:>12}", "symbol idx", "BER");
    for k in (0..n).step_by((n / 12).max(1)) {
        println!("{k:>12} {:>12.6}", result.ber_by_symbol[k]);
    }
    let head: f64 = result.ber_by_symbol[..n / 10].iter().sum::<f64>() / (n / 10) as f64;
    let tail: f64 = result.ber_by_symbol[n - n / 10..].iter().sum::<f64>() / (n / 10) as f64;
    println!(
        "head BER {head:.6}  tail BER {tail:.6}  bias x{:.1}",
        tail / head.max(1e-12)
    );
    println!("paper: BER rises with symbol index (~2e-4 -> ~1.6e-3 over 110 symbols)");
    assert!(tail > head, "BER bias must be visible");
}
