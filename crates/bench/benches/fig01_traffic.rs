//! Fig. 1 — Traffic statistics in public WLANs.
//!
//! (a) concurrent downlink requests: active STAs per AP over 300 s,
//!     library trace mean 7.63;
//! (b) frame-size CDF of the SIGCOMM and library traces;
//! (c) downlink traffic-volume ratio of the three traces.

use carpool_bench::banner;
use carpool_traffic::activity::{ActivityProcess, LIBRARY_MEAN_ACTIVE};
use carpool_traffic::framesize::FrameSizeDistribution;
use carpool_traffic::stats::{empirical_cdf, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    banner(
        "Fig 1(a)",
        "concurrent downlink requests (active STAs per AP)",
    );
    let series = ActivityProcess::library().sample_series(300, &mut rng);
    let mean = series.iter().sum::<usize>() as f64 / series.len() as f64;
    println!("paper: fluctuates ~2..14, mean 7.63 over 300 s");
    print!("measured series (1 sample / 10 s):");
    for v in series.iter().step_by(10) {
        print!(" {v}");
    }
    println!();
    println!("measured mean over 300 s: {mean:.2} (target {LIBRARY_MEAN_ACTIVE})");

    banner("Fig 1(b)", "frame size CDF (SIGCOMM vs library)");
    let thresholds = [100usize, 200, 300, 600, 1000, 1400, 1500];
    println!("{:>10} {:>10} {:>10}", "bytes", "SIGCOMM", "Library");
    let mut rng2 = StdRng::seed_from_u64(2);
    let sig: Vec<usize> = (0..100_000)
        .map(|_| FrameSizeDistribution::sigcomm().sample(&mut rng2))
        .collect();
    let lib: Vec<usize> = (0..100_000)
        .map(|_| FrameSizeDistribution::library().sample(&mut rng2))
        .collect();
    let sig_cdf = empirical_cdf(&sig, &thresholds);
    let lib_cdf = empirical_cdf(&lib, &thresholds);
    for ((t, s), l) in thresholds.iter().zip(sig_cdf).zip(lib_cdf) {
        println!("{t:>10} {s:>10.3} {l:>10.3}");
    }
    println!("paper anchors: >50% (SIGCOMM) and >90% (library) below 300 B");

    banner("Fig 1(c)", "ratio of downlink traffic volume");
    println!("{:>12} {:>10}", "trace", "downlink");
    for t in Trace::ALL {
        println!("{:>12} {:>9.1}%", t.name(), t.downlink_ratio() * 100.0);
    }
    println!("paper: 80% / 83.4% / 89.2%");
}
