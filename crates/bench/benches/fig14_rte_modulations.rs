//! Fig. 14 — BER of RTE vs standard estimation per modulation.
//!
//! Paper: at power magnitudes 0.05 and 0.2, RTE achieves several times
//! lower BER for QAM16/QAM64 while gains for BPSK/QPSK are marginal
//! (higher-order constellations are more sensitive to channel drift).

use carpool_bench::{banner, run_phy, PhyRunConfig, OFFICE_FADING};
use carpool_channel::link::power_magnitude_to_snr_db;
use carpool_phy::convolutional::CodeRate;
use carpool_phy::mcs::Mcs;
use carpool_phy::modulation::Modulation;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::Estimation;

fn main() {
    banner("Fig 14", "BER of RTE vs standard per modulation");
    for power in [0.05, 0.2] {
        println!("--- power magnitude {power} ---");
        println!(
            "{:>8} {:>13} {:>13} {:>8}",
            "modul.", "Standard", "RTE", "gain"
        );
        for m in Modulation::ALL {
            let base = PhyRunConfig {
                mcs: Mcs::new(m, CodeRate::Half),
                payload_bits: 4 * 1024 * 8,
                snr_db: power_magnitude_to_snr_db(power),
                fading: OFFICE_FADING,
                frames: 30,
                ..PhyRunConfig::default()
            };
            let std = run_phy(&PhyRunConfig {
                estimation: Estimation::Standard,
                ..base
            });
            let rte = run_phy(&PhyRunConfig {
                estimation: Estimation::Rte(CalibrationRule::Average),
                ..base
            });
            let gain = if std.data_ber > 1e-6 {
                format!("{:.1}x", std.data_ber / rte.data_ber.max(1e-6))
            } else {
                "—".to_string() // both at the measurement floor
            };
            println!(
                "{:>8} {:>13.2e} {:>13.2e} {:>8}",
                m.to_string(),
                std.data_ber,
                rte.data_ber,
                gain
            );
        }
    }
    println!("paper: several-fold BER reduction for QAM16/QAM64, marginal for BPSK/QPSK");
}
