//! Fig. 17 — Goodput under latency requirements and frame sizes.
//!
//! (a) deadline-bounded goodput vs the traffic's latency requirement
//!     (10–200 ms), Carpool vs A-MPDU, 30 STAs, background uplink as in
//!     Fig. 16 — paper: 1.9–9.8x gain, shrinking as the bound loosens;
//! (b) goodput vs fixed downlink frame size (100–1500 B) at a 10 ms
//!     bound — paper: 2.8–3.6x over A-MPDU, 5–6.4x over 802.11.

use carpool_bench::{banner, run_mac, ResultsTable};
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{AggregationWait, DownlinkTraffic, SimConfig, UplinkTraffic};

/// Paper setup (Section 7.2.2): 30 STAs, the Fig. 16 uplink background,
/// downlink CBR at the VoIP packet rate with a per-frame latency
/// requirement. Expired frames are dropped; the latency bound also ends
/// the aggregation process early ("the aggregation process is ended when
/// the size of the buffered frames reaches the maximum frame size or the
/// delay of the oldest frame reaches the maximum latency limit").
fn cbr_config(
    protocol: Protocol,
    bytes: usize,
    deadline_s: f64,
    uplink_scale: f64,
    seed: u64,
) -> SimConfig {
    SimConfig {
        protocol,
        num_stas: 30,
        duration_s: 6.0,
        seed,
        downlink: DownlinkTraffic::Cbr {
            interval_s: 0.010,
            bytes,
        },
        // Uplink contention at the Fig. 16 level: the background scale
        // stands in for the STAs' own uplink streams (VoIP plus
        // TCP/UDP), which the paper keeps while replacing the downlink.
        uplink: Some(UplinkTraffic {
            tcp_fraction: 0.5,
            rate_scale: uplink_scale,
        }),
        deadline: Some(deadline_s),
        drop_expired_s: Some(deadline_s),
        aggregation_wait: Some(AggregationWait {
            max_latency_s: deadline_s * 0.5,
            max_bytes: 65_535,
        }),
        bidirectional_voip: false,
        ..SimConfig::default()
    }
}

fn in_deadline_mbps(cfg: SimConfig) -> f64 {
    let r = run_mac(cfg);
    r.downlink.in_deadline_goodput_bps(r.duration_s) / 1e6
}

fn main() {
    banner(
        "Fig 17(a)",
        "deadline-bounded goodput vs latency requirement (120 B VoIP-size frames, 30 STAs)",
    );
    let mut table = ResultsTable::new(["deadline ms", "Carpool", "A-MPDU", "gain"]);
    for deadline_ms in [10.0, 50.0, 100.0, 150.0, 200.0] {
        let d = deadline_ms / 1e3;
        // Heavier uplink (the STAs' own VoIP + background streams) keeps
        // the cell saturated as in the paper's Fig. 16 operating point.
        let carpool = in_deadline_mbps(cbr_config(Protocol::Carpool, 120, d, 4.0, 5));
        let ampdu = in_deadline_mbps(cbr_config(Protocol::Ampdu, 120, d, 4.0, 5));
        table.row([
            format!("{deadline_ms}"),
            format!("{carpool:.2}"),
            format!("{ampdu:.2}"),
            format!("{:.1}x", carpool / ampdu.max(1e-9)),
        ]);
    }
    table.print();
    println!("paper: Carpool 1.9-9.8x A-MPDU; gain shrinks as the bound loosens");

    banner(
        "Fig 17(b)",
        "goodput vs downlink frame size at a 10 ms latency requirement",
    );
    let mut table = ResultsTable::new([
        "bytes",
        "Carpool",
        "A-MPDU",
        "802.11",
        "vs A-MPDU",
        "vs 802.11",
    ]);
    for bytes in [100usize, 200, 400, 800, 1500] {
        let d = 0.010;
        let carpool = in_deadline_mbps(cbr_config(Protocol::Carpool, bytes, d, 2.0, 9));
        let ampdu = in_deadline_mbps(cbr_config(Protocol::Ampdu, bytes, d, 2.0, 9));
        let dot11 = in_deadline_mbps(cbr_config(Protocol::Dot11, bytes, d, 2.0, 9));
        table.row([
            bytes.to_string(),
            format!("{carpool:.2}"),
            format!("{ampdu:.2}"),
            format!("{dot11:.2}"),
            format!("{:.1}x", carpool / ampdu.max(1e-9)),
            format!("{:.1}x", carpool / dot11.max(1e-9)),
        ]);
    }
    table.print();
    println!("paper: 2.8-3.6x over A-MPDU and 5-6.4x over 802.11 across frame sizes");
}
