//! Fig. 12 — Reliability of the phase offset side channel.
//!
//! Paper: 1 KB frames per power setting; the BER of side-channel bits
//! beats BPSK (1-bit offsets) and QPSK (2-bit offsets) data subcarriers
//! because each offset is demodulated from four pilot subcarriers.

use carpool_bench::{banner, run_phy, Fading, PhyRunConfig};
use carpool_channel::link::power_magnitude_to_snr_db;
use carpool_phy::mcs::Mcs;
use carpool_phy::rx::Estimation;
use carpool_phy::sidechannel::PhaseOffsetMod;
use carpool_phy::tx::SideChannelConfig;

const POWERS: [f64; 5] = [0.0125, 0.025, 0.05, 0.1, 0.2];

fn run(power: f64, mcs: Mcs, modulation: PhaseOffsetMod) -> (f64, f64) {
    let config = PhyRunConfig {
        mcs,
        payload_bits: 1024 * 8,
        side_channel: Some(SideChannelConfig {
            modulation,
            group_symbols: 1,
        }),
        estimation: Estimation::Standard,
        // Far-location receiver: 10 dB below the Fig. 11 operating
        // point, so low-order modulations show measurable error rates
        // (the paper's Fig. 12 y-axis tops out at ~1.6e-4).
        snr_db: power_magnitude_to_snr_db(power) - 10.0,
        fading: Fading::None,
        cfo_hz: 100.0,
        frames: 30,
        ..PhyRunConfig::default()
    };
    let r = run_phy(&config);
    (r.side_ber, r.data_ber)
}

fn main() {
    banner("Fig 12", "side-channel BER vs data-subcarrier BER");
    println!(
        "{:>9} {:>14} {:>12} {:>14} {:>12}",
        "power", "1-bit offset", "BPSK data", "2-bit offset", "QPSK data"
    );
    for p in POWERS {
        let (one_bit, bpsk) = run(p, Mcs::BPSK_1_2, PhaseOffsetMod::OneBit);
        let (two_bit, qpsk) = run(p, Mcs::QPSK_1_2, PhaseOffsetMod::TwoBit);
        println!("{p:>9} {one_bit:>14.2e} {bpsk:>12.2e} {two_bit:>14.2e} {qpsk:>12.2e}");
    }
    println!("paper: offsets decode more reliably than same-order data bits");
}
