//! Fig. 15 — Goodput and latency for VoIP traffic.
//!
//! Paper: two-way Brady VoIP per STA, 10–30 STAs, two APs; Carpool keeps
//! growing linearly while A-MPDU tapers and 802.11 collapses
//! (0.55 → 0.18 Mbit/s from 22 to 30 STAs); WiFox sits in between.

use carpool_bench::{banner, run_mac, voip_config, ResultsTable, SWEEP_PROTOCOLS};

fn main() {
    banner(
        "Fig 15(a)",
        "downlink goodput (Mbit/s) for VoIP vs number of STAs",
    );
    let mut goodput = ResultsTable::for_protocols("STAs");
    let mut latency = ResultsTable::for_protocols("STAs");
    for n in (10..=30).step_by(2) {
        let mut goodput_row = vec![n.to_string()];
        let mut latency_row = vec![n.to_string()];
        for p in SWEEP_PROTOCOLS {
            let report = run_mac(voip_config(p, n, 1));
            goodput_row.push(format!("{:.2}", report.downlink_goodput_mbps()));
            latency_row.push(format!("{:.3}", report.downlink_delay_s()));
        }
        goodput.row(goodput_row);
        latency.row(latency_row);
    }
    goodput.print();

    banner(
        "Fig 15(b)",
        "downlink latency (s) for VoIP vs number of STAs",
    );
    latency.print();
    println!("paper: Carpool grows ~linearly with low delay; A-MPDU tapers after ~22;");
    println!("       802.11 collapses to ~0.18 Mbit/s at 30 STAs; WiFox in between");
}
