//! Fig. 15 — Goodput and latency for VoIP traffic.
//!
//! Paper: two-way Brady VoIP per STA, 10–30 STAs, two APs; Carpool keeps
//! growing linearly while A-MPDU tapers and 802.11 collapses
//! (0.55 → 0.18 Mbit/s from 22 to 30 STAs); WiFox sits in between.

use carpool_bench::{banner, run_mac, voip_config};
use carpool_mac::protocol::Protocol;

fn main() {
    banner("Fig 15(a)", "downlink goodput (Mbit/s) for VoIP vs number of STAs");
    let protocols = [
        Protocol::Carpool,
        Protocol::MuAggregation,
        Protocol::Ampdu,
        Protocol::Dot11,
        Protocol::Wifox,
    ];
    print!("{:>6}", "STAs");
    for p in protocols {
        print!(" {:>14}", p.name());
    }
    println!();
    let mut delays: Vec<(usize, Vec<f64>)> = Vec::new();
    for n in (10..=30).step_by(2) {
        print!("{n:>6}");
        let mut row_delays = Vec::new();
        for p in protocols {
            let report = run_mac(voip_config(p, n, 1));
            print!(" {:>14.2}", report.downlink_goodput_mbps());
            row_delays.push(report.downlink_delay_s());
        }
        println!();
        delays.push((n, row_delays));
    }

    banner("Fig 15(b)", "downlink latency (s) for VoIP vs number of STAs");
    print!("{:>6}", "STAs");
    for p in protocols {
        print!(" {:>14}", p.name());
    }
    println!();
    for (n, row) in delays {
        print!("{n:>6}");
        for d in row {
            print!(" {d:>14.3}");
        }
        println!();
    }
    println!("paper: Carpool grows ~linearly with low delay; A-MPDU tapers after ~22;");
    println!("       802.11 collapses to ~0.18 Mbit/s at 30 STAs; WiFox in between");
}
