//! Fig. 16 — Goodput and latency with SIGCOMM'08 UDP/TCP background.
//!
//! Paper: the VoIP scenario plus uplink background traffic injected per
//! the SIGCOMM'08 statistics (TCP 47 ms / UDP 88 ms inter-arrivals,
//! Fig. 1(b) frame sizes). Headline numbers: Carpool reaches 1.12–3.2x
//! the goodput of A-MPDU from 20 to 30 STAs, keeps delay below ~0.2 s
//! while A-MPDU and 802.11 suffer ~0.8 s and ~1.5 s.

use carpool_bench::{banner, run_mac, voip_config, ResultsTable, SWEEP_PROTOCOLS};
use carpool_mac::sim::UplinkTraffic;

fn main() {
    banner(
        "Fig 16(a)",
        "downlink goodput (Mbit/s) with UDP/TCP background traffic",
    );
    let mut goodput = ResultsTable::for_protocols("STAs");
    let mut latency = ResultsTable::for_protocols("STAs");
    let mut carpool_vs_ampdu: Vec<(usize, f64)> = Vec::new();
    for n in (10..=30).step_by(2) {
        let mut goodput_row = vec![n.to_string()];
        let mut latency_row = vec![n.to_string()];
        let mut goodputs = Vec::new();
        for p in SWEEP_PROTOCOLS {
            let mut cfg = voip_config(p, n, 3);
            cfg.uplink = Some(UplinkTraffic::default());
            let report = run_mac(cfg);
            goodput_row.push(format!("{:.2}", report.downlink_goodput_mbps()));
            latency_row.push(format!("{:.3}", report.downlink_delay_s()));
            goodputs.push(report.downlink_goodput_mbps());
        }
        goodput.row(goodput_row);
        latency.row(latency_row);
        carpool_vs_ampdu.push((n, goodputs[0] / goodputs[2].max(1e-9)));
    }
    goodput.print();

    banner("Fig 16(b)", "downlink latency (s) with background traffic");
    latency.print();

    println!();
    println!("Carpool / A-MPDU goodput ratio (paper: 1.12x at 20 STAs up to 3.2x at 30):");
    for (n, ratio) in carpool_vs_ampdu {
        if n >= 20 {
            println!("  {n} STAs: {ratio:.2}x");
        }
    }
}
