//! Ablation — Bloom A-HDR vs explicit MAC-address headers.
//!
//! Reproduces the paper's Section 3 overhead example (eight receivers'
//! addresses at the base rate cost ~3x the payload airtime of 1500 B at
//! 600 Mbit/s) and measures the MAC-level effect by comparing Carpool
//! (A-HDR) with MU-Aggregation (explicit addresses) under identical
//! estimation quality.

use carpool_bench::{banner, run_mac, voip_config};
use carpool_frame::airtime::{ahdr_airtime, CONTROL_MCS};
use carpool_mac::protocol::Protocol;

fn main() {
    banner(
        "Ablation",
        "aggregation header encoding: Bloom A-HDR vs explicit addresses",
    );

    // Airtime arithmetic (paper Section 3 example, adapted to this PHY).
    println!("header airtime for N receivers at the base rate:");
    println!(
        "{:>4} {:>14} {:>14} {:>8}",
        "N", "explicit", "A-HDR", "saving"
    );
    for n in [2usize, 4, 8] {
        let explicit = CONTROL_MCS.airtime_for_bits(n * 48);
        let ahdr = ahdr_airtime();
        println!(
            "{n:>4} {:>11.1} µs {:>11.1} µs {:>7.0}%",
            explicit * 1e6,
            ahdr * 1e6,
            (1.0 - ahdr / explicit) * 100.0
        );
    }

    // MAC-level effect: same multi-user selection, different headers.
    // (MU-Aggregation also lacks RTE; its extra loss is part of the
    // protocol, so this comparison bounds the header effect.)
    println!();
    println!("30-STA VoIP scenario, downlink goodput:");
    for p in [Protocol::Carpool, Protocol::MuAggregation] {
        let r = run_mac(voip_config(p, 30, 21));
        println!(
            "  {:<16} {:>6.2} Mbit/s (mean delay {:.3} s)",
            p.name(),
            r.downlink_goodput_mbps(),
            r.downlink_delay_s()
        );
    }
    println!("paper: per-receiver addresses at the lowest rate do not scale with N");
}
