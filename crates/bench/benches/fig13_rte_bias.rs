//! Fig. 13 — BER bias of real-time estimation vs standard estimation.
//!
//! Paper: 4 KB frames at power 0.2, receivers at varied locations; RTE
//! largely flattens the BER-vs-symbol-index curve for QAM64 and QAM16
//! (65% / 27% overall BER reduction respectively).

use carpool_bench::{banner, run_phy, PhyRunConfig, OFFICE_FADING};
use carpool_phy::mcs::Mcs;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::Estimation;

fn curves(mcs: Mcs, snr_db: f64) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let base = PhyRunConfig {
        mcs,
        payload_bits: 4 * 1024 * 8,
        snr_db,
        fading: OFFICE_FADING,
        frames: 50,
        ..PhyRunConfig::default()
    };
    let std = run_phy(&PhyRunConfig {
        estimation: Estimation::Standard,
        ..base
    });
    let rte = run_phy(&PhyRunConfig {
        estimation: Estimation::Rte(CalibrationRule::Average),
        ..base
    });
    (
        std.ber_by_symbol,
        rte.ber_by_symbol,
        std.data_ber,
        rte.data_ber,
    )
}

fn main() {
    banner(
        "Fig 13",
        "BER bias: RTE vs standard (4 KB frames, power 0.2 regime)",
    );
    // Operating SNRs differ per modulation, standing in for the varied
    // receiver locations of the paper's measurement campaign.
    for (mcs, snr_db) in [(Mcs::QAM64_3_4, 27.0), (Mcs::QAM16_1_2, 19.0)] {
        let (std_curve, rte_curve, std_ber, rte_ber) = curves(mcs, snr_db);
        println!("--- {mcs} ---");
        println!("{:>12} {:>12} {:>12}", "symbol idx", "Standard", "RTE");
        let n = std_curve.len();
        for k in (0..n).step_by((n / 10).max(1)) {
            println!("{k:>12} {:>12.6} {:>12.6}", std_curve[k], rte_curve[k]);
        }
        let reduction = (std_ber - rte_ber) / std_ber.max(1e-12) * 100.0;
        println!(
            "overall BER: standard {std_ber:.2e}, RTE {rte_ber:.2e} (reduction {reduction:.0}%)"
        );
        assert!(rte_ber < std_ber, "RTE must reduce BER for {mcs}");
    }
    println!("paper: RTE cuts QAM64 BER by ~65% and QAM16 by ~27%, flattening the tail");
}
