//! Ablation — soft- vs hard-decision Viterbi decoding.
//!
//! Not a paper figure: the paper's GNURadio pipeline decodes hard. This
//! extension quantifies what an LLR-based receiver would add on top of
//! Carpool — classically ~2 dB on AWGN — by sweeping SNR and comparing
//! post-FEC frame error rates for the two decoders on identical
//! waveforms.

use carpool_bench::{banner, pattern_bits};
use carpool_channel::link::LinkChannel;
use carpool_phy::mcs::Mcs;
use carpool_phy::rx::{receive, receive_soft, Estimation, SectionLayout};
use carpool_phy::tx::{transmit, SectionSpec};

fn fer(mcs: Mcs, snr_db: f64, frames: usize, soft: bool) -> f64 {
    let spec = SectionSpec::payload(pattern_bits(1500 * 8, 3), mcs);
    let tx = transmit(std::slice::from_ref(&spec)).expect("valid spec");
    let layouts = [SectionLayout::of(&spec)];
    let mut errors = 0usize;
    for f in 0..frames {
        let mut link = LinkChannel::builder()
            .snr_db(snr_db)
            .cfo_hz(100.0)
            .seed(7000 + f as u64)
            .build();
        let rx_samples = link.transmit(&tx.samples);
        let rx = if soft {
            receive_soft(&rx_samples, &layouts, Estimation::Standard)
        } else {
            receive(&rx_samples, &layouts, Estimation::Standard)
        }
        .expect("lengths match");
        if rx.sections[0].bits != spec.bits {
            errors += 1;
        }
    }
    errors as f64 / frames as f64
}

fn main() {
    banner(
        "Ablation",
        "hard vs soft Viterbi: 1500 B frame error rate over SNR (AWGN + CFO)",
    );
    for (mcs, snrs) in [
        (Mcs::QPSK_1_2, [4.0, 5.0, 6.0, 7.0, 8.0]),
        (Mcs::QAM64_3_4, [22.0, 23.0, 24.0, 25.0, 26.0]),
    ] {
        println!("--- {mcs} ---");
        println!("{:>8} {:>10} {:>10}", "SNR dB", "hard FER", "soft FER");
        for snr in snrs {
            let hard = fer(mcs, snr, 40, false);
            let soft = fer(mcs, snr, 40, true);
            println!("{snr:>8} {hard:>10.3} {soft:>10.3}");
        }
    }
    println!("soft decoding shifts the FER waterfall left by ~1.5-2 dB");
}
