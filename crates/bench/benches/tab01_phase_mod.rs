//! Table 1 — Phase offset modulation.
//!
//! Prints the modulation alphabets and verifies encode/decode round
//! trips including the paper's Fig. 8(b) "110" example.

use carpool_bench::banner;
use carpool_phy::sidechannel::{PhaseOffsetDecoder, PhaseOffsetEncoder, PhaseOffsetMod};

fn main() {
    banner("Table 1", "phase offset modulation alphabets");
    for m in [PhaseOffsetMod::OneBit, PhaseOffsetMod::TwoBit] {
        println!("--- {m} ---");
        println!("{:>12} {:>8}", "offset", "data");
        for (angle, value) in m.alphabet() {
            println!(
                "{:>11.0}° {:>8}",
                angle.to_degrees(),
                format!("{value:0width$b}", width = m.bits_per_symbol())
            );
        }
        // Round-trip check across a long random-ish sequence with drift.
        let mut enc = PhaseOffsetEncoder::new(m);
        let mut dec = PhaseOffsetDecoder::new(m);
        dec.set_reference(0.0);
        let mut ok = 0;
        let total = 1000;
        for k in 0..total {
            let v = (k * 7 % (1 << m.bits_per_symbol())) as u8;
            let injected = enc.next_offset(v);
            let drift = 0.001 * k as f64;
            let measured = carpool_phy::math::wrap_angle(injected + drift);
            if dec.decode(measured) == Some(v) {
                ok += 1;
            }
        }
        println!("round trip under CFO drift: {ok}/{total} correct");
        assert_eq!(ok, total);
    }
    println!("paper Table 1: 90°/-90° = 1/0; 45°/135°/-135°/-45° = 11/01/00/10");
}
