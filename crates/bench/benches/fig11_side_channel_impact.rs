//! Fig. 11 — Impact of the phase offset side channel on data decoding.
//!
//! Paper: BER of the standard PHY vs the PHY with the 2-bit side channel
//! over transmit power 0.0125–0.2 for BPSK/QPSK/QAM16/QAM64; differences
//! stay within a few percent, i.e. injection is harmless.

use carpool_bench::{banner, run_phy, Fading, PhyRunConfig};
use carpool_channel::link::power_magnitude_to_snr_db;
use carpool_phy::convolutional::CodeRate;
use carpool_phy::mcs::Mcs;
use carpool_phy::modulation::Modulation;
use carpool_phy::rx::Estimation;

const POWERS: [f64; 5] = [0.0125, 0.025, 0.05, 0.1, 0.2];

fn mcs_for(m: Modulation) -> Mcs {
    Mcs::new(m, CodeRate::Half)
}

fn main() {
    banner(
        "Fig 11",
        "data BER with vs without phase offset side channel (static link)",
    );
    println!(
        "{:>8} {:>9} {:>13} {:>13} {:>9}",
        "modul.", "power", "w/ offset", "standard", "ratio"
    );
    for m in Modulation::ALL {
        for p in POWERS {
            let base = PhyRunConfig {
                mcs: mcs_for(m),
                payload_bits: 1024 * 8,
                estimation: Estimation::Standard,
                snr_db: power_magnitude_to_snr_db(p),
                fading: Fading::None,
                cfo_hz: 100.0,
                frames: 25,
                ..PhyRunConfig::default()
            };
            let with = run_phy(&base);
            let without = run_phy(&PhyRunConfig {
                side_channel: None,
                ..base
            });
            let ratio = if without.data_ber > 0.0 {
                with.data_ber / without.data_ber
            } else if with.data_ber == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
            println!(
                "{:>8} {:>9} {:>13.2e} {:>13.2e} {:>9.3}",
                m.to_string(),
                p,
                with.data_ber,
                without.data_ber,
                ratio
            );
        }
    }
    println!("paper: BER differences between the two PHYs within ~1-5.5%");
}
