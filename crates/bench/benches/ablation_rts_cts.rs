//! Ablation — multicast RTS/CTS under hidden terminals (paper Fig. 7).
//!
//! "In dense environments, it is likely there exist hidden terminals...
//! To mitigate hidden terminal issues, we adopt a mechanism based on the
//! RTS/CTS signaling": one multicast RTS carrying the A-HDR, answered by
//! sequential CTSs. This ablation sweeps the fraction of mutually hidden
//! STA pairs and compares Carpool with and without the signalling.

use carpool_bench::{banner, run_mac, voip_config};
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::{HiddenTerminals, UplinkTraffic};

fn main() {
    banner(
        "Ablation",
        "RTS/CTS vs hidden terminals (Carpool, 20 STAs, uplink background)",
    );
    println!(
        "{:>14} {:>12} {:>12} {:>14} {:>14}",
        "hidden pairs", "no RTS up", "RTS up", "no RTS losses", "RTS losses"
    );
    for fraction in [0.0, 0.2, 0.5] {
        let mut results = Vec::new();
        for use_rts in [false, true] {
            let mut cfg = voip_config(Protocol::Carpool, 20, 13);
            cfg.uplink = Some(UplinkTraffic::default());
            cfg.use_rts_cts = use_rts;
            if fraction > 0.0 {
                cfg.hidden_terminals = Some(HiddenTerminals { fraction });
            }
            let r = run_mac(cfg);
            results.push((
                r.uplink.goodput_bps(r.duration_s) / 1e6,
                r.channel.hidden_collisions,
            ));
        }
        println!(
            "{:>13.0}% {:>9.2} Mb {:>9.2} Mb {:>14} {:>14}",
            fraction * 100.0,
            results[0].0,
            results[1].0,
            results[0].1,
            results[1].1
        );
    }
    println!("multicast RTS/CTS halves hidden losses; its fixed signalling cost only");
    println!("pays off when the protected payload is long (large aggregates), which is");
    println!("why 802.11 leaves RTS/CTS off for short frames");
}
