//! Ablation — time-fairness scheduling (paper Section 8, Fairness).
//!
//! The paper sketches a time-occupancy scheduler on top of Carpool:
//! "the scheduling module in AP periodically checks the time occupancy
//! table and assigns higher priority to STAs with smaller time
//! occupancy". This ablation compares FIFO against that scheduler in a
//! heterogeneous cell (half the stations on a slow link), reporting
//! Jain's fairness index over per-station delivered bytes.

use carpool_bench::{banner, run_mac, voip_config};
use carpool_mac::protocol::Protocol;
use carpool_mac::sim::SchedulerPolicy;

fn main() {
    banner(
        "Ablation",
        "FIFO vs time-fair scheduling in a heterogeneous 20-STA cell",
    );
    // Half the stations near (54 Mbit/s), half far (6 Mbit/s): slow
    // stations eat airtime under FIFO.
    let snrs: Vec<f64> = (0..20)
        .map(|k| if k % 2 == 0 { 30.0 } else { 6.0 })
        .collect();
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "scheduler", "goodput", "delay", "fast STAs", "slow STAs", "Jain"
    );
    let mut delays = Vec::new();
    for (name, scheduler) in [
        ("FIFO", SchedulerPolicy::Fifo),
        ("time-fair", SchedulerPolicy::TimeFair),
    ] {
        let mut cfg = voip_config(Protocol::Carpool, 20, 4);
        cfg.per_sta_snr_db = Some(snrs.clone());
        cfg.scheduler = scheduler;
        let r = run_mac(cfg);
        let half_delay = |parity: usize| {
            let ms: Vec<&carpool_mac::FlowMetrics> = r
                .per_sta_downlink
                .iter()
                .enumerate()
                .filter(|(k, _)| k % 2 == parity)
                .map(|(_, m)| m)
                .collect();
            ms.iter().map(|m| m.mean_delay()).sum::<f64>() / ms.len() as f64
        };
        println!(
            "{name:>10} {:>9.2} Mb {:>8.3} s {:>8.3} s {:>8.3} s {:>8.3}",
            r.downlink_goodput_mbps(),
            r.downlink_delay_s(),
            half_delay(0),
            half_delay(1),
            r.downlink_fairness()
        );
        delays.push(r.downlink_delay_s());
    }
    // All offered traffic is eventually served under both disciplines
    // (Jain over bytes = 1); the scheduler's win is service latency.
    assert!(
        delays[1] <= delays[0] * 1.1,
        "time-fair must not worsen delay: {delays:?}"
    );
    println!("delivered bytes stay fair under both; the occupancy table cuts the");
    println!("queueing delay by serving under-served stations first");
}
