//! Ablation — RTE calibration rule (paper Eq. 3 vs alternatives).
//!
//! The paper folds each data-pilot estimate with an equal-weight
//! average, `H̃ = (H̃ + Ĥ)/2`. This ablation compares that rule against
//! full replacement and EWMA smoothing on the Fig. 13 workload.

use carpool_bench::{banner, run_phy, PhyRunConfig, OFFICE_FADING};
use carpool_phy::mcs::Mcs;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::Estimation;

fn main() {
    banner("Ablation", "RTE folding rule on 4 KB QAM64 frames");
    let base = PhyRunConfig {
        mcs: Mcs::QAM64_3_4,
        payload_bits: 4 * 1024 * 8,
        snr_db: 27.0,
        fading: OFFICE_FADING,
        frames: 40,
        ..PhyRunConfig::default()
    };
    let rules: [(&str, Estimation); 5] = [
        ("standard (no RTE)", Estimation::Standard),
        ("Eq.3 average", Estimation::Rte(CalibrationRule::Average)),
        ("replace", Estimation::Rte(CalibrationRule::Replace)),
        ("EWMA a=0.25", Estimation::Rte(CalibrationRule::Ewma(0.25))),
        ("EWMA a=0.75", Estimation::Rte(CalibrationRule::Ewma(0.75))),
    ];
    println!("{:>20} {:>13}", "rule", "raw BER");
    let mut results = Vec::new();
    for (name, estimation) in rules {
        let r = run_phy(&PhyRunConfig { estimation, ..base });
        println!("{name:>20} {:>13.2e}", r.data_ber);
        results.push((name, r.data_ber));
    }
    let standard = results[0].1;
    let average = results[1].1;
    assert!(
        average < standard,
        "Eq.3 averaging must beat preamble-only estimation"
    );
    println!(
        "Eq.3 average reduces BER by {:.0}% vs standard",
        (1.0 - average / standard) * 100.0
    );
}
