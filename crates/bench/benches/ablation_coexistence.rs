//! Ablation — incremental Carpool deployment (paper Section 4.3).
//!
//! Carpool is "an optional mechanism": stations negotiate it at
//! association and legacy clients keep working. This ablation sweeps
//! the fraction of Carpool-capable stations in the crowded VoIP cell
//! and shows graceful, monotone gains with adoption — legacy stations
//! are never starved.

use carpool_bench::{banner, run_mac, voip_config};
use carpool_mac::protocol::Protocol;

fn main() {
    banner(
        "Ablation",
        "incremental deployment: goodput vs Carpool adoption (30 STAs, VoIP)",
    );
    println!(
        "{:>10} {:>12} {:>10} {:>14} {:>14}",
        "adoption", "goodput", "delay", "frames/TXOP", "legacy rx s"
    );
    let mut last = 0.0;
    for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = voip_config(Protocol::Carpool, 30, 2);
        cfg.carpool_fraction = fraction;
        let r = run_mac(cfg);
        let legacy_start = (fraction * 30.0).ceil() as usize;
        let legacy_rx: f64 = r.sta_airtime[legacy_start.min(30)..]
            .iter()
            .map(|s| s.rx_s)
            .sum();
        println!(
            "{:>9.0}% {:>9.2} Mb {:>8.3} s {:>14.2} {:>14.2}",
            fraction * 100.0,
            r.downlink_goodput_mbps(),
            r.downlink_delay_s(),
            r.channel.mean_aggregation(),
            legacy_rx
        );
        if fraction > 0.0 {
            assert!(
                r.downlink_goodput_mbps() >= last * 0.9,
                "adoption must not hurt"
            );
        }
        last = r.downlink_goodput_mbps();
    }
    println!("adoption pays incrementally; legacy clients keep their service");
}
