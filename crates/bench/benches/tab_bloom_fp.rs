//! Section 4.1 analysis — A-HDR false positives and header overhead.
//!
//! Paper: with the optimal h = (48/N) ln 2, the false positive ratio
//! spans 0.31%–5.59% for 4–8 receivers; the implementation fixes h = 4;
//! the A-HDR costs 12.5% of listing eight 48-bit MAC addresses.

use carpool_bench::banner;
use carpool_bloom::analysis::{
    ahdr_overhead_vs_explicit, false_positive_ratio, measure_false_positive_ratio,
    optimal_false_positive_ratio, optimal_hash_count,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("§4.1", "coded Bloom filter false positive analysis");
    println!(
        "{:>4} {:>10} {:>14} {:>14} {:>14}",
        "N", "opt h", "r_FP @ opt h", "r_FP @ h=4", "measured h=4"
    );
    let mut rng = StdRng::seed_from_u64(11);
    for n in 1..=8usize {
        let measured = measure_false_positive_ratio(4, n, 30_000, &mut rng);
        println!(
            "{n:>4} {:>10.2} {:>13.2}% {:>13.2}% {:>13.2}%",
            optimal_hash_count(n),
            optimal_false_positive_ratio(n) * 100.0,
            false_positive_ratio(4, n) * 100.0,
            measured * 100.0
        );
    }
    println!();
    println!(
        "A-HDR overhead vs explicit 8 x 48-bit addresses: {:.1}% (paper: 12.5%)",
        ahdr_overhead_vs_explicit(8) * 100.0
    );
    println!("paper: r_FP ranges 0.31% (N=4) to 5.59% (N=8) at the optimal h");

    let low = optimal_false_positive_ratio(4);
    let high = optimal_false_positive_ratio(8);
    assert!((low - 0.0031).abs() < 0.0005);
    assert!((high - 0.0559).abs() < 0.001);
}
