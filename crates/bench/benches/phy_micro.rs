//! Criterion micro-benchmarks of the PHY primitives.
//!
//! Not a paper figure — these quantify the software cost of the blocks
//! Carpool adds (A-HDR generation/check, phase offset encode/decode)
//! against the standard pipeline stages, echoing the Section 8
//! "processing latency" discussion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use carpool_bench::pattern_bits;
use carpool_bloom::AggregationHeader;
use carpool_phy::convolutional::{decode, encode, CodeRate};
use carpool_phy::fft::{fft_in_place, ifft_in_place};
use carpool_phy::interleaver::Interleaver;
use carpool_phy::math::Complex64;
use carpool_phy::mcs::Mcs;
use carpool_phy::modulation::Modulation;
use carpool_phy::rx::{receive, Estimation, SectionLayout};
use carpool_phy::sidechannel::{PhaseOffsetDecoder, PhaseOffsetEncoder, PhaseOffsetMod};
use carpool_phy::tx::{transmit, SectionSpec};

fn bench_fft(c: &mut Criterion) {
    let input: Vec<Complex64> = (0..64)
        .map(|k| Complex64::cis(k as f64 * 0.11))
        .collect();
    c.bench_function("fft64_forward", |b| {
        b.iter_batched(
            || input.clone(),
            |mut buf| fft_in_place(black_box(&mut buf)).expect("64 is a power of two"),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("fft64_inverse", |b| {
        b.iter_batched(
            || input.clone(),
            |mut buf| ifft_in_place(black_box(&mut buf)).expect("64 is a power of two"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_coding(c: &mut Criterion) {
    let bits = pattern_bits(1000, 3);
    let coded = encode(&bits, CodeRate::Half);
    c.bench_function("convolutional_encode_1kbit", |b| {
        b.iter(|| encode(black_box(&bits), CodeRate::Half))
    });
    c.bench_function("viterbi_decode_1kbit", |b| {
        b.iter(|| decode(black_box(&coded), bits.len(), CodeRate::Half))
    });
}

fn bench_interleaver_and_mapping(c: &mut Criterion) {
    let il = Interleaver::new(Modulation::Qam64, 48);
    let bits = pattern_bits(il.block_size(), 5);
    c.bench_function("interleave_qam64_block", |b| {
        b.iter(|| il.interleave(black_box(&bits)))
    });
    let points = Modulation::Qam64.map_all(&bits);
    c.bench_function("qam64_map_symbol", |b| {
        b.iter(|| Modulation::Qam64.map_all(black_box(&bits)))
    });
    c.bench_function("qam64_demap_symbol", |b| {
        b.iter(|| Modulation::Qam64.demap_all(black_box(&points)))
    });
}

fn bench_bloom(c: &mut Criterion) {
    let receivers: Vec<[u8; 6]> = (0..8u8).map(|k| [2, 0, 0, 0, 0, k]).collect();
    c.bench_function("ahdr_build_8_receivers", |b| {
        b.iter(|| AggregationHeader::for_receivers(black_box(&receivers), 4))
    });
    let hdr = AggregationHeader::for_receivers(&receivers, 4).expect("8 receivers fit");
    c.bench_function("ahdr_check_membership", |b| {
        b.iter(|| hdr.matched_indices(black_box(&receivers[3]), 8))
    });
}

fn bench_side_channel(c: &mut Criterion) {
    c.bench_function("phase_offset_encode_decode_100sym", |b| {
        b.iter(|| {
            let mut enc = PhaseOffsetEncoder::new(PhaseOffsetMod::TwoBit);
            let mut dec = PhaseOffsetDecoder::new(PhaseOffsetMod::TwoBit);
            dec.set_reference(0.0);
            let mut acc = 0u32;
            for k in 0..100u8 {
                let inj = enc.next_offset(k % 4);
                acc += dec.decode(inj).unwrap_or(0) as u32;
            }
            acc
        })
    });
}

fn bench_full_chain(c: &mut Criterion) {
    let spec = SectionSpec::payload(pattern_bits(1500 * 8, 9), Mcs::QAM64_3_4);
    c.bench_function("tx_1500B_qam64", |b| {
        b.iter(|| transmit(black_box(std::slice::from_ref(&spec))))
    });
    let frame = transmit(std::slice::from_ref(&spec)).expect("valid spec");
    let layouts = [SectionLayout::of(&spec)];
    c.bench_function("rx_1500B_qam64_standard", |b| {
        b.iter(|| receive(black_box(&frame.samples), &layouts, Estimation::Standard))
    });
}

criterion_group!(
    name = phy_micro;
    config = Criterion::default().sample_size(20);
    targets = bench_fft,
        bench_coding,
        bench_interleaver_and_mapping,
        bench_bloom,
        bench_side_channel,
        bench_full_chain
);
criterion_main!(phy_micro);
