//! Micro-benchmarks of the PHY primitives, with machine-readable output.
//!
//! Not a paper figure — these quantify the software cost of the blocks
//! Carpool adds (A-HDR generation/check, phase offset encode/decode)
//! against the standard pipeline stages, echoing the Section 8
//! "processing latency" discussion.
//!
//! Unlike the figure benches this one runs on the `carpool-obs` span
//! machinery ([`SpanStats`]) instead of criterion, and writes its results
//! to `BENCH_phy_micro.json` so regressions are diffable run to run. The
//! last entries time the full RX chain with the default (no-op) handle
//! and with a live recorder attached, bounding the observability
//! overhead on the hot path.
//!
//! The run ends with a wall-clock throughput section: the same
//! [`run_phy`] Monte-Carlo workload timed at one worker thread and at
//! the pool default, reported as frames/s, coded Mbit/s, and the
//! speedup, and snapshotted to `BENCH_perf.json`. When a previous
//! snapshot exists, throughput drops beyond 15% are flagged as
//! regressions on stdout.

use std::hint::black_box;
use std::time::Instant;

use carpool_bench::{pattern_bits, run_phy, PhyBerResult, PhyRunConfig};
use carpool_bloom::AggregationHeader;
use carpool_obs::json::{self, ObjectWriter};
use carpool_obs::{FlightRecorder, MemoryRecorder, Obs, SpanStats};
use carpool_phy::convolutional::{
    decode, decode_levels_with, decode_soft, decode_soft_quantized, encode, CodeRate,
    ViterbiScratch,
};
use carpool_phy::equalizer::ChannelEstimate;
use carpool_phy::fft::{fft_in_place, fft_real, ifft_in_place};
use carpool_phy::interleaver::Interleaver;
use carpool_phy::math::Complex64;
use carpool_phy::mcs::Mcs;
use carpool_phy::modulation::Modulation;
use carpool_phy::ofdm::FreqSymbol;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::{receive, Estimation, FrameDecoder, SectionLayout};
use carpool_phy::sidechannel::{PhaseOffsetDecoder, PhaseOffsetEncoder, PhaseOffsetMod};
use carpool_phy::tx::{transmit, SectionSpec};
use carpool_phy::txcache;
use std::sync::Arc;

const SAMPLES: usize = 20;
const WARMUP: usize = 3;

/// Times `f` WARMUP+SAMPLES times and keeps the timed samples.
fn measure(name: &'static str, mut f: impl FnMut()) -> SpanStats {
    let mut stats = SpanStats::new(name);
    for i in 0..WARMUP + SAMPLES {
        if i < WARMUP {
            f();
        } else {
            stats.time(&mut f);
        }
    }
    stats
}

/// Per-tail fraction dropped by the trimmed mean reported next to the
/// median — two scheduler spikes out of [`SAMPLES`]=20 are discarded,
/// which is what stabilizes the noisy `rx_1500B_*` rows run to run.
const TRIM_FRACTION: f64 = 0.1;

fn json_entry(stats: &SpanStats) -> String {
    let mut w = ObjectWriter::new();
    w.str("name", stats.name)
        .u64("samples", stats.count() as u64)
        .f64("mean_us", stats.mean_secs() * 1e6)
        .f64(
            "trimmed_mean_us",
            stats.trimmed_mean_secs(TRIM_FRACTION) * 1e6,
        )
        .f64("median_us", stats.median_secs() * 1e6)
        .f64("min_us", stats.min_secs() * 1e6)
        .f64("max_us", stats.max_secs() * 1e6);
    w.finish()
}

fn bench_fft(results: &mut Vec<SpanStats>) {
    let input: Vec<Complex64> = (0..64).map(|k| Complex64::cis(k as f64 * 0.11)).collect();
    results.push(measure("fft64_forward", || {
        let mut buf = input.clone();
        fft_in_place(black_box(&mut buf)).expect("64 is a power of two");
    }));
    results.push(measure("fft64_inverse", || {
        let mut buf = input.clone();
        ifft_in_place(black_box(&mut buf)).expect("64 is a power of two");
    }));
    let real_input: Vec<f64> = (0..64).map(|k| (k as f64 * 0.11).cos()).collect();
    results.push(measure("fft64_real", || {
        black_box(fft_real(black_box(&real_input)).expect("64 is a power of two"));
    }));
}

fn bench_coding(results: &mut Vec<SpanStats>) {
    let bits = pattern_bits(1000, 3);
    let coded = encode(&bits, CodeRate::Half);
    results.push(measure("convolutional_encode_1kbit", || {
        black_box(encode(black_box(&bits), CodeRate::Half));
    }));
    results.push(measure("viterbi_decode_1kbit", || {
        black_box(decode(black_box(&coded), bits.len(), CodeRate::Half));
    }));
    // The soft-decision path on the same frame: the f64 reference oracle
    // next to the production hard decode, so the kernel cost of each is
    // a separate row in the snapshot.
    let llrs: Vec<f64> = coded
        .iter()
        .map(|&b| if b == 1 { 4.0 } else { -4.0 })
        .collect();
    results.push(measure("viterbi_soft_f64_1kbit", || {
        black_box(decode_soft(black_box(&llrs), bits.len(), CodeRate::Half));
    }));
    // The same LLR frame through the f64-in quantizing entry point —
    // this row includes the quantize pass the fused RX path no longer
    // performs separately.
    results.push(measure("viterbi_quantize_1kbit", || {
        black_box(decode_soft_quantized(
            black_box(&llrs),
            bits.len(),
            CodeRate::Half,
        ));
    }));
    // The production integer kernel as the fused RX path drives it:
    // pre-quantized levels in, trellis scratch reused across frames.
    let levels: Vec<i32> = coded.iter().map(|&b| i32::from(b) * 1024 - 512).collect();
    let mut scratch = ViterbiScratch::default();
    results.push(measure("viterbi_int_1kbit", || {
        black_box(decode_levels_with(
            black_box(&levels),
            bits.len(),
            CodeRate::Half,
            &mut scratch,
        ));
    }));
}

fn bench_equalizer(results: &mut Vec<SpanStats>) {
    let points = Modulation::Qam64.map_all(&pattern_bits(48 * 6, 11));
    let sym = FreqSymbol::with_standard_pilots(points, 0);
    let bins: Vec<Complex64> = (0..64)
        .map(|k| Complex64::cis(k as f64 * 0.07).scale(0.9))
        .collect();
    let est = ChannelEstimate::from_bins(bins);
    let mut out = est.equalize(&sym);
    results.push(measure("equalize_symbol", || {
        est.equalize_into(black_box(&sym), black_box(&mut out));
    }));
}

fn bench_interleaver_and_mapping(results: &mut Vec<SpanStats>) {
    let il = Interleaver::new(Modulation::Qam64, 48);
    let bits = pattern_bits(il.block_size(), 5);
    results.push(measure("interleave_qam64_block", || {
        black_box(il.interleave(black_box(&bits)));
    }));
    let points = Modulation::Qam64.map_all(&bits);
    results.push(measure("qam64_map_symbol", || {
        black_box(Modulation::Qam64.map_all(black_box(&bits)));
    }));
    results.push(measure("qam64_demap_symbol", || {
        black_box(Modulation::Qam64.demap_all(black_box(&points)));
    }));
}

fn bench_bloom(results: &mut Vec<SpanStats>) {
    let receivers: Vec<[u8; 6]> = (0..8u8).map(|k| [2, 0, 0, 0, 0, k]).collect();
    results.push(measure("ahdr_build_8_receivers", || {
        black_box(AggregationHeader::for_receivers(black_box(&receivers), 4)).ok();
    }));
    let hdr = AggregationHeader::for_receivers(&receivers, 4).expect("8 receivers fit");
    results.push(measure("ahdr_check_membership", || {
        black_box(hdr.matched_indices(black_box(&receivers[3]), 8));
    }));
}

fn bench_side_channel(results: &mut Vec<SpanStats>) {
    results.push(measure("phase_offset_encode_decode_100sym", || {
        let mut enc = PhaseOffsetEncoder::new(PhaseOffsetMod::TwoBit);
        let mut dec = PhaseOffsetDecoder::new(PhaseOffsetMod::TwoBit);
        dec.set_reference(0.0);
        let mut acc = 0u32;
        for k in 0..100u8 {
            let inj = enc.next_offset(k % 4);
            acc += dec.decode(inj).unwrap_or(0) as u32;
        }
        black_box(acc);
    }));
}

fn bench_full_chain(results: &mut Vec<SpanStats>) {
    // Per-MCS encode/decode of a 1500 B frame — the headline numbers.
    for (name_tx, name_rx, mcs) in [
        ("tx_1500B_qpsk12", "rx_1500B_qpsk12", Mcs::QPSK_1_2),
        ("tx_1500B_qam16", "rx_1500B_qam16", Mcs::QAM16_1_2),
        ("tx_1500B_qam64", "rx_1500B_qam64", Mcs::QAM64_3_4),
    ] {
        let spec = SectionSpec::payload(pattern_bits(1500 * 8, 9), mcs);
        results.push(measure(name_tx, || {
            black_box(transmit(black_box(std::slice::from_ref(&spec)))).ok();
        }));
        let frame = transmit(std::slice::from_ref(&spec)).expect("valid spec");
        let layouts = [SectionLayout::of(&spec)];
        // These full-chain rows are the noisiest in the table (longest
        // per-sample time, most cache/page state), so they get a
        // dedicated warmup pass on top of measure()'s before the timed
        // samples start; the trimmed mean in the report absorbs what
        // the warmup cannot.
        for _ in 0..WARMUP {
            black_box(receive(&frame.samples, &layouts, Estimation::Standard)).ok();
        }
        results.push(measure(name_rx, || {
            black_box(receive(
                black_box(&frame.samples),
                &layouts,
                Estimation::Standard,
            ))
            .ok();
        }));
    }
}

/// Decodes the same frame with the default no-op handle and with a live
/// recorder, so the observability overhead shows up as two adjacent rows.
fn bench_obs_overhead(results: &mut Vec<SpanStats>) {
    let spec = SectionSpec::payload(pattern_bits(1500 * 8, 9), Mcs::QAM64_3_4);
    let frame = transmit(std::slice::from_ref(&spec)).expect("valid spec");
    let layouts = [SectionLayout::of(&spec)];
    // Dedicated warmup pass, mirroring bench_full_chain's, before any
    // of the gated rows are timed.
    for _ in 0..WARMUP {
        let mut dec =
            FrameDecoder::new(&frame.samples, Estimation::Standard).expect("lengths match");
        black_box(dec.decode_section(&layouts[0])).ok();
    }
    // Adjacent comparator for the disabled-overhead gate: the same
    // decode through the public `receive()` API, measured back-to-back
    // with the noop row so CPU frequency/thermal drift between bench
    // sections cancels out of the ratio (the sc_* pair below gets this
    // for free by construction). The headline `rx_1500B_qam64` row in
    // bench_full_chain keeps its own timing for the perf baseline.
    results.push(measure("rx_1500B_qam64_obs_plain", || {
        black_box(receive(
            black_box(&frame.samples),
            &layouts,
            Estimation::Standard,
        ))
        .ok();
    }));
    results.push(measure("rx_1500B_qam64_obs_noop", || {
        let mut dec =
            FrameDecoder::new(&frame.samples, Estimation::Standard).expect("lengths match");
        black_box(dec.decode_section(&layouts[0])).ok();
    }));
    let obs = Obs::with_recorder(Arc::new(MemoryRecorder::new()));
    results.push(measure("rx_1500B_qam64_obs_recording", || {
        let mut dec = FrameDecoder::new(&frame.samples, Estimation::Standard)
            .expect("lengths match")
            .with_obs(obs.clone());
        black_box(dec.decode_section(&layouts[0])).ok();
    }));

    // Flight-recorder rows: the RTE + side-channel decode is where the
    // per-symbol trace hooks live, so the enabled-tracing cost is the
    // delta between these two rows (same waveform, same estimation).
    let sc_spec = SectionSpec::payload(pattern_bits(1500 * 8, 9), Mcs::QAM64_3_4);
    let sc_frame = transmit(std::slice::from_ref(&sc_spec)).expect("valid spec");
    let sc_layouts = [SectionLayout::of(&sc_spec)];
    let rte = Estimation::Rte(CalibrationRule::Average);
    for _ in 0..WARMUP {
        let mut dec = FrameDecoder::new(&sc_frame.samples, rte).expect("lengths match");
        black_box(dec.decode_section(&sc_layouts[0])).ok();
    }
    results.push(measure("rx_1500B_qam64_sc_plain", || {
        let mut dec = FrameDecoder::new(&sc_frame.samples, rte).expect("lengths match");
        black_box(dec.decode_section(&sc_layouts[0])).ok();
    }));
    let flight = Arc::new(FlightRecorder::new(carpool_obs::DEFAULT_TRACE_CAPACITY));
    let tracing_obs = Obs::noop().with_flight(flight.clone());
    results.push(measure("rx_1500B_qam64_sc_tracing", || {
        let mut dec = FrameDecoder::new(&sc_frame.samples, rte)
            .expect("lengths match")
            .with_obs(tracing_obs.clone());
        black_box(dec.decode_section(&sc_layouts[0])).ok();
    }));
    println!(
        "flight recorder captured {} records over {} traced decodes ({} dropped)",
        flight.len(),
        WARMUP + SAMPLES,
        flight.dropped()
    );
}

/// Where the throughput snapshot lands (cargo runs benches with the
/// package root as the working directory, so this is
/// `crates/bench/BENCH_perf.json`).
const PERF_PATH: &str = "BENCH_perf.json";

/// Committed reference snapshot this run is compared against
/// (`crates/bench/BENCH_perf_baseline.json`, checked into the repo).
const BASELINE_PATH: &str = "BENCH_perf_baseline.json";

/// Deviations beyond this fraction in the losing direction are flagged
/// as regressions.
const REGRESSION_FRACTION: f64 = 0.15;

/// SNR sweep points of the end-to-end sweep benchmark — the fig03/fig12
/// usage pattern: same payload spec, channel and receiver re-run per
/// point.
const SWEEP_SNRS: [f64; 5] = [10.0, 16.0, 22.0, 28.0, 34.0];

/// One timed throughput row.
struct Throughput {
    threads: usize,
    elapsed_s: f64,
    frames_per_s: f64,
    coded_mbit_per_s: f64,
}

/// Best-of-three wall-clock time of one `run_phy` invocation (after one
/// warmup), plus the last result for the determinism cross-check.
fn time_run(config: &PhyRunConfig) -> (f64, PhyBerResult) {
    run_phy(config);
    let mut best = f64::INFINITY;
    let mut result = PhyBerResult::default();
    for _ in 0..3 {
        let t0 = Instant::now();
        result = run_phy(config);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, result)
}

/// Runs `config` at every [`SWEEP_SNRS`] point. Returns the per-point
/// results in order.
fn run_sweep(config: &PhyRunConfig) -> Vec<PhyBerResult> {
    SWEEP_SNRS
        .iter()
        .map(|&snr_db| run_phy(&PhyRunConfig { snr_db, ..*config }))
        .collect()
}

/// For regression orientation: keys where larger is faster/better.
fn higher_is_better(key: &str) -> bool {
    key.ends_with("frames_per_s")
        || key.ends_with("mbit_per_s")
        || key.ends_with("events_per_s")
        || key == "speedup"
}

/// For regression orientation: keys where smaller is faster/better.
fn lower_is_better(key: &str) -> bool {
    key.ends_with("_us") || key.ends_with("_elapsed_s")
}

/// Whether a regression on this key fails the build: the RX fast path
/// (`rx_1500B_*`), the Viterbi kernels (`viterbi_*`) and the sharded
/// MAC event engine (`mac_dense_events_per_s`) are the rows this repo's
/// perf work is anchored on, so check.sh treats losing >15% on any of
/// them as fatal. Everything else stays advisory — wall-clock noise on
/// shared machines must not fail the gate for rows nobody optimizes
/// deliberately.
fn fatal_on_regression(key: &str) -> bool {
    key.starts_with("rx_1500B_") || key.starts_with("viterbi_") || key == "mac_dense_events_per_s"
}

/// Compares this run's metrics against the committed
/// `BENCH_perf_baseline.json`, printing a per-key delta table (kernel
/// timings included). Returns the number of regressed
/// [`fatal_on_regression`] keys, which the snapshot records as the
/// `rx_gate_ok` verdict check.sh enforces; regressions on the remaining
/// keys are flagged but non-fatal (wall-clock noise on shared machines
/// should not fail the gate for unanchored rows).
fn compare_to_baseline(entries: &[(&'static str, f64)]) -> usize {
    let Ok(previous) = std::fs::read_to_string(BASELINE_PATH) else {
        println!("no committed {BASELINE_PATH}; skipping baseline comparison");
        return 0;
    };
    let Ok(parsed) = json::parse(previous.trim()) else {
        println!("committed {BASELINE_PATH} unparseable; skipping baseline comparison");
        return 0;
    };
    println!("\nvs {BASELINE_PATH}:");
    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "metric", "current", "baseline", "delta"
    );
    let mut regressions = 0usize;
    let mut fatal = 0usize;
    for &(key, current) in entries {
        let Some(old) = parsed.get(key).and_then(|v| v.as_f64()) else {
            println!("{key:<28} {current:>12.2} {:>12} {:>9}", "n/a", "new");
            continue;
        };
        if old == 0.0 {
            continue;
        }
        let delta = (current - old) / old * 100.0;
        let regressed = (higher_is_better(key) && current < old * (1.0 - REGRESSION_FRACTION))
            || (lower_is_better(key) && current > old * (1.0 + REGRESSION_FRACTION));
        let marker = match (regressed, fatal_on_regression(key)) {
            (true, true) => "  <-- REGRESSION (fatal in check.sh)",
            (true, false) => "  <-- REGRESSION",
            (false, _) => "",
        };
        println!("{key:<28} {current:>12.2} {old:>12.2} {delta:>+8.1}%{marker}");
        regressions += usize::from(regressed);
        fatal += usize::from(regressed && fatal_on_regression(key));
    }
    if fatal > 0 {
        println!(
            "PERF REGRESSION: {fatal} RX/Viterbi metric(s) worse than baseline by >15% \
             (FATAL in check.sh)"
        );
    } else if regressions > 0 {
        println!(
            "PERF REGRESSION: {regressions} metric(s) worse than baseline by >15% (non-fatal)"
        );
    } else {
        println!("perf ok: no metric worse than baseline by >15%");
    }
    fatal
}

/// Median of a named row from the micro section, in microseconds.
fn median_us(results: &[SpanStats], name: &str) -> Option<f64> {
    results
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.median_secs() * 1e6)
}

/// Minimum of a named row from the micro section, in microseconds. The
/// min over samples is the least-noise estimator on a shared machine, so
/// the tight obs-overhead gate compares mins, not medians.
fn min_us(results: &[SpanStats], name: &str) -> Option<f64> {
    results
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.min_secs() * 1e6)
}

/// Where the observability-overhead verdict lands
/// (`crates/bench/BENCH_obs.json`).
const OBS_PATH: &str = "BENCH_obs.json";

/// The tracing-disabled decode may cost at most this fraction over the
/// plain decode — one predicted branch per hook, nothing more. `check.sh`
/// fails the build when this budget is blown.
const DISABLED_BUDGET_FRACTION: f64 = 0.01;

/// Documented budget for *enabled* flight-recorder tracing on the RTE +
/// side-channel decode (the hook-densest path: one record per symbol
/// recalibration plus one per CRC group). Exceeding it is a warning, not
/// a failure — opting into tracing is allowed to cost something.
const TRACING_BUDGET_FRACTION: f64 = 0.25;

/// Distills the obs-overhead rows into `BENCH_obs.json`: the disabled
/// path (`rx_1500B_qam64_obs_noop` vs the adjacent
/// `rx_1500B_qam64_obs_plain` decode) must stay within
/// [`DISABLED_BUDGET_FRACTION`]; the enabled path
/// (`rx_1500B_qam64_sc_tracing` vs `rx_1500B_qam64_sc_plain`) is held to
/// [`TRACING_BUDGET_FRACTION`] as a non-fatal budget. Both pairs are
/// timed back-to-back inside [`bench_obs_overhead`] so run-to-run drift
/// cancels out of the ratios.
fn bench_obs_snapshot(results: &[SpanStats]) {
    let rows = [
        "rx_1500B_qam64_obs_plain",
        "rx_1500B_qam64_obs_noop",
        "rx_1500B_qam64_obs_recording",
        "rx_1500B_qam64_sc_plain",
        "rx_1500B_qam64_sc_tracing",
    ];
    let mins: Vec<f64> = rows
        .iter()
        .map(|name| min_us(results, name).unwrap_or(f64::NAN))
        .collect();
    let [plain, noop, recording, sc_plain, sc_tracing] = mins[..] else {
        unreachable!("rows and mins have the same length");
    };
    let disabled_overhead = noop / plain - 1.0;
    let tracing_overhead = sc_tracing / sc_plain - 1.0;
    // NaN comparisons are false, so a missing row never *passes* the
    // fatal gate silently: it shows up as nulls in the JSON instead.
    let disabled_regressed = disabled_overhead > DISABLED_BUDGET_FRACTION;
    let tracing_within_budget = tracing_overhead <= TRACING_BUDGET_FRACTION;

    println!("\nobs overhead gate:");
    println!(
        "  disabled path: {noop:.2}us vs {plain:.2}us plain ({:+.2}% — budget {:.0}%){}",
        disabled_overhead * 100.0,
        DISABLED_BUDGET_FRACTION * 100.0,
        if disabled_regressed {
            "  <-- REGRESSION (fatal in check.sh)"
        } else {
            ", ok"
        }
    );
    println!(
        "  enabled tracing: {sc_tracing:.2}us vs {sc_plain:.2}us untraced ({:+.2}% — budget {:.0}%){}",
        tracing_overhead * 100.0,
        TRACING_BUDGET_FRACTION * 100.0,
        if tracing_within_budget {
            ", ok"
        } else {
            "  <-- over budget (warning only)"
        }
    );

    let mut w = ObjectWriter::new();
    w.str("bench", "obs_overhead")
        .u64("samples_per_entry", SAMPLES as u64)
        .f64("plain_rx_min_us", plain)
        .f64("noop_rx_min_us", noop)
        .f64("recording_rx_min_us", recording)
        .f64("sc_plain_min_us", sc_plain)
        .f64("sc_tracing_min_us", sc_tracing)
        .f64("disabled_overhead_frac", disabled_overhead)
        .f64("disabled_budget_frac", DISABLED_BUDGET_FRACTION)
        .f64("tracing_overhead_frac", tracing_overhead)
        .f64("tracing_budget_frac", TRACING_BUDGET_FRACTION)
        .bool("disabled_regressed", disabled_regressed)
        .bool("tracing_within_budget", tracing_within_budget);
    let json = format!("{}\n", w.finish());
    match std::fs::write(OBS_PATH, &json) {
        Ok(()) => println!("wrote {OBS_PATH}"),
        Err(e) => eprintln!("cannot write {OBS_PATH}: {e}"),
    }
}

/// Times the `mac_dense_16ap` scenario — 16 AP contention domains of
/// 64 STAs each on the sharded MAC event engine, best of three after a
/// warmup — and returns `(elapsed_s, events_per_s)`. The events/s row
/// is one of the fatal perf anchors: the engine's whole point is
/// allocation-free event dispatch, so losing >15% here means the MAC
/// hot path regressed.
fn time_mac_dense() -> (f64, f64) {
    let config = carpool_mac::DenseConfig {
        cell: carpool_mac::sim::SimConfig {
            num_stas: 64,
            num_aps: 1,
            duration_s: 1.0,
            seed: 7,
            ..carpool_mac::sim::SimConfig::default()
        },
        domains: 16,
        ..carpool_mac::DenseConfig::default()
    };
    let obs = Obs::noop();
    let run = || {
        carpool_mac::run_dense(
            &config,
            |_| Box::new(carpool_mac::BerBiasModel::calibrated()),
            &obs,
        )
        .expect("dense run does not panic")
    };
    run();
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let report = run();
        best = best.min(t0.elapsed().as_secs_f64());
        events = report.events;
    }
    (best, events as f64 / best)
}

/// Times the parallel Monte-Carlo driver end to end — single run and
/// full SNR sweep — and snapshots the numbers together with the
/// per-kernel medians. The 1-thread and pool-default runs must agree to
/// the bit — the `carpool-par` determinism contract — and the cached
/// sweep must match the uncached one; both checks ride along with the
/// timing.
fn bench_throughput(results: &[SpanStats]) {
    let config = PhyRunConfig {
        frames: 16,
        payload_bits: 2 * 1024 * 8,
        seed: 4242,
        ..PhyRunConfig::default()
    };
    let spec = SectionSpec {
        bits: pattern_bits(config.payload_bits, 77),
        mcs: config.mcs,
        scramble: true,
        side_channel: config.side_channel,
        qbpsk: false,
    };
    let coded_bits_per_frame = transmit(std::slice::from_ref(&spec))
        .map(|tx| tx.sections[0].num_symbols * config.mcs.coded_bits_per_symbol())
        .unwrap_or(0);
    let throughput = |threads: usize, frames: usize, elapsed_s: f64| Throughput {
        threads,
        elapsed_s,
        frames_per_s: frames as f64 / elapsed_s,
        coded_mbit_per_s: (frames * coded_bits_per_frame) as f64 / elapsed_s / 1e6,
    };

    carpool_par::set_thread_override(Some(1));
    let (serial_s, serial_result) = time_run(&config);
    // The pool leg always runs at least two workers — on a single-core
    // runner the ambient default collapses to one thread and the
    // "pool" row silently re-measures the serial leg (recorded as
    // pool_threads: 1, speedup ~1.0x). CARPOOL_THREADS still wins when
    // it asks for more; the effective count is what lands in the JSON.
    carpool_par::set_thread_override(None);
    let pool_threads = carpool_par::thread_count().max(2);
    carpool_par::set_thread_override(Some(pool_threads));
    let (pool_s, pool_result) = time_run(&config);
    carpool_par::set_thread_override(None);
    let serial = throughput(1, config.frames, serial_s);
    let pool = throughput(pool_threads, config.frames, pool_s);
    let speedup = serial.elapsed_s / pool.elapsed_s;
    let deterministic = serial_result.data_ber.to_bits() == pool_result.data_ber.to_bits()
        && serial_result.side_ber.to_bits() == pool_result.side_ber.to_bits();

    // End-to-end SNR sweep: one TX encode serves every point when the
    // cache is on. Each timed repetition starts from a cold cache so the
    // hit rate describes exactly one sweep.
    let sweep_config = PhyRunConfig {
        frames: 8,
        ..config
    };
    let sweep_frames = sweep_config.frames * SWEEP_SNRS.len();
    // The timed repetitions below run in the ambient cache configuration
    // (so CARPOOL_NO_TX_CACHE=1 measures the honest uncached sweep); the
    // reference pass here is always uncached for the bit-identity check.
    let cache_on = txcache::is_enabled();
    txcache::set_enabled(false);
    txcache::reset();
    let uncached = run_sweep(&sweep_config);
    txcache::set_enabled(cache_on);
    let mut sweep_best = f64::INFINITY;
    let mut cached = Vec::new();
    let mut cache_stats = txcache::TxCacheStats::default();
    for _ in 0..3 {
        txcache::reset();
        let t0 = Instant::now();
        cached = run_sweep(&sweep_config);
        sweep_best = sweep_best.min(t0.elapsed().as_secs_f64());
        cache_stats = txcache::stats();
    }
    let sweep = throughput(carpool_par::thread_count(), sweep_frames, sweep_best);
    let cache_identical = uncached.len() == cached.len()
        && uncached.iter().zip(&cached).all(|(u, c)| {
            u.data_ber.to_bits() == c.data_ber.to_bits()
                && u.side_ber.to_bits() == c.side_ber.to_bits()
        });

    println!(
        "\n{:<24} {:>8} {:>12} {:>12} {:>14}",
        "throughput (run_phy)", "threads", "elapsed s", "frames/s", "coded Mbit/s"
    );
    for t in [&serial, &pool, &sweep] {
        println!(
            "{:<24} {:>8} {:>12.3} {:>12.1} {:>14.2}",
            "", t.threads, t.elapsed_s, t.frames_per_s, t.coded_mbit_per_s
        );
    }
    println!(
        "speedup {speedup:.2}x at {} thread(s); 1-thread and pool results bit-identical: \
         {deterministic}",
        pool.threads
    );
    println!(
        "sweep: {} SNR points x {} frames, tx-cache hit rate {:.0}% ({} hits / {} misses), \
         cached == uncached: {cache_identical}",
        SWEEP_SNRS.len(),
        sweep_config.frames,
        cache_stats.hit_rate() * 100.0,
        cache_stats.hits,
        cache_stats.misses
    );

    let (dense_s, dense_events_per_s) = time_mac_dense();
    println!(
        "mac_dense_16ap: 16 domains x 64 STAs x 1.0 s in {dense_s:.3} s wall \
         ({:.2} Mevents/s)",
        dense_events_per_s / 1e6
    );

    // Everything numeric lands in one flat list: the same rows are
    // written to BENCH_perf.json and compared against the committed
    // baseline.
    let mut entries: Vec<(&'static str, f64)> = vec![
        ("mac_dense_elapsed_s", dense_s),
        ("mac_dense_events_per_s", dense_events_per_s),
        ("serial_elapsed_s", serial.elapsed_s),
        ("serial_frames_per_s", serial.frames_per_s),
        ("serial_coded_mbit_per_s", serial.coded_mbit_per_s),
        ("pool_elapsed_s", pool.elapsed_s),
        ("pool_frames_per_s", pool.frames_per_s),
        ("pool_coded_mbit_per_s", pool.coded_mbit_per_s),
        ("speedup", speedup),
        ("sweep_elapsed_s", sweep.elapsed_s),
        ("sweep_frames_per_s", sweep.frames_per_s),
        ("sweep_coded_mbit_per_s", sweep.coded_mbit_per_s),
        ("tx_cache_hit_rate", cache_stats.hit_rate()),
    ];
    for (row, key) in [
        ("viterbi_decode_1kbit", "viterbi_hard_us"),
        ("viterbi_soft_f64_1kbit", "viterbi_soft_f64_us"),
        ("viterbi_quantize_1kbit", "viterbi_quantize_us"),
        ("viterbi_int_1kbit", "viterbi_int_us"),
        ("fft64_forward", "fft64_us"),
        ("fft64_real", "fft64_real_us"),
        ("equalize_symbol", "equalize_symbol_us"),
        ("rx_1500B_qpsk12", "rx_1500B_qpsk12_us"),
        ("rx_1500B_qam16", "rx_1500B_qam16_us"),
        ("rx_1500B_qam64", "rx_1500B_qam64_us"),
    ] {
        if let Some(us) = median_us(results, row) {
            entries.push((key, us));
        }
    }
    // Trimmed-mean companions for the noisy full-chain rows: the stable
    // location estimate the fatal RX gate in check.sh keys off.
    for (row, key) in [
        ("rx_1500B_qpsk12", "rx_1500B_qpsk12_trimmed_us"),
        ("rx_1500B_qam16", "rx_1500B_qam16_trimmed_us"),
        ("rx_1500B_qam64", "rx_1500B_qam64_trimmed_us"),
    ] {
        if let Some(s) = results.iter().find(|s| s.name == row) {
            entries.push((key, s.trimmed_mean_secs(TRIM_FRACTION) * 1e6));
        }
    }
    let fatal_regressions = compare_to_baseline(&entries);

    let mut w = ObjectWriter::new();
    w.str("bench", "phy_micro_perf")
        .u64("fatal_regressions", fatal_regressions as u64)
        .bool("rx_gate_ok", fatal_regressions == 0)
        .u64("frames", config.frames as u64)
        .u64("payload_bits", config.payload_bits as u64)
        .u64("coded_bits_per_frame", coded_bits_per_frame as u64)
        .u64("pool_threads", pool.threads as u64)
        .u64("sweep_points", SWEEP_SNRS.len() as u64)
        .u64("sweep_frames", sweep_frames as u64)
        .u64("tx_cache_hits", cache_stats.hits)
        .u64("tx_cache_misses", cache_stats.misses)
        .bool("deterministic", deterministic)
        .bool("tx_cache_bit_identical", cache_identical);
    for (key, value) in &entries {
        w.f64(key, *value);
    }
    let json = format!("{}\n", w.finish());
    match std::fs::write(PERF_PATH, &json) {
        Ok(()) => println!("wrote {PERF_PATH}"),
        Err(e) => eprintln!("cannot write {PERF_PATH}: {e}"),
    }
}

fn main() {
    let mut results: Vec<SpanStats> = Vec::new();
    bench_fft(&mut results);
    bench_coding(&mut results);
    bench_equalizer(&mut results);
    bench_interleaver_and_mapping(&mut results);
    bench_bloom(&mut results);
    bench_side_channel(&mut results);
    bench_full_chain(&mut results);
    bench_obs_overhead(&mut results);

    println!(
        "{:<36} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "samples", "median us", "trimmed us", "min us", "max us"
    );
    for s in &results {
        println!(
            "{:<36} {:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            s.name,
            s.count(),
            s.median_secs() * 1e6,
            s.trimmed_mean_secs(TRIM_FRACTION) * 1e6,
            s.min_secs() * 1e6,
            s.max_secs() * 1e6
        );
    }

    let body: Vec<String> = results.iter().map(json_entry).collect();
    let json = format!(
        "{{\"bench\":\"phy_micro\",\"samples_per_entry\":{SAMPLES},\"results\":[{}]}}\n",
        body.join(",")
    );
    let path = "BENCH_phy_micro.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncannot write {path}: {e}"),
    }

    bench_obs_snapshot(&results);
    bench_throughput(&results);
}
