//! Section 8 / Fig. 18 — Carpool over MU-MIMO.
//!
//! Paper: a two-antenna 802.11ac AP serving four stations needs at least
//! two MU-MIMO transmissions (two precoding groups); Carpool aggregates
//! both groups into a single transmission that shares one legacy
//! preamble and one A-HDR, with per-group VHT preambles mid-frame.

use carpool_bench::{banner, ResultsTable};
use carpool_frame::addr::MacAddress;
use carpool_frame::mimo::{MimoCarpoolFrame, MimoSubframe};
use carpool_phy::mcs::Mcs;

fn sta(k: u16) -> MacAddress {
    MacAddress::station(k)
}

fn main() {
    banner(
        "Fig 18",
        "Carpool MU-MIMO vs plain 802.11ac MU-MIMO (airtime)",
    );
    let mut table = ResultsTable::new([
        "streams",
        "receivers",
        "groups",
        "Carpool µs",
        "plain µs",
        "saving",
    ]);
    for (streams, receivers) in [(2usize, 4u16), (2, 8), (4, 8), (1, 6)] {
        let subframes: Vec<MimoSubframe> = (0..receivers)
            .map(|k| MimoSubframe::new(sta(k), 800, Mcs::QAM16_1_2))
            .collect();
        let frame = MimoCarpoolFrame::pack(streams, subframes).expect("fits in 8 receivers");
        let carpool = frame.exchange_airtime();
        let plain = frame.plain_mu_mimo_airtime()
            + frame.groups().len() as f64 * carpool_frame::airtime::DIFS;
        table.row([
            streams.to_string(),
            receivers.to_string(),
            frame.groups().len().to_string(),
            format!("{:.1}", carpool * 1e6),
            format!("{:.1}", plain * 1e6),
            format!("{:.0}%", (1.0 - carpool / plain) * 100.0),
        ]);
        assert!(carpool < plain);
    }
    table.print();
    println!("(plain MU-MIMO pays preamble + ACKs + DIFS per group; contention extra)");
    println!("paper Fig 18: four streams for four STAs ride one transmission instead of two");
}
