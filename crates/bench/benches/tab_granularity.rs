//! Section 5.2 measurement study — CRC granularity vs side-channel
//! modulation.
//!
//! Paper: six schemes (1-bit and 2-bit offsets x 1–3 symbols per CRC
//! group) tested across locations/powers; "one symbol as a group and
//! two-bit phase offset side channel achieves best performance in most
//! cases". Figure of merit: the raw BER after RTE decoding — finer CRC
//! granularity means more data-pilot updates, a wider CRC means more
//! reliable gating; the two pull in opposite directions.

use carpool_bench::{banner, run_phy, PhyRunConfig, ResultsTable, OFFICE_FADING};
use carpool_phy::mcs::Mcs;
use carpool_phy::rte::CalibrationRule;
use carpool_phy::rx::Estimation;
use carpool_phy::sidechannel::PhaseOffsetMod;
use carpool_phy::tx::SideChannelConfig;

fn run_scheme(modulation: PhaseOffsetMod, group: usize) -> f64 {
    let config = PhyRunConfig {
        mcs: Mcs::QAM64_3_4,
        payload_bits: 4 * 1024 * 8,
        side_channel: Some(SideChannelConfig {
            modulation,
            group_symbols: group,
        }),
        estimation: Estimation::Rte(CalibrationRule::Average),
        snr_db: 26.0,
        fading: OFFICE_FADING,
        frames: 30,
        ..PhyRunConfig::default()
    };
    run_phy(&config).data_ber
}

fn main() {
    banner(
        "§5.2",
        "CRC granularity study: raw BER under RTE decoding (lower is better)",
    );
    let mut table = ResultsTable::new(["symbols/group", "1-bit offset", "2-bit offset"]);
    let mut best = (f64::INFINITY, PhaseOffsetMod::OneBit, 0usize);
    for group in 1..=3usize {
        let one = run_scheme(PhaseOffsetMod::OneBit, group);
        let two = run_scheme(PhaseOffsetMod::TwoBit, group);
        table.row([
            group.to_string(),
            format!("{one:.2e}"),
            format!("{two:.2e}"),
        ]);
        if one < best.0 {
            best = (one, PhaseOffsetMod::OneBit, group);
        }
        if two <= best.0 {
            best = (two, PhaseOffsetMod::TwoBit, group);
        }
    }
    table.print();
    println!(
        "best scheme: {} with {} symbol(s) per CRC group (raw BER {:.2e})",
        best.1, best.2, best.0
    );
    println!("paper: 2-bit offsets with one symbol per group won in most locations");
}
