//! Table 2 — PHY/MAC parameters used by the simulator.

use carpool_bench::banner;
use carpool_frame::airtime::{
    ack_airtime, ahdr_airtime, sig_airtime, CW_MAX, CW_MIN, DIFS, PLCP_OVERHEAD, PROPAGATION_DELAY,
    SIFS, SLOT_TIME,
};

fn us(seconds: f64) -> String {
    format!("{:.1} µs", seconds * 1e6)
}

fn main() {
    banner(
        "Table 2",
        "PHY/MAC parameters (paper values reproduced exactly)",
    );
    println!("{:<28} {:>12}", "Slot time", us(SLOT_TIME));
    println!("{:<28} {:>12}", "SIFS", us(SIFS));
    println!("{:<28} {:>12}", "DIFS", us(DIFS));
    println!(
        "{:<28} {:>12}",
        "Minimal contention window",
        format!("{CW_MIN} slots")
    );
    println!(
        "{:<28} {:>12}",
        "Maximal contention window",
        format!("{CW_MAX} slots")
    );
    println!("{:<28} {:>12}", "PLCP header", us(PLCP_OVERHEAD));
    println!("{:<28} {:>12}", "Propagation delay", us(PROPAGATION_DELAY));
    println!();
    println!("derived Carpool header costs:");
    println!("{:<28} {:>12}", "A-HDR (48-bit Bloom)", us(ahdr_airtime()));
    println!("{:<28} {:>12}", "per-subframe SIG", us(sig_airtime()));
    println!("{:<28} {:>12}", "ACK at base rate", us(ack_airtime()));

    assert_eq!(SLOT_TIME, 9e-6);
    assert_eq!(SIFS, 10e-6);
    assert_eq!(DIFS, 28e-6);
    assert_eq!(CW_MIN, 15);
    assert_eq!(CW_MAX, 1023);
    assert_eq!(PLCP_OVERHEAD, 28e-6);
    assert_eq!(PROPAGATION_DELAY, 1e-6);
}
